#!/usr/bin/env python
"""Sensitivity tuning: error-rate curves, the EER, and the distributed bias.

Reproduces the Figure-4 methodology on the anomaly product:

* sweep the sensitivity knob and plot Type-I/Type-II error curves;
* locate the Equal Error Rate;
* then apply the section-3.3 guidance for distributed systems -- "emphasis
  on reducing the false negative ratio to the lowest possible level
  accepting an increased false positive alert ratio" -- by picking the
  lowest sensitivity that achieves FNR = 0 and reporting the FPR cost.

Run:  python examples/sensitivity_tuning.py   (~15 s)
"""

from repro.eval.accuracy import sensitivity_sweep
from repro.products import ManhuntProduct
from repro.report.figures import figure4_error_curves

SENSITIVITIES = (0.05, 0.15, 0.3, 0.5, 0.7, 0.85, 1.0)


def main() -> None:
    print("Sweeping sensitivity on the anomaly/flow product...\n")
    sweep = sensitivity_sweep(
        lambda s: ManhuntProduct(sensitivity=s), "sim-manhunt",
        SENSITIVITIES, duration_s=60.0)

    print(figure4_error_curves(sweep))

    eer = sweep.eer()
    if eer is not None:
        print(f"\nOperating point A (equal error rate): "
              f"sensitivity={eer[0]:.3f}, both error ratios ~{eer[1]:.4f}")

    # section-3.3 distributed-systems bias: minimize FNR first
    zero_fnr = [p for p in sweep.points if p.false_negative_ratio == 0.0]
    if zero_fnr:
        pick = min(zero_fnr, key=lambda p: p.false_positive_ratio)
        print(f"Operating point B (distributed bias, FNR -> 0): "
              f"sensitivity={pick.sensitivity:.2f} with "
              f"FPR={pick.false_positive_ratio:.4f} accepted as the cost "
              f"of catching the initial compromise")
    else:
        print("No swept sensitivity achieved FNR = 0; extend the sweep or "
              "combine detectors (hybrid).")


if __name__ == "__main__":
    main()
