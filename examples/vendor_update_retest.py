#!/usr/bin/env python
"""Continual re-evaluation across a vendor update (section 4).

"Continual re-evaluation is especially important since vendors rapidly
update their products."  This example evaluates the single-box signature
product twice -- version 5.0 as shipped, then a hypothetical 5.1 patch that
fixes the failure behaviour (service restart instead of cold reboot) and
doubles the inspection budget -- records both runs in an
:class:`~repro.core.longitudinal.EvaluationHistory`, and reports the score
deltas and the weighted trend for a real-time customer.

Run:  python examples/vendor_update_retest.py   (~30 s)
"""

import dataclasses

from repro.core import (
    EvaluationHistory,
    Scorecard,
    default_catalog,
    derive_weights,
    realtime_cluster_requirements,
)
from repro.eval.observer import fill_scorecard
from repro.eval.runner import EvaluationOptions, evaluate_product
from repro.ids.sensor import FailureMode
from repro.products import NidProduct
from repro.products.base import Deployment

OPTIONS = EvaluationOptions(
    n_hosts=4, scenario_duration_s=50.0, train_duration_s=15.0,
    throughput_rates_pps=(500, 2000, 8000, 32000), throughput_probe_s=0.5)


class NidProduct51(NidProduct):
    """The hypothetical 5.1 patch release."""

    facts = dataclasses.replace(NidProduct.facts, version="5.1",
                                policy_maintenance="central-live")

    def deploy(self, engine, testbed) -> Deployment:
        deployment = super().deploy(engine, testbed)
        for sensor in deployment.sensors:
            sensor.ops_rate *= 2.0                      # faster engine
            sensor.failure_mode = FailureMode.RESTART   # fixed failure path
            sensor.restart_time_s = 2.0
            sensor.lethal_drop_rate = 3000.0
        return deployment


def evaluate_version(product_cls) -> Scorecard:
    card = Scorecard(default_catalog())
    evaluation = evaluate_product(product_cls, OPTIONS)
    fill_scorecard(card, evaluation.bundle.deployment.facts,
                   evaluation.bundle)
    return card


def main() -> None:
    history = EvaluationHistory("sim-nid")
    print("Evaluating version 5.0 ...")
    history.add("5.0", "2001-10-01", evaluate_version(NidProduct))
    print("Evaluating version 5.1 ...")
    history.add("5.1", "2002-03-01", evaluate_version(NidProduct51))

    print("\nScore deltas 5.0 -> 5.1:")
    for delta in history.deltas("5.0", "5.1"):
        arrow = "improved" if delta.improvement else (
            "REGRESSED" if delta.regression else "changed")
        print(f"  {delta.metric:38s} {delta.before} -> {delta.after} "
              f"({arrow})")

    regressions = history.regressions("5.0", "5.1")
    print(f"\nRegressions: {len(regressions)}")

    weights = derive_weights(realtime_cluster_requirements(),
                             default_catalog())
    print("\nWeighted trend for the real-time-cluster customer:")
    for version, total in history.weighted_trend(weights):
        print(f"  v{version}: {total:.1f}")


if __name__ == "__main__":
    main()
