#!/usr/bin/env python
"""Build a custom IDS product from library components and evaluate it.

Shows the extension path a downstream user takes: compose the Figure-1
subprocesses (hybrid detection, dynamic balancing, separated analysis, full
response suite) into a new product, then run it through the same scorecard
evaluation as the stock field.

Run:  python examples/custom_product.py   (~30 s)
"""

from repro.core.profiles import realtime_cluster_requirements
from repro.core.report import format_weighted_results
from repro.eval.runner import EvaluationOptions, evaluate_field
from repro.ids.analyzer import Analyzer
from repro.ids.console import ManagementConsole
from repro.ids.hybrid import HybridDetector
from repro.ids.loadbalancer import DynamicBalancer
from repro.ids.monitor import Monitor
from repro.ids.pipeline import IdsPipeline
from repro.ids.response import Firewall, SnmpTrapReceiver
from repro.ids.sensor import FailureMode, Sensor
from repro.products import ManhuntProduct, NidProduct, RealSecureProduct
from repro.products.base import Deployment, Product, ProductFacts


class HybridFarmProduct(Product):
    """A 'best of both' product: hybrid detection on a dynamic farm."""

    facts = ProductFacts(
        name="custom-hybrid-farm",
        vendor="example.py",
        version="0.1",
        detection="hybrid",
        scope="network",
        remote_management="full-secure",
        install_complexity="guided",
        policy_maintenance="central-live",
        license="enterprise",
        outsourced="in-house",
        monitored_host_cpu_fraction=0.0,
        dedicated_hosts=4,
        docs="fair",
        filter_generation="guided",
        eval_copy=True,
        admin_effort="medium",
        product_lifetime_years=3.0,
        support="business-hours",
        cost_3yr_usd=80_000,
        training="docs-only",
        adjustable_sensitivity="continuous",
        data_pool_select="runtime",
        host_based_fraction=0.0,
        multi_sensor="integrated",
        load_balancing="dynamic",
        autonomous_learning=True,
        interoperability="standards",
        session_recording=True,
        trend_analysis=True,
    )

    def __init__(self, sensitivity: float = 0.5, n_sensors: int = 3) -> None:
        self.sensitivity = sensitivity
        self.n_sensors = n_sensors

    def deploy(self, engine, testbed) -> Deployment:
        sensors = [
            Sensor(engine, f"hf-sensor{i}",
                   HybridDetector(mode="series",
                                  sensitivity=self.sensitivity),
                   ops_rate=70e6, header_ops=500.0, per_byte_ops=12.0,
                   parse_ops=2500.0, lethal_drop_rate=4000.0,
                   failure_mode=FailureMode.RESTART)
            for i in range(self.n_sensors)
        ]
        balancer = DynamicBalancer(engine, "hf-balancer", sensors,
                                   capacity_pps=100_000,
                                   induced_latency_s=100e-6)
        console = ManagementConsole(
            engine, "hf-console",
            firewall=Firewall(engine, update_latency_s=0.2),
            snmp=SnmpTrapReceiver(engine), secure_remote=True)
        monitor = Monitor(engine, "hf-monitor", notify_delay_s=0.1,
                          channels=("console", "email", "pager"))
        pipeline = IdsPipeline(
            engine, self.facts.name, sensors,
            [Analyzer(engine, "hf-analyzer", analysis_delay_s=0.02)],
            monitor, balancer=balancer, console=console,
            separated=True).wire()
        return Deployment(engine, self.facts, monitor, pipeline=pipeline,
                          console=console, inline_latency_s=100e-6,
                          testbed=testbed)


def main() -> None:
    options = EvaluationOptions(
        n_hosts=4, scenario_duration_s=50.0, train_duration_s=20.0,
        throughput_rates_pps=(500, 2000, 8000, 32000),
        throughput_probe_s=0.5)
    print("Evaluating the custom product against the stock field...\n")
    field = evaluate_field(
        [NidProduct, RealSecureProduct, ManhuntProduct, HybridFarmProduct],
        realtime_cluster_requirements(), options)

    for name, evaluation in field.evaluations.items():
        acc = evaluation.accuracy
        print(f"  {name:22s} detected {len(acc.detected)}/"
              f"{len(acc.actual)}, {acc.false_alarms} false alarms")
    print()
    print(format_weighted_results(field.results))
    print(f"\nRanking: {' > '.join(field.ranking())}")


if __name__ == "__main__":
    main()
