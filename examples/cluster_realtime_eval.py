#!/usr/bin/env python
"""Full evaluation of the four simulated products on the cluster testbed.

Reproduces the paper's section-3.2 prototype evaluation: deploys each
product on the simulated distributed real-time LAN, replays the canned
attack scenario, measures every analysis metric, merges in the open-source
facts, and ranks the field under the real-time-cluster requirement profile.

Run:  python examples/cluster_realtime_eval.py        (~1 minute)
      python examples/cluster_realtime_eval.py --quick (~15 s)

``--workers N`` shards the battery across a process pool and ``--cache-dir``
memoizes completed work units, so repeated runs (e.g. after editing the
report layer) are nearly free.  Neither changes the printed output by a
single byte: results are merged in work-unit order, never completion order.
"""

import argparse

from repro.core.profiles import realtime_cluster_requirements
from repro.core.report import format_weighted_results
from repro.eval.runner import EvaluationOptions, evaluate_field
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
)
from repro.report.figures import figure3_error_ratios
from repro.report.tables import scorecard_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenario and fewer load probes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width (1=serial, 0=one per CPU)")
    parser.add_argument("--cache-dir", nargs="?", const=".repro-cache",
                        default=None, metavar="DIR",
                        help="memoize work units on disk "
                             "(.repro-cache/ when no path is given)")
    args = parser.parse_args()

    if args.quick:
        options = EvaluationOptions(
            seed=args.seed, n_hosts=4, scenario_duration_s=40.0,
            train_duration_s=15.0,
            throughput_rates_pps=(500, 4000, 32000), throughput_probe_s=0.4,
            workers=args.workers, cache_dir=args.cache_dir)
    else:
        options = EvaluationOptions(seed=args.seed, workers=args.workers,
                                    cache_dir=args.cache_dir)

    print("Evaluating 4 products on the distributed real-time cluster "
          "testbed...\n")
    field = evaluate_field(
        [NidProduct, RealSecureProduct, ManhuntProduct, AafidProduct],
        realtime_cluster_requirements(), options)

    for name, evaluation in field.evaluations.items():
        acc = evaluation.accuracy
        tp = evaluation.throughput
        lethal = ("none observed" if tp.lethal_dose_pps is None
                  else f"{tp.lethal_dose_pps:.0f} pps")
        print(f"{name}:")
        print(f"  detected {len(acc.detected)}/{len(acc.actual)} attacks, "
              f"{acc.false_alarms} false alarms "
              f"(FPR={acc.false_positive_ratio:.4f}, "
              f"FNR={acc.false_negative_ratio:.4f})")
        print(f"  zero-loss {tp.zero_loss_pps:.0f} pps, "
              f"lethal dose {lethal}, "
              f"system throughput {tp.system_throughput_pps:.0f} pps")
        missed = ", ".join(sorted(acc.missed)) or "none"
        print(f"  missed: {missed}\n")

    print(figure3_error_ratios(
        field.evaluations["sim-manhunt"].accuracy))
    print()
    print(scorecard_table(field.scorecard))
    print()
    print("Weighted under the real-time-cluster requirement profile "
          "(Figure 5):")
    print(format_weighted_results(field.results))
    print(f"\nRanking: {' > '.join(field.ranking())}")


if __name__ == "__main__":
    main()
