#!/usr/bin/env python
"""Quickstart: the scorecard methodology in ~60 lines.

Walks the paper's workflow end to end without the simulation testbed:

1. take the metric catalog (Tables 1-3 and friends);
2. state requirements, least to most important (section 3.3);
3. derive metric weights (Figure 6);
4. score two candidate IDSs 0-4 per metric;
5. compute weighted class scores S_j (Figure 5) and rank.

Run:  python examples/quickstart.py
"""

from repro.core import (
    MetricClass,
    ObservationMethod,
    RequirementSet,
    Scorecard,
    default_catalog,
    derive_weights,
    format_weighted_results,
    rank_products,
    weighted_scores,
)

catalog = default_catalog()
print(f"Catalog: {len(catalog)} metrics "
      f"({len(catalog.table_metrics())} in the paper's tables)\n")

# --- 2. requirements, least to most important --------------------------
requirements = RequirementSet.from_ordered("my-site", [
    ("easy-ops", "a two-person team can run it",
     ["Ease of Configuration", "Ease of Policy Maintenance"]),
    ("low-noise", "operators are not flooded with false alarms",
     ["Observed False Positive Ratio"]),
    ("fast", "attacks are reported within seconds and blocked at the "
     "firewall automatically",
     ["Timeliness", "Firewall Interaction"]),
])

# --- 3. Figure-6 weight derivation --------------------------------------
weights = derive_weights(requirements, catalog)
print("Derived metric weights (non-zero):")
for name, weight in sorted(weights.items(), key=lambda kv: -kv[1]):
    if weight:
        print(f"  {name:35s} {weight:g}")
print()

# --- 4. score the candidates --------------------------------------------
card = Scorecard(catalog)
for product in ("alpha-ids", "bravo-ids"):
    card.add_product(product)

AN, OS = ObservationMethod.ANALYSIS, ObservationMethod.OPEN_SOURCE
# alpha: fast and reactive, but noisy and fiddly
card.set_score("alpha-ids", "Timeliness", 4, AN, "0.3 s mean to notify")
card.set_score("alpha-ids", "Firewall Interaction", 4, AN, "auto block")
card.set_score("alpha-ids", "Observed False Positive Ratio", 1, AN,
               "FPR 0.04 on the replay corpus")
card.set_score("alpha-ids", "Ease of Configuration", 1, AN, "manual files")
card.set_score("alpha-ids", "Ease of Policy Maintenance", 2, AN)
# bravo: quiet and easy, slower to react
card.set_score("bravo-ids", "Timeliness", 2, AN, "4 s mean to notify")
card.set_score("bravo-ids", "Firewall Interaction", 2, AN, "manual block")
card.set_score("bravo-ids", "Observed False Positive Ratio", 4, AN,
               "no false alarms observed")
card.set_score("bravo-ids", "Ease of Configuration", 4, AN, "turnkey")
card.set_score("bravo-ids", "Ease of Policy Maintenance", 4, AN)

# --- 5. Figure-5 weighted scores ----------------------------------------
results = weighted_scores(card, weights)
print(format_weighted_results(results))
winner = rank_products(results)[0]
print(f"\nBest fit for 'my-site': {winner.product} "
      f"(total {winner.total:g})")
