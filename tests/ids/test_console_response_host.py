"""Tests for the management console, response devices and host agents."""

import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address
from repro.net.node import BorderRouter, Host
from repro.net.packet import Packet, Protocol
from repro.ids.alert import Alert, Severity
from repro.ids.console import ManagementConsole
from repro.ids.host import HostAgent, LoggingLevel
from repro.ids.monitor import Monitor
from repro.ids.policy import ResponseAction, SecurityPolicy
from repro.ids.response import Firewall, Honeypot, RouterInterface, SnmpTrapReceiver
from repro.ids.sensor import Sensor
from repro.sim.engine import Engine
from repro.traffic.payload import telnet_login

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


def alert(severity=Severity.CRITICAL, category="syn-flood"):
    return Alert(time=0.0, analyzer="a", category=category, src=ATT, dst=TGT,
                 severity=severity, confidence=1.0)


class TestFirewall:
    def test_block_applies_after_latency(self):
        eng = Engine()
        fw = Firewall(eng, update_latency_s=0.2)
        fw.request_block(ATT)
        assert not fw.is_blocked(ATT)
        eng.run()
        assert fw.is_blocked(ATT)
        assert fw.block_list_size == 1
        assert len(fw.block_requests) == 1

    def test_filter_drops_blocked(self):
        eng = Engine()
        fw = Firewall(eng, update_latency_s=0.0)
        fw.request_block(ATT)
        eng.run()
        passed = []
        fw.filter(Packet(src=ATT, dst=TGT), passed.append)
        fw.filter(Packet(src=TGT, dst=ATT), passed.append)
        assert len(passed) == 1
        assert fw.blocked_packets == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Firewall(Engine(), update_latency_s=-1)


class TestRouterInterfaceAndHoneypot:
    def test_block_via_border_router(self):
        eng = Engine()
        router = BorderRouter(eng)
        iface = RouterInterface(eng, router, update_latency_s=0.5)
        iface.request_block(ATT)
        eng.run()
        assert router.is_blocked(ATT)

    def test_redirect_to_honeypot(self):
        eng = Engine()
        router = BorderRouter(eng)
        pot = Honeypot(eng, IPv4Address("10.0.0.250"))
        iface = RouterInterface(eng, router)
        iface.request_redirect(ATT, pot)
        eng.run()
        assert pot.is_attracted(ATT)
        assert len(iface.redirect_requests) == 1

    def test_honeypot_captures(self):
        pot = Honeypot(Engine(), IPv4Address("10.0.0.250"))
        p = Packet(src=ATT, dst=pot.address)
        pot.capture(p)
        assert pot.captured_packets == [p]


class TestSnmp:
    def test_trap_recording(self):
        eng = Engine()
        nms = SnmpTrapReceiver(eng)
        nms.trap("1.3.6.1.4.1.2002.1", "portscan from 198.18.0.1")
        assert nms.trap_count == 1
        t, oid, detail = nms.traps[0]
        assert oid.startswith("1.3.6")
        assert "portscan" in detail


class TestManagementConsole:
    def _console(self, eng, **kw):
        kw.setdefault("firewall", Firewall(eng, update_latency_s=0.1))
        kw.setdefault("snmp", SnmpTrapReceiver(eng))
        return ManagementConsole(eng, "mgr", **kw)

    def test_respond_firewall_block(self):
        eng = Engine()
        con = self._console(eng)
        con.respond(ResponseAction.FIREWALL_BLOCK, alert())
        eng.run()
        assert con.firewall.is_blocked(ATT)
        assert len(con.responses) == 1
        assert con.responses[0].action is ResponseAction.FIREWALL_BLOCK

    def test_respond_snmp(self):
        eng = Engine()
        con = self._console(eng)
        con.respond(ResponseAction.SNMP_TRAP, alert())
        assert con.snmp.trap_count == 1

    def test_missing_capability_noop(self):
        eng = Engine()
        con = ManagementConsole(eng, "mgr")  # no devices at all
        con.respond(ResponseAction.FIREWALL_BLOCK, alert())
        assert con.responses == []
        assert con.capabilities == {"firewall": False, "router": False,
                                    "snmp": False, "honeypot": False}

    def test_honeypot_redirect_needs_router_and_pot(self):
        eng = Engine()
        router = BorderRouter(eng)
        pot = Honeypot(eng, IPv4Address("10.0.0.250"))
        con = ManagementConsole(eng, "mgr",
                                router=RouterInterface(eng, router),
                                honeypot=pot)
        con.respond(ResponseAction.HONEYPOT_REDIRECT, alert())
        eng.run()
        assert pot.is_attracted(ATT)

    def test_push_sensitivity_to_managed_sensors(self):
        eng = Engine()

        class D:
            sensitivity = 0.5

            def process(self, p, t):
                return []

            def reset(self):
                pass

        s1 = Sensor(eng, "s1", D())
        s2 = Sensor(eng, "s2", D())
        con = self._console(eng)
        con.manage(s1)
        con.manage(s2)
        assert con.push_sensitivity(0.8) == 2
        assert s1.detector.sensitivity == 0.8
        assert s2.detector.sensitivity == 0.8
        assert con.config_pushes == 1

    def test_push_policy_to_monitor(self):
        eng = Engine()
        con = self._console(eng)
        m = Monitor(eng, "m0")
        con.manage(m)
        new_policy = SecurityPolicy()
        assert con.push_policy(new_policy) == 1
        assert m.policy is new_policy


class TestHostAgent:
    def _host(self, eng):
        return Host(eng, "h0", TGT)

    def test_cpu_overhead_nominal_vs_c2(self):
        eng = Engine()
        host = self._host(eng)
        agent = HostAgent(eng, host, logging_level=LoggingLevel.NOMINAL)
        assert 0.03 <= host.cpu.demand <= 0.05
        agent.set_logging_level(LoggingLevel.C2)
        assert host.cpu.demand == pytest.approx(0.20)

    def test_detects_failed_login_storm(self):
        eng = Engine()
        host = self._host(eng)
        agent = HostAgent(eng, host, failed_login_threshold=5)
        got = []
        agent.add_sink(got.append)
        bad = telnet_login("root", "guess", success=False)
        for _ in range(5):
            host.receive(Packet(src=ATT, dst=TGT, sport=23, dport=2000,
                                payload=bad, attack_id="bf-1"))
        assert len(got) == 1
        assert got[0].category == "failed-login-storm"
        assert got[0].truth_attack_id == "bf-1"
        assert agent.report_bytes > 0

    def test_detects_masquerade_after_failures(self):
        eng = Engine()
        host = self._host(eng)
        agent = HostAgent(eng, host, failed_login_threshold=4)
        got = []
        agent.add_sink(got.append)
        bad = telnet_login("root", "guess", success=False)
        ok = telnet_login("root", "hunter2", success=True)
        for _ in range(3):
            host.receive(Packet(src=ATT, dst=TGT, sport=23, dport=2000, payload=bad))
        host.receive(Packet(src=ATT, dst=TGT, sport=2000, dport=23, payload=ok))
        cats = {d.category for d in got}
        assert "masquerade-login" in cats

    def test_benign_traffic_no_detections(self):
        eng = Engine()
        host = self._host(eng)
        agent = HostAgent(eng, host)
        got = []
        agent.add_sink(got.append)
        host.receive(Packet(src=ATT, dst=TGT, dport=80, payload=b"GET / HTTP/1.0"))
        assert got == []
        assert agent.log_events == 1

    def test_migration_releases_cpu(self):
        eng = Engine()
        host = self._host(eng)
        agent = HostAgent(eng, host, logging_level=LoggingLevel.C2)
        assert host.cpu.demand > 0
        agent.migrate()
        assert host.cpu.demand == 0.0
        assert agent.cpu_fraction == 0.0
        assert agent.migrated

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            HostAgent(eng, self._host(eng), failed_login_threshold=0)
