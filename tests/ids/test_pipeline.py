"""Integration tests for the assembled IDS pipeline (Figure 1 end-to-end)."""

import numpy as np
import pytest

from repro.attacks import CgiProbe, PortScan
from repro.errors import CardinalityError, ConfigurationError
from repro.net.address import IPv4Address, Subnet
from repro.ids.analyzer import Analyzer
from repro.ids.console import ManagementConsole
from repro.ids.loadbalancer import HashBalancer
from repro.ids.monitor import Monitor
from repro.ids.pipeline import IdsPipeline
from repro.ids.response import Firewall, SnmpTrapReceiver
from repro.ids.sensor import Sensor, SignatureDetector
from repro.sim.engine import Engine
from repro.traffic.profiles import ClusterProfile

ATT = IPv4Address("198.18.0.1")


def make_pipeline(eng, n_sensors=2, separated=False, console=True, **sensor_kw):
    sensor_kw.setdefault("per_byte_ops", 2.0)
    sensor_kw.setdefault("lethal_drop_rate", None)
    sensors = [Sensor(eng, f"s{i}", SignatureDetector(sensitivity=0.5),
                      **sensor_kw)
               for i in range(n_sensors)]
    analyzers = [Analyzer(eng, "a0", analysis_delay_s=0.01)]
    monitor = Monitor(eng, "m0")
    balancer = HashBalancer(eng, "lb", sensors) if n_sensors > 1 else None
    con = None
    if console:
        con = ManagementConsole(eng, "mgr", firewall=Firewall(eng),
                                snmp=SnmpTrapReceiver(eng))
    return IdsPipeline(eng, "test-ids", sensors, analyzers, monitor,
                       balancer=balancer, console=con,
                       separated=separated).wire()


class TestWiring:
    def test_wire_validates_ok(self):
        eng = Engine()
        p = make_pipeline(eng)
        assert "2 sensor(s)" in p.describe()

    def test_multiple_sensors_need_balancer(self):
        eng = Engine()
        sensors = [Sensor(eng, f"s{i}", SignatureDetector()) for i in range(2)]
        with pytest.raises(ConfigurationError, match="load balancer"):
            IdsPipeline(eng, "x", sensors, [Analyzer(eng, "a")],
                        Monitor(eng, "m"))

    def test_ingest_before_wire_rejected(self):
        eng = Engine()
        sensors = [Sensor(eng, "s", SignatureDetector())]
        p = IdsPipeline(eng, "x", sensors, [Analyzer(eng, "a")],
                        Monitor(eng, "m"))
        from repro.net.packet import Packet
        with pytest.raises(ConfigurationError):
            p.ingest(Packet(src=ATT, dst=ATT))

    def test_wire_idempotent(self):
        eng = Engine()
        p = make_pipeline(eng)
        assert p.wire() is p


class TestEndToEnd:
    def test_attack_produces_alert_and_response(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=2)
        scan = PortScan(ATT, IPv4Address("10.0.0.5"), ports=range(1, 300),
                        rate_pps=500)
        trace, _ = scan.generate(0.0, np.random.default_rng(1))
        trace.replay(eng, p.ingest)
        eng.run()
        assert p.monitor.alert_count >= 1
        cats = {a.category for a in p.monitor.alerts}
        assert "portscan" in cats
        # MEDIUM portscan alerts trigger operator notification
        assert p.monitor.notifications

    def test_critical_attack_triggers_firewall_block(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=1)
        from repro.attacks import BufferOverflowExploit
        exploit = BufferOverflowExploit(ATT, IPv4Address("10.0.0.5"))
        trace, _ = exploit.generate(0.0, np.random.default_rng(1))
        trace.replay(eng, p.ingest)
        eng.run()
        assert p.console.firewall.is_blocked(ATT)

    def test_benign_traffic_no_alerts(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=2)
        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        trace = ClusterProfile(nodes).generate(5.0, np.random.default_rng(2))
        trace.replay(eng, p.ingest)
        eng.run()
        assert p.monitor.alert_count == 0
        assert p.packets_processed == len(trace)

    def test_set_sensitivity_via_console(self):
        eng = Engine()
        p = make_pipeline(eng)
        p.set_sensitivity(0.9)
        assert all(s.detector.sensitivity == 0.9 for s in p.sensors)

    def test_set_sensitivity_direct_without_console(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=1, console=False)
        p.set_sensitivity(0.2)
        assert p.sensors[0].detector.sensitivity == 0.2


class TestSeparationModel:
    def _run_cgi(self, p, eng):
        probe = CgiProbe(ATT, IPv4Address("10.0.0.5"))
        trace, _ = probe.generate(0.0, np.random.default_rng(3))
        trace.replay(eng, p.ingest)
        eng.run()

    def test_separated_accounts_network_overhead(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=1, separated=True)
        self._run_cgi(p, eng)
        assert p.network_overhead_bytes > 0
        assert p.monitor.alert_count >= 1

    def test_combined_no_network_overhead(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=1, separated=False)
        self._run_cgi(p, eng)
        assert p.network_overhead_bytes == 0
        assert p.monitor.alert_count >= 1

    def test_combined_charges_sensor_budget(self):
        eng1, eng2 = Engine(), Engine()
        combined = make_pipeline(eng1, n_sensors=1, separated=False)
        separated = make_pipeline(eng2, n_sensors=1, separated=True)
        self._run_cgi(combined, eng1)
        self._run_cgi(separated, eng2)
        assert combined.sensors[0].busy_ops > separated.sensors[0].busy_ops


class TestTraining:
    def test_train_on_benign_trace(self):
        from repro.ids.hybrid import HybridDetector

        eng = Engine()
        sensors = [Sensor(eng, "s0", HybridDetector(sensitivity=0.5),
                          lethal_drop_rate=None)]
        p = IdsPipeline(eng, "x", sensors, [Analyzer(eng, "a0")],
                        Monitor(eng, "m0")).wire()
        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        benign = ClusterProfile(nodes).generate(10.0, np.random.default_rng(4))
        assert p.train_on(benign) == 1
        p.freeze()
        # engine usable after freeze
        benign.replay(eng, p.ingest)
        eng.run()
        assert p.packets_processed == len(benign)

    def test_stats_aggregation(self):
        eng = Engine()
        p = make_pipeline(eng, n_sensors=2)
        assert p.packets_dropped == 0
        assert p.crash_count == 0
        assert not p.any_sensor_down
