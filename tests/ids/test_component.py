"""Tests for the Figure-2 cardinality validator."""

import pytest

from repro.errors import CardinalityError
from repro.ids.component import Component, Subprocess, validate_wiring


class _C(Component):
    def __init__(self, name, kind):
        super().__init__(name)
        self.kind = kind


def lb(n="lb"):
    return _C(n, Subprocess.LOAD_BALANCER)


def sensor(n="s"):
    return _C(n, Subprocess.SENSOR)


def analyzer(n="a"):
    return _C(n, Subprocess.ANALYZER)


def monitor(n="m"):
    return _C(n, Subprocess.MONITOR)


def manager(n="mgr"):
    return _C(n, Subprocess.MANAGER)


def minimal():
    s, a, m = sensor(), analyzer(), monitor()
    return [s, a, m], [(s, a), (a, m)]


class TestLegalWirings:
    def test_minimal_pipeline(self):
        comps, links = minimal()
        validate_wiring(comps, links)  # no exception

    def test_lb_one_to_many_sensors(self):
        b = lb()
        sensors = [sensor(f"s{i}") for i in range(4)]
        a, m = analyzer(), monitor()
        links = [(b, s) for s in sensors]
        links += [(s, a) for s in sensors]
        links.append((a, m))
        validate_wiring([b, *sensors, a, m], links)

    def test_sensors_analyzers_m_to_m(self):
        sensors = [sensor(f"s{i}") for i in range(3)]
        analyzers = [analyzer(f"a{i}") for i in range(2)]
        m = monitor()
        links = [(s, a) for s in sensors for a in analyzers]
        links += [(a, m) for a in analyzers]
        b = lb()
        links += [(b, s) for s in sensors]
        validate_wiring([b, *sensors, *analyzers, m], links)

    def test_full_five_subprocess_deployment(self):
        b, s, a, m, g = lb(), sensor(), analyzer(), monitor(), manager()
        links = [(b, s), (s, a), (a, m), (m, g)]
        mgmt = [(g, b), (g, s), (g, a), (g, m)]
        validate_wiring([b, s, a, m, g], links, mgmt)


class TestIllegalWirings:
    def test_sensor_with_two_balancers(self):
        b1, b2, s, a, m = lb("b1"), lb("b2"), sensor(), analyzer(), monitor()
        links = [(b1, s), (b2, s), (s, a), (a, m)]
        with pytest.raises(CardinalityError, match="upstream"):
            validate_wiring([b1, b2, s, a, m], links)

    def test_analyzer_with_two_monitors_rejected(self):
        # two monitors is itself illegal (one console per IDS)
        s, a = sensor(), analyzer()
        m1, m2 = monitor("m1"), monitor("m2")
        with pytest.raises(CardinalityError, match="one monitoring console"):
            validate_wiring([s, a, m1, m2], [(s, a), (a, m1), (a, m2)])

    def test_monitor_with_two_managers(self):
        s, a, m = sensor(), analyzer(), monitor()
        g1, g2 = manager("g1"), manager("g2")
        with pytest.raises(CardinalityError, match="management console"):
            validate_wiring([s, a, m, g1, g2], [(s, a), (a, m), (m, g1), (m, g2)])

    def test_illegal_edge_kind(self):
        s, a, m = sensor(), analyzer(), monitor()
        b = lb()
        # LB directly to analyzer is not a defined relationship
        with pytest.raises(CardinalityError, match="illegal data link"):
            validate_wiring([b, s, a, m], [(b, a), (s, a), (a, m)])

    def test_skip_level_edge_rejected(self):
        s, a, m = sensor(), analyzer(), monitor()
        with pytest.raises(CardinalityError, match="illegal data link"):
            validate_wiring([s, a, m], [(s, m), (s, a), (a, m)])

    def test_missing_essential_subprocess(self):
        s, a = sensor(), analyzer()
        with pytest.raises(CardinalityError, match="missing essential"):
            validate_wiring([s, a], [(s, a)])

    def test_sensor_without_analyzer(self):
        s1, s2, a, m = sensor("s1"), sensor("s2"), analyzer(), monitor()
        b = lb()
        links = [(b, s1), (b, s2), (s1, a), (a, m)]  # s2 dangles
        with pytest.raises(CardinalityError, match="feeds no analyzer"):
            validate_wiring([b, s1, s2, a, m], links)

    def test_analyzer_without_monitor(self):
        s, a1, a2, m = sensor(), analyzer("a1"), analyzer("a2"), monitor()
        links = [(s, a1), (s, a2), (a1, m)]  # a2 dangles
        with pytest.raises(CardinalityError, match="reports to no monitor"):
            validate_wiring([s, a1, a2, m], links)

    def test_balancer_without_sensor(self):
        b, s, a, m = lb(), sensor(), analyzer(), monitor()
        with pytest.raises(CardinalityError, match="feeds no sensor"):
            validate_wiring([b, s, a, m], [(s, a), (a, m)])

    def test_unknown_component_in_link(self):
        comps, links = minimal()
        stranger = sensor("stranger")
        links.append((stranger, comps[1]))
        with pytest.raises(CardinalityError, match="unknown component"):
            validate_wiring(comps, links)

    def test_mgmt_source_must_be_manager(self):
        comps, links = minimal()
        s, a, m = comps
        with pytest.raises(CardinalityError, match="not a manager"):
            validate_wiring(comps, links, [(s, a)])

    def test_mgmt_target_cannot_be_manager(self):
        s, a, m, g = sensor(), analyzer(), monitor(), manager()
        g2 = manager("g2")
        comps = [s, a, m, g]
        links = [(s, a), (a, m), (m, g)]
        with pytest.raises(CardinalityError):
            validate_wiring([*comps, g2], links, [(g, g2)])

    def test_target_managed_twice_is_fine_same_manager(self):
        s, a, m, g = sensor(), analyzer(), monitor(), manager()
        links = [(s, a), (a, m), (m, g)]
        validate_wiring([s, a, m, g], links, [(g, s), (g, s)])
