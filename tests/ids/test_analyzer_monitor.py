"""Tests for analyzer (primary/secondary analysis) and monitor/policy."""

import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address
from repro.ids.alert import Alert, Detection, Severity
from repro.ids.analyzer import Analyzer
from repro.ids.monitor import Monitor
from repro.ids.policy import PolicyRule, ResponseAction, SecurityPolicy
from repro.sim.engine import Engine

SRC = IPv4Address("198.18.0.1")
DST = IPv4Address("10.0.0.5")


def det(time=0.0, category="portscan", severity=Severity.MEDIUM, score=0.9,
        src=SRC, truth=None):
    return Detection(time=time, sensor="s0", category=category, src=src,
                     dst=DST, score=score, severity=severity,
                     truth_attack_id=truth)


class TestAnalyzerPrimary:
    def test_emits_alert_for_detection(self):
        eng = Engine()
        a = Analyzer(eng, "a0", analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det(truth="atk-1"))
        eng.run()
        assert len(got) == 1
        alert = got[0]
        assert isinstance(alert, Alert)
        assert alert.category == "portscan"
        assert alert.truth_attack_id == "atk-1"

    def test_dedup_within_window(self):
        eng = Engine()
        a = Analyzer(eng, "a0", dedup_window_s=5.0, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        for i in range(10):
            a.receive(det(time=i * 0.1))
        eng.run()
        assert len(got) == 1
        assert a.detections_received == 10

    def test_new_window_new_alert(self):
        eng = Engine()
        a = Analyzer(eng, "a0", dedup_window_s=5.0, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det(time=0.0))
        a.receive(det(time=10.0))
        eng.run()
        assert len(got) == 2

    def test_distinct_categories_not_deduped(self):
        eng = Engine()
        a = Analyzer(eng, "a0", analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det(category="portscan"))
        a.receive(det(category="syn-flood"))
        eng.run()
        assert len(got) == 2

    def test_burst_promotes_severity(self):
        eng = Engine()
        a = Analyzer(eng, "a0", burst_promote=5, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        for i in range(5):
            a.receive(det(time=i * 0.01, severity=Severity.MEDIUM))
        eng.run()
        assert len(got) == 2  # initial alert + promoted burst alert
        assert got[-1].severity == Severity.HIGH
        assert got[-1].detections == 5

    def test_analysis_delay_applied(self):
        eng = Engine()
        a = Analyzer(eng, "a0", analysis_delay_s=0.5)
        got = []
        a.set_sink(lambda alert: got.append((eng.now, alert)))
        a.receive(det(time=0.0))
        eng.run()
        assert got[0][0] == pytest.approx(0.5)
        assert got[0][1].time == pytest.approx(0.5)

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            Analyzer(eng, "a", dedup_window_s=0)
        with pytest.raises(ConfigurationError):
            Analyzer(eng, "a", burst_promote=1)


class TestAnalyzerSecondary:
    def test_correlation_links_same_source(self):
        eng = Engine()
        a = Analyzer(eng, "a0", correlation=True, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det(category="portscan"))
        a.receive(det(category="cgi-exploit"))
        a.receive(det(category="brute-force"))
        eng.run()
        cids = {alert.correlation_id for alert in got}
        assert len(cids) == 1
        cid = cids.pop()
        assert cid is not None
        assert a.campaign_breadth(cid) == 3

    def test_different_sources_different_campaigns(self):
        eng = Engine()
        a = Analyzer(eng, "a0", correlation=True, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det(src=SRC))
        a.receive(det(src=IPv4Address("198.18.0.2"), category="x"))
        eng.run()
        assert len({alert.correlation_id for alert in got}) == 2

    def test_correlation_disabled(self):
        eng = Engine()
        a = Analyzer(eng, "a0", correlation=False, analysis_delay_s=0.0)
        got = []
        a.set_sink(got.append)
        a.receive(det())
        eng.run()
        assert got[0].correlation_id is None

    def test_storage_accounting_bounded(self):
        eng = Engine()
        a = Analyzer(eng, "a0", history_limit=5, analysis_delay_s=0.0)
        a.set_sink(lambda alert: None)
        for i in range(10):
            a.receive(det(time=float(i) * 20))
        assert a.history_records == 5
        assert a.history_evictions == 5
        assert a.storage_bytes == 5 * 96


class TestSecurityPolicy:
    def test_first_match_wins(self):
        policy = SecurityPolicy(rules=[
            PolicyRule(Severity.HIGH, (ResponseAction.FIREWALL_BLOCK,)),
            PolicyRule(Severity.LOW, (ResponseAction.NOTIFY,)),
        ])
        high = Alert(time=0, analyzer="a", category="x", src=SRC, dst=DST,
                     severity=Severity.HIGH, confidence=0.9)
        low = Alert(time=0, analyzer="a", category="x", src=SRC, dst=DST,
                    severity=Severity.LOW, confidence=0.9)
        assert policy.actions_for(high) == (ResponseAction.FIREWALL_BLOCK,)
        assert policy.actions_for(low) == (ResponseAction.NOTIFY,)

    def test_default_actions_when_no_match(self):
        policy = SecurityPolicy(rules=[PolicyRule(Severity.HIGH, ())])
        info = Alert(time=0, analyzer="a", category="x", src=SRC, dst=DST,
                     severity=Severity.INFO, confidence=0.5)
        assert policy.actions_for(info) == (ResponseAction.LOG_ONLY,)

    def test_category_prefix_filter(self):
        rule = PolicyRule(Severity.LOW, (ResponseAction.NOTIFY,),
                          category_prefix="anomaly-")
        anom = Alert(time=0, analyzer="a", category="anomaly-rate", src=SRC,
                     dst=DST, severity=Severity.MEDIUM, confidence=0.9)
        sig = Alert(time=0, analyzer="a", category="portscan", src=SRC,
                    dst=DST, severity=Severity.MEDIUM, confidence=0.9)
        assert rule.matches(anom)
        assert not rule.matches(sig)

    def test_add_rule_position(self):
        policy = SecurityPolicy(rules=[PolicyRule(Severity.LOW, ())])
        policy.add_rule(PolicyRule(Severity.HIGH, (ResponseAction.SNMP_TRAP,)),
                        position=0)
        assert len(policy) == 2
        assert policy.rules[0].min_severity is Severity.HIGH

    def test_default_policy_shape(self):
        policy = SecurityPolicy.default()
        crit = Alert(time=0, analyzer="a", category="syn-flood", src=SRC,
                     dst=DST, severity=Severity.CRITICAL, confidence=1.0)
        actions = policy.actions_for(crit)
        assert ResponseAction.FIREWALL_BLOCK in actions
        assert ResponseAction.NOTIFY in actions


class TestMonitor:
    def _alert(self, severity=Severity.MEDIUM, category="portscan", t=0.0):
        return Alert(time=t, analyzer="a0", category=category, src=SRC,
                     dst=DST, severity=severity, confidence=0.9)

    def test_notifies_per_policy(self):
        eng = Engine()
        m = Monitor(eng, "m0", notify_delay_s=0.1)
        m.receive(self._alert(Severity.MEDIUM))
        m.receive(self._alert(Severity.INFO))  # below policy floor
        eng.run()
        assert len(m.notifications) == 1
        assert m.notifications[0].time == pytest.approx(0.1)
        assert m.alert_count == 2

    def test_notification_channels(self):
        eng = Engine()
        m = Monitor(eng, "m0", channels=("console", "pager"))
        m.receive(self._alert(Severity.HIGH))
        eng.run()
        assert {n.channel for n in m.notifications} == {"console", "pager"}

    def test_responder_invoked_for_response_actions(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        responses = []
        m.set_responder(lambda action, alert: responses.append(action))
        m.receive(self._alert(Severity.CRITICAL))
        eng.run()
        assert ResponseAction.FIREWALL_BLOCK in responses
        assert ResponseAction.SNMP_TRAP in responses

    def test_no_responder_graceful(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        m.receive(self._alert(Severity.CRITICAL))
        eng.run()  # must not raise

    def test_query_filters(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        m.receive(self._alert(Severity.LOW, "portscan", t=1.0))
        m.receive(self._alert(Severity.HIGH, "anomaly-rate", t=2.0))
        assert len(m.query(min_severity=Severity.HIGH)) == 1
        assert len(m.query(category_prefix="anomaly-")) == 1
        assert len(m.query(since=1.5)) == 1
        assert len(m.query(src=SRC)) == 2
        assert len(m.query(src=DST)) == 0

    def test_severity_histogram(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        m.receive(self._alert(Severity.LOW))
        m.receive(self._alert(Severity.LOW))
        m.receive(self._alert(Severity.HIGH))
        hist = m.severity_histogram()
        assert hist[Severity.LOW] == 2
        assert hist[Severity.HIGH] == 1

    def test_error_reports(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        m.report_error("sensor s0 failed", 3.0)
        assert m.error_reports == [(3.0, "sensor s0 failed")]

    def test_validation(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            Monitor(eng, "m", notify_delay_s=-1)
        with pytest.raises(ConfigurationError):
            Monitor(eng, "m", channels=())


class TestMonitorTrend:
    def _alert(self, t, category="portscan"):
        return Alert(time=t, analyzer="a0", category=category, src=SRC,
                     dst=DST, severity=Severity.MEDIUM, confidence=0.9)

    def test_windows_counted(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        for t in (1.0, 2.0, 65.0, 66.0, 67.0):
            m.receive(self._alert(t))
        trend = m.alert_trend(window_s=60.0)
        assert trend == [(0.0, 2), (60.0, 3)]

    def test_category_filter(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        m.receive(self._alert(1.0, "portscan"))
        m.receive(self._alert(2.0, "anomaly-rate"))
        trend = m.alert_trend(window_s=60.0, category_prefix="anomaly-")
        assert trend == [(0.0, 1)]

    def test_empty_and_validation(self):
        eng = Engine()
        m = Monitor(eng, "m0")
        assert m.alert_trend() == []
        with pytest.raises(ConfigurationError):
            m.alert_trend(window_s=0)
