"""Tests for host audit trails and audit-driven insider detection."""

import numpy as np
import pytest

from repro.attacks import TrustAbuse
from repro.ids.audit import (
    C2_EVENTS,
    KNOWN_CLUSTER_COMMANDS,
    NOMINAL_EVENTS,
    AuditEvent,
    AuditEventType,
    AuditTrail,
    packet_to_events,
)
from repro.ids.host import HostAgent, LoggingLevel
from repro.net.address import IPv4Address
from repro.net.node import Host
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.sim.engine import Engine
from repro.traffic.payload import cluster_command, telnet_login

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


class TestPacketToEvents:
    def test_syn_logs_connection(self):
        pkt = Packet(src=ATT, dst=TGT, dport=80, proto=Protocol.TCP,
                     flags=TcpFlags.SYN)
        events = packet_to_events(pkt, 1.0)
        assert [e.etype for e in events] == [AuditEventType.CONNECTION]
        assert events[0].subject == str(ATT)
        assert "port 80" in events[0].detail

    def test_synack_not_logged_as_connection(self):
        pkt = Packet(src=TGT, dst=ATT, proto=Protocol.TCP,
                     flags=TcpFlags.SYN | TcpFlags.ACK)
        assert packet_to_events(pkt, 0.0) == []

    def test_login_events(self):
        fail = Packet(src=ATT, dst=TGT,
                      payload=telnet_login("root", "x", success=False))
        ok = Packet(src=ATT, dst=TGT,
                    payload=telnet_login("root", "y", success=True))
        assert packet_to_events(fail, 0.0)[0].etype is AuditEventType.LOGIN_FAILURE
        assert packet_to_events(ok, 0.0)[0].etype is AuditEventType.LOGIN_SUCCESS

    def test_command_only_at_c2_depth(self):
        pkt = Packet(src=ATT, dst=TGT, payload=cluster_command(1, "exfil"))
        nominal = packet_to_events(pkt, 0.0, NOMINAL_EVENTS)
        c2 = packet_to_events(pkt, 0.0, C2_EVENTS)
        assert nominal == []
        assert [e.etype for e in c2] == [AuditEventType.COMMAND]
        assert c2[0].detail == "exfil"

    def test_telemetry_is_not_a_command(self):
        from repro.traffic.payload import cluster_telemetry
        pkt = Packet(src=ATT, dst=TGT, payload=cluster_telemetry(
            np.random.default_rng(1), 2))
        assert packet_to_events(pkt, 0.0, C2_EVENTS) == []

    def test_ground_truth_propagates(self):
        pkt = Packet(src=ATT, dst=TGT, flags=TcpFlags.SYN,
                     proto=Protocol.TCP, attack_id="x-1")
        assert packet_to_events(pkt, 0.0)[0].truth_attack_id == "x-1"


class TestAuditTrail:
    def test_bounded_fifo(self):
        trail = AuditTrail(capacity=3)
        for i in range(5):
            trail.log(AuditEvent(float(i), AuditEventType.CONNECTION,
                                 "s", str(i)))
        assert len(trail) == 3
        assert trail.total_logged == 5
        assert trail.overwritten == 2
        assert [e.detail for e in trail.query()] == ["2", "3", "4"]

    def test_query_filters(self):
        trail = AuditTrail()
        trail.log(AuditEvent(1.0, AuditEventType.CONNECTION, "a", ""))
        trail.log(AuditEvent(2.0, AuditEventType.LOGIN_FAILURE, "b", ""))
        trail.log(AuditEvent(3.0, AuditEventType.LOGIN_FAILURE, "a", ""))
        assert len(trail.query(etype=AuditEventType.LOGIN_FAILURE)) == 2
        assert len(trail.query(subject="a")) == 2
        assert len(trail.query(since=2.5)) == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AuditTrail(capacity=0)


class TestInsiderDetectionViaAudit:
    def _agent(self, level):
        eng = Engine()
        host = Host(eng, "master", TGT)
        agent = HostAgent(eng, host, logging_level=level)
        got = []
        agent.add_sink(got.append)
        return eng, host, agent, got

    def _replay_trust_abuse(self, eng, host):
        insider = IPv4Address("10.0.0.2")
        trace, rec = TrustAbuse(insider, TGT).generate(
            0.0, np.random.default_rng(2))
        for t, pkt in trace:
            if pkt.dst == TGT:
                eng.schedule_at(t, host.receive, pkt)
        eng.run()
        return rec

    def test_c2_agent_catches_rogue_command(self):
        eng, host, agent, got = self._agent(LoggingLevel.C2)
        rec = self._replay_trust_abuse(eng, host)
        cats = {d.category for d in got}
        assert "rogue-command" in cats
        rogue = next(d for d in got if d.category == "rogue-command")
        assert rogue.truth_attack_id == rec.attack_id
        assert rogue.severity.name == "CRITICAL"

    def test_nominal_agent_blind_to_rogue_command(self):
        """The audit-depth/coverage trade: nominal logging (3-5 % CPU)
        never records COMMAND events, so the insider goes unseen."""
        eng, host, agent, got = self._agent(LoggingLevel.NOMINAL)
        self._replay_trust_abuse(eng, host)
        assert all(d.category != "rogue-command" for d in got)

    def test_rogue_dedup_per_subject_command(self):
        eng, host, agent, got = self._agent(LoggingLevel.C2)
        pkt = Packet(src=ATT, dst=TGT, payload=cluster_command(1, "exfil"))
        host.receive(pkt)
        host.receive(pkt.copy())
        assert sum(1 for d in got if d.category == "rogue-command") == 1

    def test_known_commands_clean(self):
        eng, host, agent, got = self._agent(LoggingLevel.C2)
        for cmd in KNOWN_CLUSTER_COMMANDS:
            host.receive(Packet(src=ATT, dst=TGT,
                                payload=cluster_command(1, cmd)))
        assert got == []

    def test_audit_trail_populated(self):
        eng, host, agent, got = self._agent(LoggingLevel.C2)
        host.receive(Packet(src=ATT, dst=TGT, dport=23, proto=Protocol.TCP,
                            flags=TcpFlags.SYN))
        assert len(agent.trail.query(etype=AuditEventType.CONNECTION)) == 1
