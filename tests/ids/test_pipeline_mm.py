"""Tests for the M:M sensor/analyzer wiring and remaining pipeline paths."""

import numpy as np
import pytest

from repro.attacks import CgiProbe
from repro.ids.analyzer import Analyzer
from repro.ids.loadbalancer import HashBalancer
from repro.ids.monitor import Monitor
from repro.ids.pipeline import IdsPipeline
from repro.ids.sensor import Sensor, SignatureDetector
from repro.net.address import IPv4Address
from repro.sim.engine import Engine

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


def build_mm(eng, n_sensors=2, n_analyzers=3):
    sensors = [Sensor(eng, f"s{i}", SignatureDetector(sensitivity=0.5),
                      lethal_drop_rate=None) for i in range(n_sensors)]
    analyzers = [Analyzer(eng, f"a{i}", analysis_delay_s=0.0,
                          dedup_window_s=0.001)
                 for i in range(n_analyzers)]
    monitor = Monitor(eng, "m0")
    balancer = HashBalancer(eng, "lb", sensors) if n_sensors > 1 else None
    return IdsPipeline(eng, "mm", sensors, analyzers, monitor,
                       balancer=balancer).wire()


class TestManyToMany:
    def test_detections_spread_over_analyzers(self):
        eng = Engine()
        pipeline = build_mm(eng, n_sensors=1, n_analyzers=3)
        probe = CgiProbe(ATT, TGT)  # five sessions -> multiple detections
        trace, _ = probe.generate(0.0, np.random.default_rng(1))
        trace.replay(eng, pipeline.ingest)
        eng.run()
        # round-robin M:M: more than one analyzer did work
        busy = [a for a in pipeline.analyzers if a.detections_received > 0]
        assert len(busy) >= 2
        # and everything converged on the single monitor (M:1)
        assert pipeline.monitor.alert_count == sum(
            a.alerts_emitted for a in pipeline.analyzers)

    def test_all_alerts_reach_single_monitor_from_two_sensors(self):
        eng = Engine()
        pipeline = build_mm(eng, n_sensors=2, n_analyzers=2)
        probe = CgiProbe(ATT, TGT)
        trace, _ = probe.generate(0.0, np.random.default_rng(2))
        trace.replay(eng, pipeline.ingest)
        eng.run()
        assert pipeline.monitor.alert_count >= 1

    def test_describe_mentions_counts(self):
        eng = Engine()
        pipeline = build_mm(eng, n_sensors=2, n_analyzers=3)
        text = pipeline.describe()
        assert "2 sensor(s)" in text
        assert "3 analyzer(s)" in text
