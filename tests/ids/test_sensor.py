"""Tests for the sensor capacity/overload/failure model and detectors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol
from repro.ids.alert import Detection, Severity
from repro.ids.hybrid import HybridDetector
from repro.ids.sensor import (
    AnomalyDetector,
    FailureMode,
    Sensor,
    SignatureDetector,
)
from repro.sim.engine import Engine

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


class NullDetector:
    """Detector that never fires; isolates the capacity model."""

    sensitivity = 0.5

    def process(self, pkt, now):
        return []

    def reset(self):
        pass


class FixedDetector:
    """Detector that always fires once."""

    sensitivity = 0.5

    def process(self, pkt, now):
        return [("test-cat", Severity.MEDIUM, 0.9, "")]

    def reset(self):
        pass


def pkt(payload=None, payload_len=None, **kw):
    kw.setdefault("src", ATT)
    kw.setdefault("dst", TGT)
    return Packet(payload=payload, payload_len=payload_len, **kw)


class TestCostModel:
    def test_header_only_cost_ignores_payload(self):
        s = Sensor(Engine(), "s", NullDetector(), per_byte_ops=0.0,
                   header_ops=100.0)
        assert s.packet_cost_ops(pkt(payload_len=5000)) == 100.0
        assert not s.deep_inspection

    def test_deep_cost_scales_with_bytes(self):
        s = Sensor(Engine(), "s", NullDetector(), header_ops=100.0,
                   per_byte_ops=2.0, parse_ops=0.0)
        assert s.packet_cost_ops(pkt(payload_len=500)) == 100.0 + 1000.0

    def test_parse_cost_only_for_protocol_content(self):
        s = Sensor(Engine(), "s", NullDetector(), header_ops=0.0,
                   per_byte_ops=1.0, parse_ops=5000.0)
        http = pkt(payload=b"GET / HTTP/1.0\r\n\r\n")
        rand = pkt(payload=b"\x8f\x13\x99" * 6)
        assert s.packet_cost_ops(http) == len(http.payload) + 5000.0
        assert s.packet_cost_ops(rand) == len(rand.payload)

    def test_logical_payload_no_parse_cost(self):
        s = Sensor(Engine(), "s", NullDetector(), header_ops=0.0,
                   per_byte_ops=1.0, parse_ops=5000.0)
        assert s.packet_cost_ops(pkt(payload_len=100)) == 100.0


class TestOverload:
    def test_processes_within_capacity(self):
        eng = Engine()
        s = Sensor(eng, "s", NullDetector(), ops_rate=1e6, header_ops=100.0,
                   per_byte_ops=0.0)
        for i in range(100):
            eng.schedule_at(i * 0.01, s.ingest, pkt())
        eng.run()
        assert s.processed == 100
        assert s.dropped_overload == 0

    def test_drops_when_backlog_exceeds_bound(self):
        eng = Engine()
        # each packet takes 10 ms; queue bound 50 ms -> at most ~6 in flight
        s = Sensor(eng, "s", NullDetector(), ops_rate=1e4, header_ops=100.0,
                   per_byte_ops=0.0, max_queue_delay_s=0.05,
                   lethal_drop_rate=None)
        for _ in range(100):
            s.ingest(pkt())
        eng.run()
        assert s.dropped_overload > 0
        assert s.processed + s.dropped_overload == 100
        assert 0.0 < s.drop_ratio < 1.0

    def test_inspect_delay_recorded(self):
        eng = Engine()
        s = Sensor(eng, "s", NullDetector(), ops_rate=1e4, header_ops=100.0,
                   per_byte_ops=0.0)
        s.ingest(pkt())
        eng.run()
        assert s.inspect_delay.n == 1
        assert s.inspect_delay.mean == pytest.approx(0.01)

    def test_utilization(self):
        eng = Engine()
        s = Sensor(eng, "s", NullDetector(), ops_rate=1e4, header_ops=100.0,
                   per_byte_ops=0.0)
        for i in range(50):
            eng.schedule_at(i * 0.1, s.ingest, pkt())
        eng.run(until=5.0)
        assert s.utilization(5.0) == pytest.approx(50 * 100.0 / (1e4 * 5.0))

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            Sensor(Engine(), "s", NullDetector(), ops_rate=0)
        with pytest.raises(ConfigurationError):
            Sensor(Engine(), "s", NullDetector(), max_queue_delay_s=0)


class TestFailureModes:
    def _flood(self, sensor, eng, n=4000, rate=20000.0):
        for i in range(n):
            eng.schedule_at(i / rate, sensor.ingest, pkt())
        eng.run()

    def _overloadable(self, eng, mode):
        return Sensor(eng, "s", NullDetector(), ops_rate=1e4, header_ops=100.0,
                      per_byte_ops=0.0, max_queue_delay_s=0.02,
                      lethal_drop_rate=1000.0, failure_mode=mode,
                      reboot_time_s=10.0, restart_time_s=0.5)

    def test_hang_stays_down_silently(self):
        eng = Engine()
        s = self._overloadable(eng, FailureMode.HANG)
        errors = []
        s.set_error_sink(lambda msg, t: errors.append(msg))
        self._flood(s, eng)
        assert s.crashes == 1
        assert not s.up
        assert errors == []
        assert s.dropped_down > 0

    def test_restart_recovers_and_reports(self):
        eng = Engine()
        s = self._overloadable(eng, FailureMode.RESTART)
        errors = []
        s.set_error_sink(lambda msg, t: errors.append((msg, t)))
        self._flood(s, eng)
        eng.run(until=eng.now + 1.0)
        assert s.crashes >= 1
        assert s.up  # recovered
        assert errors and "failed" in errors[0][0]

    def test_reboot_recovers_slowly_reports_after(self):
        eng = Engine()
        s = self._overloadable(eng, FailureMode.REBOOT)
        errors = []
        s.set_error_sink(lambda msg, t: errors.append((msg, t)))
        self._flood(s, eng)
        crash_time = eng.now
        eng.run(until=crash_time + 11.0)
        assert s.up
        assert errors and "recovered" in errors[0][0]

    def test_lethal_disabled(self):
        eng = Engine()
        s = Sensor(eng, "s", NullDetector(), ops_rate=1e4, header_ops=100.0,
                   per_byte_ops=0.0, max_queue_delay_s=0.02,
                   lethal_drop_rate=None)
        self._flood(s, eng)
        assert s.crashes == 0
        assert s.up


class TestDetectionEmission:
    def test_detections_carry_ground_truth(self):
        eng = Engine()
        s = Sensor(eng, "s", FixedDetector())
        got = []
        s.add_sink(got.append)
        s.ingest(pkt(attack_id="atk-1"))
        s.ingest(pkt())
        eng.run()
        assert len(got) == 2
        assert got[0].truth_attack_id == "atk-1"
        assert got[1].truth_attack_id is None
        assert all(isinstance(d, Detection) for d in got)
        assert s.detections_emitted == 2

    def test_round_robin_across_sinks(self):
        eng = Engine()
        s = Sensor(eng, "s", FixedDetector())
        a, b = [], []
        s.add_sink(a.append)
        s.add_sink(b.append)
        for _ in range(4):
            s.ingest(pkt())
        eng.run()
        assert len(a) == 2 and len(b) == 2


class TestDetectorAdapters:
    def test_signature_detector_default_ruleset(self):
        d = SignatureDetector(sensitivity=0.5)
        hits = d.process(pkt(dport=80, payload=b"GET /cgi-bin/phf?x HTTP/1.0\r\n"), 0.0)
        assert any(cat == "cgi-exploit" for cat, *_ in hits)

    def test_signature_detector_sensitivity_propagates(self):
        d = SignatureDetector(sensitivity=0.3)
        assert d.engine.sensitivity == 0.3
        d.sensitivity = 0.8
        assert d.engine.sensitivity == 0.8

    @staticmethod
    def _train(d):
        benign = pkt(proto=Protocol.UDP, sport=7100, dport=7000,
                     payload=b"\x00" * 64)
        for i in range(20):
            d.train(benign, float(i))
        d.freeze()

    @staticmethod
    def _dual_evil():
        """A packet that trips both engines: shellcode marker (signature)
        on a UDP service never seen in training (anomaly new-service)."""
        from repro.attacks.exploits import OVERFLOW_MARKER
        return pkt(proto=Protocol.UDP, sport=2500, dport=9999,
                   payload=OVERFLOW_MARKER)

    def test_anomaly_detector_train_freeze_process(self):
        d = AnomalyDetector(sensitivity=0.6)
        self._train(d)
        hits = d.process(pkt(proto=Protocol.UDP, sport=2500, dport=9999), 0.0)
        assert any(cat.startswith("anomaly-") for cat, *_ in hits)

    def test_hybrid_parallel_unions(self):
        d = HybridDetector(mode="parallel", sensitivity=0.6)
        self._train(d)
        cats = {cat for cat, *_ in d.process(self._dual_evil(), 0.0)}
        assert "overflow-exploit" in cats                     # signature half
        assert any(c.startswith("anomaly-") for c in cats)    # anomaly half

    def test_hybrid_series_short_circuits(self):
        d = HybridDetector(mode="series", sensitivity=0.6)
        self._train(d)
        cats = {cat for cat, *_ in d.process(self._dual_evil(), 0.0)}
        assert "overflow-exploit" in cats
        assert not any(c.startswith("anomaly-") for c in cats)

    def test_hybrid_sensitivity_shared(self):
        d = HybridDetector(sensitivity=0.4)
        d.sensitivity = 0.7
        assert d.signature.sensitivity == 0.7
        assert d.anomaly.sensitivity == 0.7

    def test_hybrid_bad_mode(self):
        with pytest.raises(ConfigurationError):
            HybridDetector(mode="both")
