"""Tests for the shared multi-pattern matching kernel."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.ids.multipattern import AhoCorasick, MultiPatternMatcher


def naive_ids(patterns, haystack):
    return {i for i, p in enumerate(patterns) if p in haystack}


class TestAhoCorasick:
    def test_textbook_example(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        assert sorted(ac.search_ids(b"ushers")) == [0, 1, 3]

    def test_suffix_pattern_reported_through_failure_chain(self):
        # "cd" ends inside the longer match "abcd" and must still report
        ac = AhoCorasick([b"abcd", b"cd"])
        assert ac.search_ids(b"xxabcdxx") == {0, 1}

    def test_overlapping_occurrences(self):
        ac = AhoCorasick([b"aa"])
        assert list(ac.iter_matches(b"aaaa")) == [(0, 2), (0, 3), (0, 4)]

    def test_duplicate_patterns_all_reported(self):
        ac = AhoCorasick([b"dup", b"dup"])
        assert ac.search_ids(b"a dup b") == {0, 1}

    def test_no_match_and_empty_haystack(self):
        ac = AhoCorasick([b"nope"])
        assert ac.search_ids(b"something else") == set()
        assert ac.search_ids(b"") == set()

    def test_iter_matches_end_offsets(self):
        ac = AhoCorasick([b"ab", b"bc"])
        assert list(ac.iter_matches(b"abc")) == [(0, 2), (1, 3)]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            AhoCorasick([b"ok", b""])

    def test_matches_naive_scan_on_random_data(self):
        rng = random.Random(7)
        alphabet = b"abcd"
        patterns = [bytes(rng.choice(alphabet) for _ in range(rng.randint(1, 5)))
                    for _ in range(24)]
        ac = AhoCorasick(patterns)
        for _ in range(200):
            haystack = bytes(rng.choice(alphabet)
                             for _ in range(rng.randint(0, 60)))
            assert ac.search_ids(haystack) == naive_ids(patterns, haystack)


class TestMultiPatternMatcher:
    def test_scan_is_exact(self):
        pats = [b"/bin/sh", b"\x90\x90", b"root"]
        m = MultiPatternMatcher(pats)
        got = m.scan(b"GET /bin/sh HTTP root")
        assert got == {m.pattern_id(b"/bin/sh"), m.pattern_id(b"root")}

    def test_dedup_preserves_first_seen_ids(self):
        m = MultiPatternMatcher([b"a", b"b", b"a", b"c"])
        assert len(m) == 3
        assert m.pattern_id(b"a") == 0
        assert m.pattern_id(b"b") == 1
        assert m.pattern_id(b"c") == 2

    def test_unknown_pattern_raises(self):
        m = MultiPatternMatcher([b"a"])
        with pytest.raises(KeyError):
            m.pattern_id(b"zz")

    def test_benign_payload_returns_shared_empty(self):
        m = MultiPatternMatcher([b"ATTACK"])
        assert m.scan(b"x" * 400) is m.scan(b"clean")  # the _EMPTY frozenset
        assert m.scan(b"x" * 400) == frozenset()

    def test_empty_registry_scans_to_empty(self):
        m = MultiPatternMatcher([])
        assert len(m) == 0
        assert m.scan(b"anything") == frozenset()

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiPatternMatcher([b""])

    def test_regex_metacharacters_matched_literally(self):
        m = MultiPatternMatcher([b"a.c", b"[x]"])
        assert m.scan(b"abc") == frozenset()       # "." is not a wildcard
        assert m.scan(b"a.c [x]") == {0, 1}
