"""Tests for the load-balancing strategies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address, Subnet
from repro.net.packet import Packet, Protocol
from repro.net.tcp import build_session
from repro.ids.loadbalancer import (
    DynamicBalancer,
    HashBalancer,
    NoBalancer,
    StaticPlacementBalancer,
)
from repro.ids.sensor import Sensor
from repro.sim.engine import Engine


class NullDetector:
    sensitivity = 0.5

    def process(self, pkt, now):
        return []

    def reset(self):
        pass


def make_sensors(eng, n, ops_rate=1e9):
    return [Sensor(eng, f"s{i}", NullDetector(), ops_rate=ops_rate,
                   per_byte_ops=0.0, lethal_drop_rate=None)
            for i in range(n)]


def pkt(src="198.18.0.1", dst="10.0.0.5", sport=1000, dport=80, **kw):
    return Packet(src=IPv4Address(src), dst=IPv4Address(dst),
                  sport=sport, dport=dport, **kw)


class TestNoBalancer:
    def test_single_sensor_only(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            NoBalancer(eng, "lb", make_sensors(eng, 2))

    def test_forwards_everything(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors)
        for _ in range(10):
            lb.ingest(pkt())
        eng.run()
        assert sensors[0].received == 10
        assert lb.balance_evenness() == 1.0


class TestStaticPlacement:
    def test_partitions_by_subnet(self):
        eng = Engine()
        sensors = make_sensors(eng, 2)
        lb = StaticPlacementBalancer(
            eng, "lb", sensors, subnets=["10.0.0.0/25", "10.0.0.128/25"])
        lb.ingest(pkt(dst="10.0.0.5"))
        lb.ingest(pkt(dst="10.0.0.200"))
        lb.ingest(pkt(dst="10.0.0.7"))
        eng.run()
        assert sensors[0].received == 2
        assert sensors[1].received == 1

    def test_fallthrough_to_last(self):
        eng = Engine()
        sensors = make_sensors(eng, 2)
        lb = StaticPlacementBalancer(
            eng, "lb", sensors, subnets=["10.0.0.0/25", "10.0.0.128/25"])
        lb.ingest(pkt(dst="192.0.2.1"))
        eng.run()
        assert sensors[1].received == 1

    def test_skew_starves_and_overloads(self):
        # all traffic to one subnet: the paper's overload/starvation case
        eng = Engine()
        sensors = make_sensors(eng, 2)
        lb = StaticPlacementBalancer(
            eng, "lb", sensors, subnets=["10.0.0.0/25", "10.0.0.128/25"])
        for i in range(100):
            lb.ingest(pkt(dst="10.0.0.5", sport=1000 + i))
        eng.run()
        assert lb.balance_evenness() == pytest.approx(0.5)  # worst case for 2

    def test_subnet_count_must_match(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            StaticPlacementBalancer(eng, "lb", make_sensors(eng, 2),
                                    subnets=["10.0.0.0/24"])


class TestHashBalancer:
    def test_session_consistency_both_directions(self):
        eng = Engine()
        sensors = make_sensors(eng, 4)
        lb = HashBalancer(eng, "lb", sensors)
        a, b = IPv4Address("198.18.0.1"), IPv4Address("10.0.0.5")
        session = build_session(a, b, 3456, 80, request=b"GET /",
                                response=b"hi")
        for p in session:
            lb.ingest(p)
        eng.run()
        hit = [s for s in sensors if s.received > 0]
        assert len(hit) == 1
        assert hit[0].received == len(session)

    def test_many_flows_spread_evenly(self):
        eng = Engine()
        sensors = make_sensors(eng, 4)
        lb = HashBalancer(eng, "lb", sensors)
        rng = np.random.default_rng(1)
        for _ in range(2000):
            lb.ingest(pkt(src=f"198.18.{rng.integers(0,256)}.{rng.integers(1,255)}",
                          sport=int(rng.integers(1024, 65000))))
        eng.run()
        assert lb.balance_evenness() > 0.95


class TestDynamicBalancer:
    def test_flow_stickiness(self):
        eng = Engine()
        sensors = make_sensors(eng, 3)
        lb = DynamicBalancer(eng, "lb", sensors)
        a, b = IPv4Address("198.18.0.1"), IPv4Address("10.0.0.5")
        for p in build_session(a, b, 4000, 80, request=b"x" * 100):
            lb.ingest(p)
        eng.run()
        assert sum(1 for s in sensors if s.received > 0) == 1

    def test_least_backlog_selection(self):
        eng = Engine()
        # sensor 0 is slow, sensor 1 fast
        s0 = Sensor(eng, "slow", NullDetector(), ops_rate=1e3, header_ops=100.0,
                    per_byte_ops=0.0, max_queue_delay_s=10.0, lethal_drop_rate=None)
        s1 = Sensor(eng, "fast", NullDetector(), ops_rate=1e9, header_ops=100.0,
                    per_byte_ops=0.0, lethal_drop_rate=None)
        lb = DynamicBalancer(eng, "lb", [s0, s1])
        for i in range(50):
            lb.ingest(pkt(sport=1000 + i))  # distinct flows
        eng.run()
        assert s1.received > s0.received  # backlog steers away from slow

    def test_avoids_downed_sensor(self):
        eng = Engine()
        sensors = make_sensors(eng, 2)
        sensors[0].up = False
        lb = DynamicBalancer(eng, "lb", sensors)
        for i in range(20):
            lb.ingest(pkt(sport=1000 + i))
        eng.run()
        assert sensors[0].received == 0
        assert sensors[1].received == 20

    def test_evenness_under_uniform_flows(self):
        eng = Engine()
        sensors = make_sensors(eng, 4)
        lb = DynamicBalancer(eng, "lb", sensors)
        for i in range(1000):
            lb.ingest(pkt(sport=1024 + (i % 60000)))
        eng.run()
        assert lb.balance_evenness() > 0.9


class TestBalancerCapacity:
    def test_capacity_drops_excess(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, capacity_pps=10)
        for _ in range(25):
            lb.ingest(pkt())
        eng.run()
        assert lb.dropped == 15
        assert sensors[0].received == 10

    def test_capacity_window_resets(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, capacity_pps=10)
        for i in range(15):
            eng.schedule_at(0.01 * i, lb.ingest, pkt())
        for i in range(15):
            eng.schedule_at(1.5 + 0.01 * i, lb.ingest, pkt())
        eng.run()
        assert lb.dropped == 10  # 5 in each window

    def test_inline_latency_delays_delivery(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, induced_latency_s=0.05)
        lb.ingest(pkt())
        assert sensors[0].received == 0  # not yet
        eng.run()
        assert sensors[0].received == 1
        assert eng.now >= 0.05

    def test_needs_sensors(self):
        with pytest.raises(ConfigurationError):
            HashBalancer(Engine(), "lb", [])


class TestCapacityWindowAnchoring:
    """Regression for the window-anchoring bug: the reset used to snap
    ``_window_start`` to ``float(int(now))``, so a burst straddling that
    snapped boundary passed up to twice ``capacity_pps``."""

    def test_boundary_straddling_burst_capped(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, capacity_pps=10)
        # window anchors at the first packet (t=0.90); all 20 packets fall
        # inside [0.90, 1.90), yet the old logic reset the window at
        # t=1.10 (snapped anchor 1.0) and forwarded all 20
        for i in range(10):
            eng.schedule_at(0.90 + 1e-4 * i, lb.ingest, pkt())
        for i in range(10):
            eng.schedule_at(1.10 + 1e-4 * i, lb.ingest, pkt())
        eng.run()
        assert sensors[0].received == 10
        assert lb.dropped == 10

    def test_anchor_advances_in_whole_window_steps(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, capacity_pps=10)
        # bursts at 0.5, 1.7, 2.9: each lands in its own anchored window
        # ([0.5,1.5), [1.5,2.5), [2.5,3.5)) so every burst is capped alone
        for burst_start in (0.5, 1.7, 2.9):
            for i in range(12):
                eng.schedule_at(burst_start + 1e-4 * i, lb.ingest, pkt())
        eng.run()
        assert sensors[0].received == 30
        assert lb.dropped == 6  # 2 over capacity per burst

    def test_long_gap_still_resets(self):
        eng = Engine()
        sensors = make_sensors(eng, 1)
        lb = NoBalancer(eng, "lb", sensors, capacity_pps=10)
        for i in range(10):
            eng.schedule_at(0.25 + 1e-4 * i, lb.ingest, pkt())
        # 5.75 s later: the anchor advances by whole windows to 5.25 and
        # the count resets, so the second burst forwards in full
        for i in range(10):
            eng.schedule_at(6.00 + 1e-4 * i, lb.ingest, pkt())
        eng.run()
        assert sensors[0].received == 20
        assert lb.dropped == 0


class TestEvennessDefinition:
    def test_starved_sensor_drags_index_down(self):
        eng = Engine()
        sensors = make_sensors(eng, 4)
        lb = HashBalancer(eng, "lb", sensors)
        # one flow only: a single sensor gets everything, three starve
        for _ in range(40):
            lb.ingest(pkt(sport=1234))
        eng.run()
        assert lb.balance_evenness() == pytest.approx(0.25)

    def test_drop_only_workload_is_worst_case_not_vacuous(self):
        eng = Engine()
        sensors = make_sensors(eng, 4)
        lb = HashBalancer(eng, "lb", sensors)
        lb.force_fail()
        for _ in range(10):
            lb.ingest(pkt())
        eng.run()
        assert lb.received == 10 and lb.forwarded == 0
        assert lb.balance_evenness() == pytest.approx(0.25)

    def test_no_traffic_is_neutral(self):
        eng = Engine()
        lb = HashBalancer(eng, "lb", make_sensors(eng, 4))
        assert lb.balance_evenness() == 1.0


class TestFailover:
    def test_reselects_around_down_sensor(self):
        eng = Engine()
        sensors = make_sensors(eng, 3)
        lb = HashBalancer(eng, "lb", sensors)
        lb.failover = True
        target = lb.select(pkt(sport=4242))
        target.force_fail()
        lb.ingest(pkt(sport=4242))
        eng.run()
        assert target.received == 0
        assert lb.failovers == 1
        assert sum(s.received for s in sensors) == 1

    def test_sheds_when_every_sensor_down(self):
        eng = Engine()
        sensors = make_sensors(eng, 2)
        lb = HashBalancer(eng, "lb", sensors)
        lb.failover = True
        for s in sensors:
            s.force_fail()
        lb.ingest(pkt())
        eng.run()
        assert lb.shed_no_sensor == 1
        assert lb.forwarded == 0

    def test_dormant_without_failover_flag(self):
        # clean runs never consult sensor.up: the selection is unchanged
        eng = Engine()
        sensors = make_sensors(eng, 3)
        lb = HashBalancer(eng, "lb", sensors)
        target = lb.select(pkt(sport=4242))
        target.force_fail()
        lb.ingest(pkt(sport=4242))
        eng.run()
        assert lb.failovers == 0
        assert lb.per_sensor_count[target.name] == 1

    def test_recovered_sensor_rejoins_dynamic_assignment(self):
        eng = Engine()
        sensors = make_sensors(eng, 2)
        lb = DynamicBalancer(eng, "lb", sensors)
        lb.failover = True
        sensors[0].force_fail()
        lb.ingest(pkt(sport=5000))  # sticks the flow on sensors[1]
        sensors[0].force_restore()
        lb.notify_recovered(sensors[0])
        assert lb.recoveries == 1
        lb.ingest(pkt(sport=5000))  # sticky table cleared: re-balances
        eng.run()
        assert sensors[0].received + sensors[1].received == 2
