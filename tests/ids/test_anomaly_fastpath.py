"""Differential testing: the fast anomaly path must equal the baseline.

The fast :class:`~repro.ids.anomaly.AnomalyEngine` path is an
optimization, not a behaviour change: for any training stream, any live
stream, and any sensitivity -- including sensitivity changed *mid-run* --
it must produce the same ``(feature, score)`` transcripts, the same
detection counter, and the same trained baseline as the reference path.
Hypothesis drives both paths over randomized traffic that deliberately
hits the fast path's edges: ICMP (no ports, size-z feature), sub-32-byte
payloads (below the entropy gate), text/binary token boundaries, and
payloads longer than the 256-byte entropy sample.

The payload feature helpers get their own bit-exactness properties:
``shannon_entropy_prefix`` vs a sliced ``shannon_entropy``, and
``_token_fast`` vs the baseline ``AnomalyEngine._token``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ids.anomaly import (
    ANOMALY_PATHS,
    AnomalyEngine,
    _token_fast,
    use_anomaly_path,
)
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.traffic.payload import shannon_entropy, shannon_entropy_prefix

ADDRESSES = tuple(IPv4Address(f"10.0.0.{i}") for i in (1, 2, 3, 4))
PORTS = (22, 80, 7000, 7101, 40000)
SENSITIVITIES = (0.0, 0.3, 0.5, 0.85, 1.0)


# ----------------------------------------------------------------------
# payload strategies: the token extractor's and entropy gate's edges
# ----------------------------------------------------------------------
def byte_text(alphabet: bytes, min_size: int, max_size: int):
    return st.lists(st.sampled_from(list(alphabet)), min_size=min_size,
                    max_size=max_size).map(bytes)


# text-ish: first-word extraction, space at position 0, no space at all
text_payload = (byte_text(b"GET post login: helo_x ", 1, 64)
                | st.just(b" leading space")
                | st.just(b"GET /index.html HTTP/1.0\r\n")
                | st.just(b"no_space_long_command_word"))

# binary-ish: the 6-byte header + the [6:32) alpha-run window, runs that
# start before/straddle/end at the window edges
binary_payload = (
    byte_text(bytes(range(0, 8)) + b"abc_\x90\xff", 1, 48)
    | st.just(b"\x01\x02\x03\x04\x05\x06abcd_efgh")
    | st.just(b"\x00" * 6 + b"ab" + b"\x00" * 20 + b"longrun_pastwindow")
    | st.just(b"\x00" * 28 + b"word")          # run straddles offset 32
    | st.just(b"\x00" * 30 + b"wo"))           # too short inside window

random_payload = (st.none()
                  | byte_text(bytes(range(256)), 0, 31)   # below entropy gate
                  | byte_text(bytes(range(256)), 32, 80)
                  | byte_text(b"\x90\x41\x42", 200, 300)  # past the 256 sample
                  | text_payload
                  | binary_payload)

time_steps = st.sampled_from((0.001, 0.05, 0.4, 2.0))


@st.composite
def packet_event(draw):
    proto = draw(st.sampled_from((Protocol.TCP, Protocol.UDP,
                                  Protocol.ICMP)))
    src = draw(st.sampled_from(ADDRESSES))
    dst = draw(st.sampled_from(ADDRESSES))
    if proto is Protocol.ICMP:
        sport = dport = 0
        flags = TcpFlags.NONE
    else:
        sport = draw(st.sampled_from(PORTS))
        dport = draw(st.sampled_from(PORTS))
        flags = draw(st.sampled_from((TcpFlags.NONE, TcpFlags.SYN,
                                      TcpFlags.SYN | TcpFlags.ACK,
                                      TcpFlags.ACK | TcpFlags.PSH)))
    return (draw(time_steps),
            Packet(src=src, dst=dst, sport=sport, dport=dport, proto=proto,
                   flags=flags, payload=draw(random_payload)))


def packet_stream(max_events):
    return st.lists(packet_event(), min_size=1, max_size=max_events)


# ----------------------------------------------------------------------
# the differential harness
# ----------------------------------------------------------------------
def run_path(path, train, live, sensitivity, mid_run_sensitivity=None):
    """Full transcript of one engine over a (train, live) split.

    Packets are rebuilt per run via :meth:`Packet.copy` so one path's
    derived-feature memos can never leak into the other's inputs.
    """
    engine = AnomalyEngine(sensitivity=sensitivity, path=path)
    now = 0.0
    for dt, pkt in train:
        now += dt
        engine.train(pkt.copy(), now)
    engine.freeze()
    out = []
    for i, (dt, pkt) in enumerate(live):
        if mid_run_sensitivity is not None and i == len(live) // 2:
            engine.sensitivity = mid_run_sensitivity
        now += dt
        for feature, score in engine.inspect(pkt.copy(), now):
            out.append((i, feature, score))
    return out, engine.packets_inspected, engine.detections


def assert_paths_agree(train, live, sensitivity, mid_run=None):
    baseline = run_path("baseline", train, live, sensitivity, mid_run)
    fast = run_path("fast", train, live, sensitivity, mid_run)
    assert fast == baseline


class TestPayloadFeatureExactness:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(min_size=0, max_size=600),
           limit=st.sampled_from((1, 32, 256, 1024)))
    def test_entropy_prefix_bit_equal(self, data, limit):
        assert shannon_entropy_prefix(data, limit) == \
            shannon_entropy(data[:limit])

    @settings(max_examples=300, deadline=None)
    @given(payload=random_payload)
    def test_token_fast_value_equal(self, payload):
        pkt = Packet(src=ADDRESSES[0], dst=ADDRESSES[1], sport=80, dport=80,
                     payload=payload)
        assert _token_fast(payload) == AnomalyEngine._token(pkt)


class TestDifferential:
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(train=packet_stream(20), live=packet_stream(20),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_random_streams(self, train, live, sensitivity):
        assert_paths_agree(train, live, sensitivity)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(train=packet_stream(12), live=packet_stream(16),
           s1=st.sampled_from(SENSITIVITIES),
           s2=st.sampled_from(SENSITIVITIES))
    def test_mid_run_sensitivity_change(self, train, live, s1, s2):
        assert_paths_agree(train, live, s1, mid_run=s2)

    def test_icmp_size_feature_agrees(self):
        # deterministic anchor: train a stable ICMP size baseline, then
        # offer a far-out-of-envelope ping; both paths must flag it with
        # the identical score
        a, b = ADDRESSES[0], ADDRESSES[1]
        train = [(0.1, Packet(src=a, dst=b, proto=Protocol.ICMP,
                              payload=bytes(56 + (i % 3))))
                 for i in range(12)]
        live = [(0.1, Packet(src=a, dst=b, proto=Protocol.ICMP,
                             payload=bytes(4000)))]
        base = run_path("baseline", train, live, 0.5)
        fast = run_path("fast", train, live, 0.5)
        assert fast == base
        assert any(feature == "icmp-size" for _, feature, _ in base[0])

    def test_ambient_default_is_respected(self):
        for path in ANOMALY_PATHS:
            with use_anomaly_path(path):
                assert AnomalyEngine().anomaly_path == path


@pytest.mark.slow
class TestDifferentialDeep:
    """The long lane: realistic traffic, more examples (CI's -m slow lane)."""

    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(train=packet_stream(40), live=packet_stream(40),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_random_streams_deep(self, train, live, sensitivity):
        assert_paths_agree(train, live, sensitivity)

    @pytest.mark.parametrize("sensitivity", SENSITIVITIES)
    def test_cluster_profile_traffic(self, sensitivity):
        # the battery's actual traffic: cluster background as training,
        # the labeled scenario (attacks included) as the live stream
        import numpy as np

        from repro.eval.testbed import cluster_scenario
        from repro.traffic.profiles import ClusterProfile

        nodes = [IPv4Address(f"10.1.0.{i}") for i in range(1, 7)]
        warmup = ClusterProfile(nodes).generate(
            10.0, np.random.default_rng(7))
        scenario = cluster_scenario(nodes, duration_s=20.0, seed=7)
        train = [(0.0, p) for _, p in warmup]
        live = [(0.0, p) for _, p in scenario.trace]
        assert_paths_agree(train[:1500], live[:3000], sensitivity)
