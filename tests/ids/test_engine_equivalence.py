"""Differential testing: the indexed kernel must equal the linear scan.

The indexed :class:`~repro.ids.signature.SignatureEngine` is an
optimization, not a behaviour change: for any rule set, any packet stream
and any sensitivity it must produce the *same matches in the same order*
as the linear reference kernel -- including across TCP stream state,
threshold windows and flow-cap eviction.  Hypothesis drives both kernels
over randomized rule sets and packet streams (with deliberate
segmentation of patterns across TCP boundaries) and asserts the full
match transcripts are equal.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ids.signature import (
    HeaderRule,
    PayloadPatternRule,
    SignatureEngine,
    StreamPatternRule,
    ThresholdRule,
    default_ruleset,
)
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags

# a deliberately nasty pattern pool: shared prefixes/suffixes, a pattern
# containing another, single bytes, and real-ruleset markers
PATTERNS = (b"EVILMARKER", b"EVIL", b"MARK", b"KERX",
            b"\x90\x90\x90\x90/bin/sh\x00", b"/cgi-bin/phf", b"Z")

ADDRESSES = tuple(IPv4Address(f"10.0.0.{i}") for i in (1, 2, 3))
PORTS = (80, 143, 4000, 9999)
SENSITIVITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


# ----------------------------------------------------------------------
# rule-set specs (rules are stateful, so each kernel gets a fresh build)
# ----------------------------------------------------------------------
def _src_key(pkt):
    return pkt.src.value


def _dport_if_tcp(pkt):
    return pkt.dport if pkt.proto is Protocol.TCP else None


def _count_all(pkt):
    return ThresholdRule.COUNT


some_ports = st.none() | st.lists(st.sampled_from(PORTS), min_size=1,
                                  max_size=2, unique=True)
some_patterns = st.lists(st.sampled_from(PATTERNS), min_size=1, max_size=4,
                         unique=True)
min_sens = st.sampled_from((0.0, 0.4, 0.8))

payload_spec = st.tuples(st.just("payload"), some_patterns, some_ports,
                         st.sampled_from((None, Protocol.TCP, Protocol.UDP)),
                         min_sens)
# tiny max_flows values force eviction churn; tiny windows force expiry
stream_spec = st.tuples(st.just("stream"), some_patterns, some_ports,
                        st.sampled_from((2, 3, 8192)),
                        st.sampled_from((0.05, 30.0)), min_sens)
header_spec = st.tuples(st.just("header"),
                        st.sampled_from((None, Protocol.TCP, Protocol.ICMP)),
                        some_ports,
                        st.sampled_from((None, TcpFlags.SYN,
                                         TcpFlags.ACK | TcpFlags.PSH)),
                        st.sampled_from((None, 1, 64)), min_sens)
threshold_spec = st.tuples(st.just("threshold"),
                           st.sampled_from(("distinct", "count")),
                           st.sampled_from((2, 4)),
                           st.sampled_from((0.5, 30.0)),
                           st.booleans(), min_sens)

ruleset_spec = st.lists(payload_spec | stream_spec | header_spec
                        | threshold_spec, min_size=1, max_size=8)


def build_rules(specs):
    rules = []
    for i, spec in enumerate(specs):
        kind = spec[0]
        if kind == "payload":
            _, patterns, ports, proto, ms = spec
            rules.append(PayloadPatternRule(
                f"p{i}", patterns, ports=ports, proto=proto,
                category=f"cat-p{i}", min_sensitivity=ms))
        elif kind == "stream":
            _, patterns, ports, max_flows, window_s, ms = spec
            rules.append(StreamPatternRule(
                f"s{i}", patterns, ports=ports, max_flows=max_flows,
                window_s=window_s, category=f"cat-s{i}", min_sensitivity=ms))
        elif kind == "header":
            _, proto, dports, flags, min_payload, ms = spec
            rules.append(HeaderRule(
                f"h{i}", proto=proto, dports=dports, flags=flags,
                min_payload=min_payload, category=f"cat-h{i}",
                min_sensitivity=ms))
        else:
            _, mode, threshold, window_s, declare, ms = spec
            value_fn = _dport_if_tcp if mode == "distinct" else _count_all
            # the declared proto constraint is implied by _dport_if_tcp
            # returning None off-protocol; _count_all may not declare it
            proto = (Protocol.TCP
                     if declare and mode == "distinct" else None)
            rules.append(ThresholdRule(
                f"t{i}", _src_key, value_fn, threshold, window_s=window_s,
                proto=proto, category=f"cat-t{i}", min_sensitivity=ms))
    return rules


# ----------------------------------------------------------------------
# packet streams
# ----------------------------------------------------------------------
def byte_text(alphabet: bytes, min_size: int, max_size: int):
    """Bytes drawn from a small alphabet (st.binary has no alphabet knob)."""
    return st.lists(st.sampled_from(list(alphabet)), min_size=min_size,
                    max_size=max_size).map(bytes)


random_payload = (st.none()
                  | st.just(b"")
                  | byte_text(b"EVILMARKX/Z .abc\x90", 0, 40)
                  | st.sampled_from(PATTERNS))

time_steps = st.sampled_from((0.001, 0.02, 0.2, 40.0))


@st.composite
def packet_events(draw):
    """One event: a single random packet, or a TCP flow carrying a pattern
    sliced across contiguous segments (the straddling case)."""
    src = draw(st.sampled_from(ADDRESSES))
    dst = draw(st.sampled_from(ADDRESSES))
    sport = draw(st.sampled_from(PORTS))
    dport = draw(st.sampled_from(PORTS))
    if draw(st.booleans()):
        proto = draw(st.sampled_from(tuple(Protocol)))
        flags = draw(st.sampled_from((TcpFlags.NONE, TcpFlags.SYN,
                                      TcpFlags.ACK | TcpFlags.PSH)))
        payload = draw(random_payload)
        seq = draw(st.sampled_from((0, 7, 1000)))
        return [(draw(time_steps),
                 Packet(src=src, dst=dst, sport=sport, dport=dport,
                        proto=proto, flags=flags, seq=seq, payload=payload))]
    # split a pattern across 2-3 contiguous (or deliberately gapped)
    # segments of one TCP flow
    pattern = draw(st.sampled_from(PATTERNS))
    body = draw(byte_text(b"x. ", 0, 6)) + pattern
    n_cuts = draw(st.integers(1, min(2, max(1, len(body) - 1))))
    cuts = sorted(draw(st.lists(st.integers(1, len(body) - 1),
                                min_size=n_cuts, max_size=n_cuts,
                                unique=True))) if len(body) > 1 else []
    pieces = [body[a:b] for a, b in
              zip([0] + cuts, cuts + [len(body)])]
    seq = draw(st.sampled_from((0, 5000)))
    gap_at = draw(st.sampled_from((None, 1)))  # break contiguity sometimes
    events = []
    for j, piece in enumerate(pieces):
        if gap_at == j:
            seq += 17
        events.append((draw(time_steps),
                       Packet(src=src, dst=dst, sport=sport, dport=dport,
                              proto=Protocol.TCP,
                              flags=TcpFlags.ACK | TcpFlags.PSH,
                              seq=seq, payload=piece)))
        seq += len(piece)
    return events


def packet_stream(max_events):
    return st.lists(packet_events(), min_size=1,
                    max_size=max_events).map(
        lambda batches: [p for batch in batches for p in batch])


# ----------------------------------------------------------------------
# the differential harness
# ----------------------------------------------------------------------
def transcript(kind, rules, events, sensitivity):
    engine = SignatureEngine(rules, sensitivity=sensitivity, engine=kind)
    now = 0.0
    out = []
    for dt, pkt in events:
        now += dt
        for m in engine.inspect(pkt, now):
            out.append((pkt.pid, m.rule, m.category, m.severity, m.score,
                        m.detail))
    return out


def assert_kernels_agree(specs, events, sensitivity):
    linear = transcript("linear", build_rules(specs), events, sensitivity)
    indexed = transcript("indexed", build_rules(specs), events, sensitivity)
    assert indexed == linear


class TestDifferential:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events=packet_stream(12),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_default_ruleset(self, events, sensitivity):
        linear = transcript("linear", default_ruleset(), events, sensitivity)
        indexed = transcript("indexed", default_ruleset(), events,
                             sensitivity)
        assert indexed == linear

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=ruleset_spec, events=packet_stream(12),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_random_rulesets(self, specs, events, sensitivity):
        assert_kernels_agree(specs, events, sensitivity)

    def test_straddled_marker_detected_by_both(self):
        # deterministic anchor: a marker split across three segments must
        # fire on its final segment in both kernels
        specs = [("stream", [b"EVILMARKER"], None, 8192, 30.0, 0.0)]
        events = [(0.01, Packet(src=ADDRESSES[0], dst=ADDRESSES[1],
                                sport=4000, dport=143, proto=Protocol.TCP,
                                flags=TcpFlags.ACK | TcpFlags.PSH,
                                seq=seq, payload=piece))
                  for seq, piece in ((0, b"..EVI"), (5, b"LMAR"),
                                     (9, b"KER.."))]
        linear = transcript("linear", build_rules(specs), events, 0.5)
        indexed = transcript("indexed", build_rules(specs), events, 0.5)
        assert linear == indexed
        assert len(linear) == 1 and "stream pattern" in linear[0][5]


@pytest.mark.slow
class TestDifferentialDeep:
    """The long lane: bigger streams, more examples (CI's -m slow lane)."""

    @settings(max_examples=250, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=ruleset_spec, events=packet_stream(30),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_random_rulesets_deep(self, specs, events, sensitivity):
        assert_kernels_agree(specs, events, sensitivity)

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events=packet_stream(30),
           sensitivity=st.sampled_from(SENSITIVITIES))
    def test_default_ruleset_deep(self, events, sensitivity):
        linear = transcript("linear", default_ruleset(), events, sensitivity)
        indexed = transcript("indexed", default_ruleset(), events,
                             sensitivity)
        assert indexed == linear
