"""Tests for the anomaly engine: baseline learning and behavioural detection."""

import numpy as np
import pytest

from repro.attacks import (
    IcmpTunnel,
    NovelExploit,
    PortScan,
    SynFlood,
    TrustAbuse,
)
from repro.errors import ConfigurationError
from repro.net.address import IPv4Address, Subnet
from repro.ids.anomaly import AnomalyEngine
from repro.ids.alert import Severity
from repro.traffic.profiles import ClusterProfile

ATT = IPv4Address("198.18.0.1")


def make_trained_engine(sensitivity=0.5, seed=1, duration=30.0, nodes=None):
    nodes = nodes or list(Subnet("10.0.0.0/24").hosts(4))
    engine = AnomalyEngine(sensitivity=sensitivity)
    trace = ClusterProfile(nodes).generate(duration, np.random.default_rng(seed))
    for t, pkt in trace:
        engine.train(pkt, t)
    engine.freeze()
    return engine, nodes


def run_attack(engine, attack, seed=9):
    trace, _ = attack.generate(0.0, np.random.default_rng(seed))
    features = set()
    for t, pkt in trace:
        for feature, score in engine.inspect(pkt, t):
            features.add(feature)
            assert 0.0 <= score <= 1.0
    return features


class TestLifecycle:
    def test_inspect_before_freeze_raises(self):
        engine = AnomalyEngine()
        from repro.net.packet import Packet
        with pytest.raises(ConfigurationError):
            engine.inspect(Packet(src=ATT, dst=ATT), 0.0)

    def test_train_after_freeze_raises(self):
        engine, _ = make_trained_engine()
        from repro.net.packet import Packet
        with pytest.raises(ConfigurationError):
            engine.train(Packet(src=ATT, dst=ATT), 0.0)

    def test_sensitivity_threshold_monotone(self):
        lo = AnomalyEngine(sensitivity=0.1).threshold
        hi = AnomalyEngine(sensitivity=0.9).threshold
        assert lo > hi

    def test_sensitivity_bounds(self):
        with pytest.raises(ConfigurationError):
            AnomalyEngine(sensitivity=1.1)

    def test_severity_ladder(self):
        assert AnomalyEngine.severity_for(0.95) is Severity.HIGH
        assert AnomalyEngine.severity_for(0.8) is Severity.MEDIUM
        assert AnomalyEngine.severity_for(0.5) is Severity.LOW


class TestDetection:
    def test_baseline_traffic_is_mostly_clean(self):
        engine, nodes = make_trained_engine(sensitivity=0.5)
        fresh = ClusterProfile(nodes).generate(10.0, np.random.default_rng(77))
        detections = 0
        for t, pkt in fresh:
            detections += len(engine.inspect(pkt, t))
        # same distribution as training: false-alarm rate well under 1%
        assert detections / max(len(fresh), 1) < 0.01

    def test_detects_port_scan_fanout(self):
        engine, nodes = make_trained_engine()
        features = run_attack(engine, PortScan(ATT, nodes[0], ports=range(1, 400),
                                               rate_pps=500))
        assert "fanout" in features or "rate" in features

    def test_detects_syn_flood_rate(self):
        engine, nodes = make_trained_engine()
        features = run_attack(engine, SynFlood(nodes[0], rate_pps=5000,
                                               duration_s=1.0))
        # spoofed sources spread per-src rate, but flood still trips
        # new-service / fanout / rate on aggregate
        assert features  # detected by at least one feature

    def test_detects_novel_exploit(self):
        engine, nodes = make_trained_engine(sensitivity=0.6)
        features = run_attack(engine, NovelExploit(ATT, nodes[0]))
        assert "new-service" in features or "entropy" in features

    def test_detects_icmp_tunnel(self):
        engine, nodes = make_trained_engine(sensitivity=0.6)
        outside = IPv4Address("198.18.0.50")
        features = run_attack(engine, IcmpTunnel(nodes[1], outside,
                                                 total_bytes=8192, chunk=512))
        assert "icmp-size" in features or "entropy" in features

    def test_trust_abuse_token_novelty(self):
        # the insider case: only detectable via application-protocol fluency
        engine, nodes = make_trained_engine(sensitivity=0.8)
        features = run_attack(engine, TrustAbuse(nodes[1], nodes[0]))
        assert "token" in features

    def test_trust_abuse_missed_at_low_sensitivity(self):
        engine, nodes = make_trained_engine(sensitivity=0.1)
        features = run_attack(engine, TrustAbuse(nodes[1], nodes[0]))
        assert "token" not in features

    def test_sensitivity_monotone_in_detections(self):
        results = {}
        for s in (0.2, 0.8):
            engine, nodes = make_trained_engine(sensitivity=s)
            trace, _ = PortScan(ATT, nodes[0], ports=range(1, 300),
                                rate_pps=400).generate(
                0.0, np.random.default_rng(5))
            count = 0
            for t, pkt in trace:
                count += len(engine.inspect(pkt, t))
            results[s] = count
        assert results[0.8] >= results[0.2]

    def test_reset_live_state_keeps_baseline(self):
        engine, nodes = make_trained_engine()
        run_attack(engine, PortScan(ATT, nodes[0], ports=range(1, 100)))
        engine.reset_live_state()
        assert engine.trained
        assert engine.packets_inspected == 0
        # still functional
        features = run_attack(engine, PortScan(ATT, nodes[0], ports=range(1, 400),
                                               rate_pps=500))
        assert features
