"""Tests for the signature engine and the shipped rule set."""

import numpy as np
import pytest

from repro.attacks import (
    BufferOverflowExploit,
    CgiProbe,
    HostSweep,
    NovelExploit,
    PortScan,
    SynFlood,
    TelnetBruteForce,
)
from repro.errors import ConfigurationError
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.ids.alert import Severity
from repro.ids.signature import (
    HeaderRule,
    PayloadPatternRule,
    SignatureEngine,
    ThresholdRule,
    default_ruleset,
)

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def run_attack(engine, attack, rng):
    """Feed an attack's packets through the engine; return match categories."""
    trace, _ = attack.generate(0.0, rng)
    cats = set()
    for t, pkt in trace:
        for m in engine.inspect(pkt, t):
            cats.add(m.category)
    return cats


class TestRulePrimitives:
    def test_payload_pattern_needs_materialized_payload(self):
        rule = PayloadPatternRule("r", [b"evil"], category="x")
        hit = rule.match(Packet(src=ATT, dst=TGT, payload=b"so evil"), 0.0, 0.5)
        miss = rule.match(Packet(src=ATT, dst=TGT, payload_len=100), 0.0, 0.5)
        assert hit is not None and hit.category == "x"
        assert miss is None

    def test_payload_pattern_port_filter(self):
        rule = PayloadPatternRule("r", [b"evil"], ports=[80], category="x")
        on80 = Packet(src=ATT, dst=TGT, dport=80, payload=b"evil")
        on81 = Packet(src=ATT, dst=TGT, dport=81, payload=b"evil")
        assert rule.match(on80, 0.0, 0.5) is not None
        assert rule.match(on81, 0.0, 0.5) is None

    def test_payload_pattern_empty_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            PayloadPatternRule("r", [], category="x")

    def test_header_rule_flags_and_ports(self):
        rule = HeaderRule("r", proto=Protocol.TCP, dports=[23],
                          flags=TcpFlags.SYN, category="x")
        syn23 = Packet(src=ATT, dst=TGT, dport=23, flags=TcpFlags.SYN)
        ack23 = Packet(src=ATT, dst=TGT, dport=23, flags=TcpFlags.ACK)
        syn80 = Packet(src=ATT, dst=TGT, dport=80, flags=TcpFlags.SYN)
        assert rule.match(syn23, 0.0, 0.5) is not None
        assert rule.match(ack23, 0.0, 0.5) is None
        assert rule.match(syn80, 0.0, 0.5) is None

    def test_header_rule_predicate(self):
        rule = HeaderRule("r", predicate=lambda p: p.payload_len > 10, category="x")
        assert rule.match(Packet(src=ATT, dst=TGT, payload_len=11), 0.0, 0.5)
        assert rule.match(Packet(src=ATT, dst=TGT, payload_len=5), 0.0, 0.5) is None

    def test_threshold_rule_distinct_counting(self):
        rule = ThresholdRule("r", key_fn=lambda p: p.src.value,
                             value_fn=lambda p: p.dport,
                             threshold=3, window_s=10.0, category="scan")
        pkts = [Packet(src=ATT, dst=TGT, dport=d) for d in (1, 2, 2, 3)]
        hits = [rule.match(p, 0.0, 0.5) for p in pkts]
        # distinct ports: 1,2,2,3 -> fires when the 3rd distinct arrives
        assert hits[:3] == [None, None, None]
        assert hits[3] is not None

    def test_threshold_rule_fires_once_per_window(self):
        rule = ThresholdRule("r", key_fn=lambda p: p.src.value,
                             value_fn=lambda p: ThresholdRule.COUNT,
                             threshold=2, window_s=5.0, category="x")
        p = Packet(src=ATT, dst=TGT)
        results = [rule.match(p, float(t) * 0.1, 0.5) for t in range(10)]
        assert sum(r is not None for r in results) == 1
        # new window fires again
        assert any(rule.match(p, 10.0 + dt, 0.5) for dt in (0.0, 0.1))

    def test_threshold_sensitivity_scaling(self):
        rule = ThresholdRule("r", key_fn=lambda p: 1, value_fn=lambda p: 1,
                             threshold=40, category="x")
        assert rule.effective_threshold(0.5) == 40
        assert rule.effective_threshold(0.0) == 80
        assert rule.effective_threshold(1.0) == 20

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdRule("r", key_fn=lambda p: 1, value_fn=lambda p: 1,
                          threshold=0, category="x")


class TestEngine:
    def test_sensitivity_bounds(self):
        engine = SignatureEngine([], sensitivity=0.5)
        with pytest.raises(ConfigurationError):
            engine.sensitivity = 1.5

    def test_min_sensitivity_gates_rules(self):
        rule = PayloadPatternRule("noisy", [b"x"], category="n",
                                  min_sensitivity=0.8)
        engine = SignatureEngine([rule], sensitivity=0.5)
        pkt = Packet(src=ATT, dst=TGT, payload=b"x")
        assert engine.inspect(pkt, 0.0) == []
        engine.sensitivity = 0.9
        assert len(engine.inspect(pkt, 0.0)) == 1

    def test_reset_clears_state(self):
        ruleset = default_ruleset()
        engine = SignatureEngine(ruleset, sensitivity=0.5)
        engine.inspect(Packet(src=ATT, dst=TGT, payload=b"x"), 0.0)
        engine.reset()
        assert engine.packets_inspected == 0


class TestDefaultRulesetDetection:
    """The shipped rules catch every known attack and miss the novel ones."""

    def setup_method(self):
        self.engine = SignatureEngine(default_ruleset(), sensitivity=0.5)

    def test_detects_port_scan(self, rng):
        cats = run_attack(self.engine, PortScan(ATT, TGT, ports=range(1, 200)), rng)
        assert "portscan" in cats

    def test_detects_host_sweep(self, rng):
        targets = [IPv4Address(f"10.0.0.{i}") for i in range(1, 20)]
        cats = run_attack(self.engine, HostSweep(ATT, targets), rng)
        assert "host-sweep" in cats

    def test_detects_syn_flood(self, rng):
        cats = run_attack(self.engine,
                          SynFlood(TGT, rate_pps=2000, duration_s=1.0), rng)
        assert "syn-flood" in cats

    def test_detects_overflow(self, rng):
        cats = run_attack(self.engine, BufferOverflowExploit(ATT, TGT), rng)
        assert "overflow-exploit" in cats

    def test_detects_cgi_probe(self, rng):
        cats = run_attack(self.engine, CgiProbe(ATT, TGT), rng)
        assert "cgi-exploit" in cats

    def test_detects_brute_force(self, rng):
        cats = run_attack(self.engine,
                          TelnetBruteForce(ATT, TGT, attempts=80, rate_per_s=50),
                          rng)
        assert "brute-force" in cats

    def test_misses_novel_exploit_at_default_sensitivity(self, rng):
        cats = run_attack(self.engine, NovelExploit(ATT, TGT), rng)
        assert cats == set()  # structurally blind to novel attacks

    def test_novel_exploit_odd_port_caught_at_high_sensitivity(self, rng):
        self.engine.sensitivity = 0.9
        cats = run_attack(self.engine, NovelExploit(ATT, TGT), rng)
        assert "suspicious-connection" in cats

    def test_header_only_ruleset_misses_payload_attacks(self, rng):
        engine = SignatureEngine(default_ruleset(payload_inspection=False),
                                 sensitivity=0.5)
        cats = run_attack(engine, BufferOverflowExploit(ATT, TGT), rng)
        assert "overflow-exploit" not in cats

    def test_benign_cluster_traffic_clean_at_default(self, rng):
        from repro.net.address import Subnet
        from repro.traffic.profiles import ClusterProfile

        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        trace = ClusterProfile(nodes).generate(10.0, rng)
        matches = []
        for t, pkt in trace:
            matches.extend(self.engine.inspect(pkt, t))
        assert matches == []
