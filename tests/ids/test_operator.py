"""Tests for the operator workload model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.ids.alert import Alert, Notification, Severity
from repro.ids.operator import OperatorModel
from repro.net.address import IPv4Address
from repro.sim.engine import Engine

SRC = IPv4Address("198.18.0.1")
DST = IPv4Address("10.0.0.5")


def note(t):
    alert = Alert(time=t, analyzer="a", category="x", src=SRC, dst=DST,
                  severity=Severity.MEDIUM, confidence=0.9)
    return Notification(time=t, channel="console", alert=alert)


class TestOperatorModel:
    def test_handles_sparse_notifications(self):
        eng = Engine()
        op = OperatorModel(eng, triage_time_s=10.0, patience_s=100.0)
        for t in (0.0, 50.0, 120.0):
            eng.schedule_at(t, lambda t=t: op.notify(note(t)))
        eng.run()
        assert len(op.handled) == 3
        assert op.abandoned == []
        assert op.abandoned_fraction == 0.0

    def test_sequential_triage(self):
        eng = Engine()
        op = OperatorModel(eng, triage_time_s=10.0, patience_s=1000.0)
        eng.schedule_at(0.0, lambda: [op.notify(note(0.0)) for _ in range(3)])
        eng.run()
        done_times = [t for t, _ in op.handled]
        assert done_times == pytest.approx([10.0, 20.0, 30.0])

    def test_flood_causes_abandonment(self):
        eng = Engine()
        op = OperatorModel(eng, triage_time_s=30.0, patience_s=60.0)
        # 100 notifications at once: capacity 2/minute, patience 1 minute
        eng.schedule_at(0.0, lambda: [op.notify(note(0.0))
                                      for _ in range(100)])
        eng.run()
        op.flush()
        assert len(op.abandoned) > 0
        assert op.abandoned_fraction > 0.9
        assert op.offered == 100

    def test_mean_response_time(self):
        eng = Engine()
        op = OperatorModel(eng, triage_time_s=5.0, patience_s=1000.0)
        eng.schedule_at(0.0, lambda: op.notify(note(0.0)))
        eng.run()
        assert op.mean_response_time() == pytest.approx(5.0)

    def test_empty_response_time_nan(self):
        op = OperatorModel(Engine())
        assert math.isnan(op.mean_response_time())

    def test_flush_keeps_fresh_items(self):
        eng = Engine()
        op = OperatorModel(eng, triage_time_s=30.0, patience_s=60.0)
        eng.schedule_at(0.0, lambda: [op.notify(note(0.0))
                                      for _ in range(2)])
        eng.run(until=10.0)  # first being triaged, second queued and fresh
        op.flush()
        assert op.abandoned == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OperatorModel(Engine(), triage_time_s=0)
        with pytest.raises(ConfigurationError):
            OperatorModel(Engine(), patience_s=0)

    def test_quiet_ids_vs_noisy_ids(self):
        """The section-2.2 mechanism: at equal operator capacity, the noisy
        IDS gets its notifications abandoned, the quiet one does not."""
        def run(n_alerts):
            eng = Engine()
            op = OperatorModel(eng, triage_time_s=20.0, patience_s=120.0)
            for i in range(n_alerts):
                t = i * (3600.0 / n_alerts)
                eng.schedule_at(t, lambda t=t: op.notify(note(t)))
            eng.run()
            op.flush()
            return op.abandoned_fraction

        assert run(10) == 0.0          # quiet: everything handled
        assert run(2000) > 0.5         # noisy: mostly ignored


class TestReplayNotifications:
    def test_replay_matches_live_semantics(self):
        from repro.ids.operator import replay_notifications

        notes = [note(float(i) * 100.0) for i in range(5)]
        op = replay_notifications(notes, triage_time_s=10.0,
                                  patience_s=1000.0)
        assert len(op.handled) == 5
        assert op.abandoned_fraction == 0.0

    def test_replay_flood_abandons(self):
        from repro.ids.operator import replay_notifications

        notes = [note(0.0) for _ in range(50)]
        op = replay_notifications(notes, triage_time_s=60.0, patience_s=120.0)
        assert op.abandoned_fraction > 0.5

    def test_replay_empty(self):
        from repro.ids.operator import replay_notifications

        op = replay_notifications([])
        assert op.offered == 0
