"""Tests for stream-aware signature matching (segmentation evasion)."""

import numpy as np
import pytest

from repro.attacks.exploits import OVERFLOW_MARKER, BufferOverflowExploit
from repro.errors import ConfigurationError
from repro.ids.alert import Severity
from repro.ids.signature import SignatureEngine, StreamPatternRule, default_ruleset
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.tcp import build_session

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


def seg(payload, seq, sport=4000, dport=143):
    return Packet(src=ATT, dst=TGT, sport=sport, dport=dport,
                  proto=Protocol.TCP, flags=TcpFlags.ACK | TcpFlags.PSH,
                  seq=seq, payload=payload)


@pytest.fixture
def rule():
    return StreamPatternRule("r", [b"EVILMARKER"], category="x")


class TestStreamPatternRule:
    def test_single_segment_match(self, rule):
        assert rule.match(seg(b"xxEVILMARKERxx", 0), 0.0, 0.5) is not None

    def test_match_across_segment_boundary(self, rule):
        assert rule.match(seg(b"prefix EVILM", 0), 0.0, 0.5) is None
        hit = rule.match(seg(b"ARKER suffix", 12), 0.1, 0.5)
        assert hit is not None
        assert hit.category == "x"

    def test_three_way_split(self, rule):
        assert rule.match(seg(b"...EVI", 0), 0.0, 0.5) is None
        assert rule.match(seg(b"LMAR", 6), 0.1, 0.5) is None
        assert rule.match(seg(b"KER...", 10), 0.2, 0.5) is not None

    def test_sequence_gap_resets_window(self, rule):
        assert rule.match(seg(b"prefix EVILM", 0), 0.0, 0.5) is None
        # next segment is NOT contiguous: window restarts, no false join
        assert rule.match(seg(b"ARKER suffix", 500), 0.1, 0.5) is None

    def test_flows_isolated(self, rule):
        assert rule.match(seg(b"EVILM", 0, sport=1111), 0.0, 0.5) is None
        assert rule.match(seg(b"ARKER", 5, sport=2222), 0.1, 0.5) is None

    def test_directions_isolated(self, rule):
        assert rule.match(seg(b"EVILM", 0), 0.0, 0.5) is None
        reverse = Packet(src=TGT, dst=ATT, sport=143, dport=4000,
                         proto=Protocol.TCP, seq=5, payload=b"ARKER")
        assert rule.match(reverse, 0.1, 0.5) is None

    def test_window_timeout_forgets_tail(self, rule):
        assert rule.match(seg(b"EVILM", 0), 0.0, 0.5) is None
        # far in the future: state expired, the continuation alone is clean
        assert rule.match(seg(b"ARKER", 5), 100.0, 0.5) is None

    def test_udp_matched_per_packet_without_stream_state(self, rule):
        udp_hit = Packet(src=ATT, dst=TGT, proto=Protocol.UDP,
                         payload=b"EVILMARKER")
        assert rule.match(udp_hit, 0.0, 0.5) is not None
        # but no cross-datagram joining: a split marker stays unmatched
        udp_a = Packet(src=ATT, dst=TGT, proto=Protocol.UDP, payload=b"EVILM")
        udp_b = Packet(src=ATT, dst=TGT, proto=Protocol.UDP, payload=b"ARKER")
        assert rule.match(udp_a, 0.0, 0.5) is None
        assert rule.match(udp_b, 0.1, 0.5) is None

    def test_no_payload_ignored(self, rule):
        empty = seg(None, 0)
        assert rule.match(empty, 0.0, 0.5) is None

    def test_flow_cap_evicts(self):
        rule = StreamPatternRule("r", [b"ZZ"], category="x", max_flows=4)
        for i in range(10):
            rule.match(seg(b"ab", 0, sport=1000 + i), float(i) * 0.001, 0.5)
        assert len(rule._streams) <= 5

    def test_benign_tails_never_stored(self):
        # no pattern can start with "a" or "b": the store gate must keep
        # the flow table empty no matter how many flows are offered
        rule = StreamPatternRule("r", [b"ZZ"], category="x", max_flows=4)
        for i in range(10):
            rule.match(seg(b"ab", 0, sport=1000 + i), float(i) * 0.001, 0.5)
        assert len(rule._streams) == 0

    def test_flow_cap_bounds_state_under_storable_churn(self):
        # every payload ends with a pattern-leading byte, so every flow
        # wants state; the cap and the eviction-queue compaction must keep
        # both structures bounded through heavy churn
        rule = StreamPatternRule("r", [b"ZZ"], category="x", max_flows=4)
        for i in range(200):
            rule.match(seg(b"aZ", 0, sport=1000 + i), float(i) * 0.001, 0.5)
            assert len(rule._streams) <= 4
            # lazy dead keys are compacted at 2x the cap, never beyond
            assert len(rule._order) < 2 * 4
        # survivors are the most recent flows: the newest tail still seams
        hit = rule.match(seg(b"Z...", 2, sport=1000 + 199), 0.2, 0.5)
        assert hit is not None

    def test_eviction_drops_oldest_flow_first(self):
        rule = StreamPatternRule("r", [b"ZZ"], category="x", max_flows=2)
        for i in range(3):  # third insert evicts the first flow
            assert rule.match(seg(b"aZ", 0, sport=7000 + i),
                              float(i) * 0.001, 0.5) is None
        assert rule.match(seg(b"Z", 2, sport=7000), 0.01, 0.5) is None
        assert rule.match(seg(b"Z", 2, sport=7002), 0.01, 0.5) is not None

    def test_reset_clears_state(self, rule):
        rule.match(seg(b"EVILM", 0), 0.0, 0.5)
        rule.reset()
        assert rule.match(seg(b"ARKER", 5), 0.1, 0.5) is None

    def test_empty_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamPatternRule("r", [], category="x")


class TestDefaultRulesetStreamBehaviour:
    def test_overflow_detected_with_tiny_mss(self):
        """Segmentation evasion: marker forced across segment boundaries."""
        engine = SignatureEngine(default_ruleset(), sensitivity=0.5)
        body = b"LOGIN " + b"A" * 100 + OVERFLOW_MARKER
        # mss=7 slices the 12-byte marker across >= 2 segments
        pkts = build_session(ATT, TGT, 4000, 143, request=body, mss=7)
        cats = set()
        for i, pkt in enumerate(pkts):
            for m in engine.inspect(pkt, i * 1e-3):
                cats.add(m.category)
        assert "overflow-exploit" in cats

    def test_attack_library_still_detected(self):
        engine = SignatureEngine(default_ruleset(), sensitivity=0.5)
        trace, _ = BufferOverflowExploit(ATT, TGT).generate(
            0.0, np.random.default_rng(1))
        cats = set()
        for t, pkt in trace:
            for m in engine.inspect(pkt, t):
                cats.add(m.category)
        assert "overflow-exploit" in cats
