"""Tests for payload builders and the entropy helper."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import payload as pl


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestHttp:
    def test_request_shape(self, rng):
        req = pl.http_request(rng, host="shop.example.com", path="/cart")
        text = req.decode("ascii")
        assert text.startswith("GET /cart HTTP/1.0\r\n")
        assert "Host: shop.example.com\r\n" in text
        assert text.count("\r\n\r\n") == 1

    def test_request_with_body_has_content_length(self, rng):
        req = pl.http_request(rng, method="POST", body=b"a=1&b=2")
        assert b"Content-Length: 7\r\n" in req
        assert req.endswith(b"a=1&b=2")

    def test_request_random_path_from_pool(self, rng):
        req = pl.http_request(rng)
        first_line = req.split(b"\r\n")[0].decode()
        assert first_line.split()[1] in [
            "/", "/index.html", "/images/logo.gif", "/cart", "/checkout",
            "/search", "/products/widget-17", "/api/status", "/login",
            "/css/site.css"]

    def test_response_content_length_matches_body(self, rng):
        resp = pl.http_response(rng, body_size=500)
        head, _, body = resp.partition(b"\r\n\r\n")
        assert len(body) == 500
        assert b"Content-Length: 500" in head

    def test_response_heavy_tailed_sizes_vary(self, rng):
        sizes = [len(pl.http_response(rng)) for _ in range(50)]
        assert max(sizes) > 4 * min(sizes)

    def test_response_status_line(self, rng):
        assert pl.http_response(rng, status=404, body_size=1).startswith(
            b"HTTP/1.0 404 Not Found")


class TestOtherProtocols:
    def test_smtp_structure(self, rng):
        msg = pl.smtp_exchange(rng, sender="alice").decode("ascii")
        assert msg.startswith("HELO ")
        assert "MAIL FROM:<alice@example.mil>" in msg
        assert msg.endswith("\r\n.\r\n")

    def test_telnet_login_success_vs_failure(self):
        ok = pl.telnet_login("root", "secret", success=True)
        bad = pl.telnet_login("root", "guess", success=False)
        assert b"Last login" in ok
        assert b"Login incorrect" in bad
        assert b"root" in ok and b"guess" in bad

    def test_cluster_telemetry_format(self, rng):
        body = pl.cluster_telemetry(rng, node_id=5, n_samples=8)
        magic, mtype, node, _seq = struct.unpack("<IHHI", body[:12])
        assert magic == 0x52544D53
        assert mtype == 1
        assert node == 5
        samples = np.frombuffer(body[12:], dtype="<f4")
        assert len(samples) == 8
        assert np.all(np.abs(samples - 100.0) < 50.0)  # physical-looking

    def test_cluster_command_format(self):
        body = pl.cluster_command(2, "rebalance", 0.5)
        magic, mtype, node, _ = struct.unpack("<IHHI", body[:12])
        assert (magic, mtype, node) == (0x52544D53, 2, 2)
        assert body[12:28].rstrip(b"\x00") == b"rebalance"
        (arg,) = struct.unpack("<d", body[28:36])
        assert arg == 0.5

    def test_cluster_command_truncates_long_names(self):
        body = pl.cluster_command(1, "x" * 40)
        assert len(body[12:28]) == 16


class TestRandomAndEntropy:
    def test_random_payload_size_and_determinism(self):
        a = pl.random_payload(np.random.default_rng(1), 256)
        b = pl.random_payload(np.random.default_rng(1), 256)
        assert len(a) == 256
        assert a == b

    def test_random_payload_zero(self, rng):
        assert pl.random_payload(rng, 0) == b""

    def test_entropy_extremes(self):
        assert pl.shannon_entropy(b"") == 0.0
        assert pl.shannon_entropy(b"\x00" * 1000) == 0.0
        assert pl.shannon_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)

    def test_entropy_ordering_random_vs_text(self, rng):
        random = pl.random_payload(rng, 4096)
        text = pl.http_response(rng, body_size=4096)
        telemetry = pl.cluster_telemetry(rng, 1, n_samples=1000)
        assert pl.shannon_entropy(random) > 7.5
        assert pl.shannon_entropy(text) < 6.0
        assert pl.shannon_entropy(random) > pl.shannon_entropy(telemetry)

    @given(st.binary(min_size=1, max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_entropy_bounds(self, data):
        h = pl.shannon_entropy(data)
        assert 0.0 <= h <= 8.0 + 1e-9
        # entropy is permutation-invariant
        assert pl.shannon_entropy(bytes(sorted(data))) == pytest.approx(h)
