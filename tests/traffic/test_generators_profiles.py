"""Tests for arrival generators and site profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address, Subnet
from repro.net.packet import Protocol
from repro.net.tcp import SessionTable
from repro.traffic.generators import (
    constant_rate_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.traffic.profiles import ClusterProfile, EcommerceProfile


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestGenerators:
    def test_poisson_count_near_expectation(self, rng):
        times = poisson_arrivals(rng, rate_per_s=100.0, duration_s=50.0)
        assert abs(len(times) - 5000) < 300
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < 50.0

    def test_poisson_zero_rate(self, rng):
        assert len(poisson_arrivals(rng, 0.0, 10.0)) == 0

    def test_poisson_start_offset(self, rng):
        times = poisson_arrivals(rng, 10.0, 5.0, start=100.0)
        assert np.all(times >= 100.0) and np.all(times < 105.0)

    def test_poisson_bad_args(self, rng):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(rng, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(rng, 1.0, 0.0)

    def test_constant_rate_exact_spacing(self):
        times = constant_rate_arrivals(10.0, 1.0)
        assert len(times) == 10
        assert np.allclose(np.diff(times), 0.1)

    def test_constant_rate_jitter_bounded(self, rng):
        times = constant_rate_arrivals(100.0, 10.0, jitter_rng=rng, jitter_frac=0.05)
        base = np.arange(1000) * 0.01
        assert np.all(times >= base)
        assert np.all(times <= base + 0.0005 + 1e-12)

    def test_constant_rate_bad_args(self, rng):
        with pytest.raises(ConfigurationError):
            constant_rate_arrivals(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            constant_rate_arrivals(1.0, 1.0, jitter_rng=rng, jitter_frac=1.5)

    def test_onoff_burstiness(self, rng):
        times = onoff_arrivals(rng, on_rate_per_s=1000.0, duration_s=60.0,
                               mean_on_s=0.5, mean_off_s=5.0)
        assert len(times) > 0
        # bursty: mean rate well below on-rate
        assert len(times) / 60.0 < 500.0
        assert np.all(times >= 0) and np.all(times <= 60.0)

    def test_onoff_bad_args(self, rng):
        with pytest.raises(ConfigurationError):
            onoff_arrivals(rng, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            onoff_arrivals(rng, 1.0, 10.0, mean_on_s=0)


class TestClusterProfile:
    def _nodes(self, n=4):
        return list(Subnet("10.0.0.0/24").hosts(n))

    def test_generates_ordered_benign_trace(self, rng):
        trace = ClusterProfile(self._nodes()).generate(5.0, rng)
        assert len(trace) > 0
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert trace.attack_packet_count() == 0

    def test_telemetry_flows_to_master(self, rng):
        nodes = self._nodes()
        trace = ClusterProfile(nodes, control_rate_per_s=0, heartbeat_hz=0).generate(2.0, rng)
        udp = [r.packet for r in trace if r.packet.proto is Protocol.UDP]
        assert udp
        assert all(p.dst == nodes[0] for p in udp)
        assert all(p.dport == 7000 for p in udp)

    def test_telemetry_rate_scales(self, rng):
        nodes = self._nodes()
        base = ClusterProfile(nodes, control_rate_per_s=0, heartbeat_hz=0)
        double = ClusterProfile(nodes, control_rate_per_s=0, heartbeat_hz=0,
                                rate_scale=2.0)
        n1 = len(base.generate(5.0, np.random.default_rng(1)))
        n2 = len(double.generate(5.0, np.random.default_rng(1)))
        assert n2 == pytest.approx(2 * n1, rel=0.05)

    def test_control_sessions_are_valid_tcp(self, rng):
        nodes = self._nodes()
        profile = ClusterProfile(nodes, telemetry_hz=0.001, control_rate_per_s=5.0,
                                 heartbeat_hz=0)
        trace = profile.generate(5.0, rng)
        table = SessionTable(strict=False)
        for r in trace:
            if r.packet.proto is Protocol.TCP:
                table.feed(r.packet, r.time)
        assert len(table) > 0
        assert table.half_open_count == 0  # every session completes

    def test_dematerialized_payloads(self, rng):
        profile = ClusterProfile(self._nodes(), materialize=False)
        trace = profile.generate(2.0, rng)
        assert all(r.packet.payload is None for r in trace)
        assert any(r.packet.payload_len > 0 for r in trace)

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterProfile(self._nodes(1))

    def test_deterministic_given_seed(self):
        nodes = self._nodes()
        t1 = ClusterProfile(nodes).generate(3.0, np.random.default_rng(5))
        t2 = ClusterProfile(nodes).generate(3.0, np.random.default_rng(5))
        assert len(t1) == len(t2)
        assert [r.time for r in t1] == [r.time for r in t2]
        assert [r.packet.payload for r in t1] == [r.packet.payload for r in t2]


class TestEcommerceProfile:
    def test_http_sessions_against_server(self, rng):
        server = IPv4Address("10.0.0.10")
        trace = EcommerceProfile(server, smtp_rate_per_s=0, bulk_rate_per_s=0).generate(5.0, rng)
        tcp80 = [r.packet for r in trace
                 if r.packet.proto is Protocol.TCP and 80 in (r.packet.dport, r.packet.sport)]
        assert tcp80
        payloads = b"".join(p.payload or b"" for p in tcp80)
        assert b"HTTP/1.0" in payloads
        assert b"Host:" in payloads

    def test_clients_outside_lan(self, rng):
        server = IPv4Address("10.0.0.10")
        profile = EcommerceProfile(server, client_subnet="198.51.100.0/24",
                                   smtp_rate_per_s=0, bulk_rate_per_s=0)
        trace = profile.generate(3.0, rng)
        client_sub = Subnet("198.51.100.0/24")
        initiators = {r.packet.src for r in trace if r.packet.dport == 80}
        assert initiators
        assert all(c in client_sub for c in initiators)

    def test_smtp_present(self, rng):
        server = IPv4Address("10.0.0.10")
        profile = EcommerceProfile(server, session_rate_per_s=0.0,
                                   smtp_rate_per_s=3.0, bulk_rate_per_s=0)
        trace = profile.generate(10.0, rng)
        assert any(r.packet.dport == 25 for r in trace)

    def test_rate_scale_validated(self):
        with pytest.raises(ConfigurationError):
            EcommerceProfile(IPv4Address("10.0.0.1"), rate_scale=0)
