"""Tests for ranking robustness under weight perturbation."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.robustness import pairwise_margin, ranking_robustness
from repro.core.scorecard import Scorecard
from repro.errors import ScorecardError


def make_card(scores_a, scores_b):
    card = Scorecard(default_catalog())
    card.add_product("A")
    card.add_product("B")
    metrics = ["Timeliness", "SNMP Interaction", "Distributed Management"]
    for metric, sa, sb in zip(metrics, scores_a, scores_b):
        card.set_score("A", metric, sa)
        card.set_score("B", metric, sb)
    return card, metrics


class TestRankingRobustness:
    def test_dominant_product_fully_stable(self):
        # A strictly dominates B: no positive perturbation can flip them
        card, metrics = make_card((4, 4, 4), (1, 1, 1))
        weights = {m: 1.0 for m in metrics}
        report = ranking_robustness(card, weights, samples=200,
                                    perturbation=0.5, seed=1)
        assert report.baseline_ranking == ("A", "B")
        assert report.winner_stability == 1.0
        assert report.ranking_stability == 1.0
        assert report.win_rates["A"] == 1.0

    def test_knife_edge_decision_unstable(self):
        # A and B trade wins across metrics; totals nearly tie
        card, metrics = make_card((4, 0, 2), (0, 4, 2))
        weights = {metrics[0]: 1.0, metrics[1]: 1.0, metrics[2]: 1.0}
        report = ranking_robustness(card, weights, samples=400,
                                    perturbation=0.4, seed=2)
        assert 0.0 < report.winner_stability < 1.0
        assert abs(report.win_rates["A"] + report.win_rates["B"] - 1.0) < 1e-9

    def test_zero_perturbation_is_deterministic(self):
        card, metrics = make_card((4, 1, 2), (3, 2, 2))
        weights = {m: 1.0 for m in metrics}
        report = ranking_robustness(card, weights, samples=50,
                                    perturbation=0.0, seed=3)
        assert report.winner_stability == 1.0
        assert report.ranking_stability == 1.0

    def test_seeded_reproducibility(self):
        card, metrics = make_card((4, 0, 2), (0, 4, 2))
        weights = {m: 1.0 for m in metrics}
        r1 = ranking_robustness(card, weights, samples=100, seed=7)
        r2 = ranking_robustness(card, weights, samples=100, seed=7)
        assert r1.winner_stability == r2.winner_stability
        assert r1.win_rates == r2.win_rates

    def test_validation(self):
        card, metrics = make_card((1, 1, 1), (1, 1, 1))
        weights = {m: 1.0 for m in metrics}
        with pytest.raises(ScorecardError):
            ranking_robustness(card, weights, samples=0)
        with pytest.raises(ScorecardError):
            ranking_robustness(card, weights, perturbation=1.5)


class TestPairwiseMargin:
    def test_sign_and_scale(self):
        card, metrics = make_card((4, 4, 4), (2, 2, 2))
        weights = {m: 1.0 for m in metrics}
        margin = pairwise_margin(card, weights, "A", "B")
        assert margin == pytest.approx((12 - 6) / 18)
        assert pairwise_margin(card, weights, "B", "A") == pytest.approx(
            -margin)

    def test_tie_is_zero(self):
        card, metrics = make_card((2, 2, 2), (2, 2, 2))
        weights = {m: 1.0 for m in metrics}
        assert pairwise_margin(card, weights, "A", "B") == 0.0

    def test_zero_weights_zero_margin(self):
        card, metrics = make_card((4, 4, 4), (0, 0, 0))
        assert pairwise_margin(card, {}, "A", "B") == 0.0
