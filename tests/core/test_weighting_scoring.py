"""Tests for requirements, weight derivation (Fig 6) and scoring (Fig 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import default_catalog
from repro.core.metric import MetricClass, ObservationMethod
from repro.core.requirements import Requirement, RequirementSet
from repro.core.scorecard import Scorecard
from repro.core.scoring import rank_products, weighted_scores
from repro.core.weighting import derive_weights, figure6_example
from repro.errors import ScorecardError, WeightingError


class TestRequirementSet:
    def test_from_ordered_assigns_increasing_weights(self):
        rs = RequirementSet.from_ordered("t", [
            ("a", "least", ["Timeliness"]),
            ("b", "mid", ["Timeliness"]),
            ("c", "most", ["SNMP Interaction"]),
        ])
        assert [r.weight for r in rs] == [1.0, 2.0, 3.0]

    def test_from_ordered_ties_share_weight(self):
        rs = RequirementSet.from_ordered("t", [
            ("a", "least", []),
            [("b1", "tied", []), ("b2", "tied", [])],
            ("c", "most", []),
        ])
        weights = {r.name: r.weight for r in rs}
        assert weights == {"a": 1.0, "b1": 2.0, "b2": 2.0, "c": 3.0}

    def test_duplicate_names_rejected(self):
        rs = RequirementSet("t")
        rs.add(Requirement("a", "d", 1.0))
        with pytest.raises(WeightingError):
            rs.add(Requirement("a", "d", 2.0))

    def test_get_and_total(self):
        rs = RequirementSet("t", [Requirement("a", "d", 1.5),
                                  Requirement("b", "d", 2.0)])
        assert rs.get("a").weight == 1.5
        assert rs.total_weight() == 3.5
        with pytest.raises(WeightingError):
            rs.get("zzz")

    def test_contributions_index(self):
        rs = RequirementSet("t", [
            Requirement("a", "d", 1.0, frozenset({"M1", "M2"})),
            Requirement("b", "d", 2.0, frozenset({"M2"})),
        ])
        contrib = rs.contributions()
        assert {r.name for r in contrib["M2"]} == {"a", "b"}
        assert {r.name for r in contrib["M1"]} == {"a"}


class TestDeriveWeights:
    def test_sum_of_contributing_requirements(self):
        rs = RequirementSet("t", [
            Requirement("a", "d", 1.0, frozenset({"M1", "M2"})),
            Requirement("b", "d", 2.5, frozenset({"M2"})),
        ])
        weights = derive_weights(rs)
        assert weights == {"M1": 1.0, "M2": 3.5}

    def test_figure6_example_reproduces_paper_numbers(self):
        _, weights = figure6_example()
        assert weights == {"M1": 3.0, "M2": 6.5, "M3": 5.0,
                           "M4": 0.0, "M5": 0.0, "M6": 8.0}

    def test_catalog_validation(self):
        catalog = default_catalog()
        rs = RequirementSet("t", [
            Requirement("a", "d", 1.0, frozenset({"Not A Metric"}))])
        with pytest.raises(WeightingError):
            derive_weights(rs, catalog)

    def test_catalog_fills_default_zero(self):
        catalog = default_catalog()
        rs = RequirementSet("t", [
            Requirement("a", "d", 2.0, frozenset({"Timeliness"}))])
        weights = derive_weights(rs, catalog)
        assert len(weights) == 52
        assert weights["Timeliness"] == 2.0
        assert weights["SNMP Interaction"] == 0.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0.1, max_value=10, allow_nan=False),
        st.sets(st.sampled_from(["M1", "M2", "M3", "M4"]), max_size=4)),
        min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_property_monotone_adding_requirements(self, rows):
        """Adding a (positive-weight) requirement never lowers any weight."""
        reqs = [Requirement(f"r{i}", "d", w, frozenset(ms))
                for i, (w, ms) in enumerate(rows)]
        partial = derive_weights(RequirementSet("p", reqs[:-1]))
        full = derive_weights(RequirementSet("f", reqs))
        for metric, weight in partial.items():
            assert full.get(metric, 0.0) >= weight - 1e-12


class TestScorecard:
    @pytest.fixture
    def card(self):
        card = Scorecard(default_catalog())
        card.add_product("ids-a")
        card.add_product("ids-b")
        return card

    def test_set_and_get(self, card):
        card.set_score("ids-a", "Timeliness", 3,
                       evidence="avg 0.4s to notify", raw_value=0.4)
        entry = card.get("ids-a", "Timeliness")
        assert entry.score == 3
        assert entry.raw_value == 0.4
        assert card.score("ids-a", "Timeliness") == 3
        assert card.score("ids-b", "Timeliness") is None

    def test_duplicate_product_rejected(self, card):
        with pytest.raises(ScorecardError):
            card.add_product("ids-a")

    def test_unknown_product_rejected(self, card):
        with pytest.raises(ScorecardError):
            card.set_score("nope", "Timeliness", 2)

    def test_score_range_enforced(self, card):
        from repro.errors import ScoreValueError
        with pytest.raises(ScoreValueError):
            card.set_score("ids-a", "Timeliness", 5)

    def test_method_designation_enforced(self, card):
        # Timeliness is analysis-only
        with pytest.raises(ScorecardError):
            card.set_score("ids-a", "Timeliness", 2,
                           method=ObservationMethod.OPEN_SOURCE)

    def test_missing_and_complete(self, card):
        names = ["Timeliness", "SNMP Interaction"]
        assert card.missing("ids-a", names) == names
        card.set_score("ids-a", "Timeliness", 2)
        assert card.missing("ids-a", names) == ["SNMP Interaction"]
        card.set_score("ids-a", "SNMP Interaction", 4)
        assert card.complete_for("ids-a", names)

    def test_class_scores(self, card):
        card.set_score("ids-a", "Timeliness", 2)
        card.set_score("ids-a", "Distributed Management", 4)
        perf = card.class_scores("ids-a", MetricClass.PERFORMANCE)
        assert perf == {"Timeliness": 2}


class TestWeightedScores:
    def _card(self):
        card = Scorecard(default_catalog())
        for product in ("A", "B"):
            card.add_product(product)
        card.set_score("A", "Timeliness", 4)
        card.set_score("A", "Distributed Management", 2)
        card.set_score("B", "Timeliness", 1)
        card.set_score("B", "Distributed Management", 4)
        return card

    def test_figure5_formula(self):
        card = self._card()
        weights = {"Timeliness": 2.0, "Distributed Management": 1.0}
        results = {r.product: r for r in weighted_scores(card, weights)}
        assert results["A"].class_scores[MetricClass.PERFORMANCE] == 8.0
        assert results["A"].class_scores[MetricClass.LOGISTICAL] == 2.0
        assert results["A"].total == 10.0
        assert results["B"].total == 2.0 + 4.0

    def test_negative_weights_supported(self):
        card = self._card()
        weights = {"Timeliness": -1.0}
        results = {r.product: r for r in weighted_scores(card, weights)}
        assert results["A"].total == -4.0
        assert results["B"].total == -1.0

    def test_strict_missing_raises(self):
        card = self._card()
        with pytest.raises(ScorecardError):
            weighted_scores(card, {"SNMP Interaction": 1.0})

    def test_lenient_missing_reported(self):
        card = self._card()
        results = weighted_scores(card, {"SNMP Interaction": 1.0},
                                  strict=False)
        assert results[0].unscored_weighted == ("SNMP Interaction",)
        assert results[0].total == 0.0

    def test_unknown_metric_in_weights(self):
        card = self._card()
        from repro.errors import UnknownMetricError
        with pytest.raises(UnknownMetricError):
            weighted_scores(card, {"Bogus": 1.0})

    def test_rank_products(self):
        card = self._card()
        weights = {"Timeliness": 2.0, "Distributed Management": 1.0}
        ranked = rank_products(weighted_scores(card, weights))
        assert [r.product for r in ranked] == ["A", "B"]

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=3,
                    max_size=3),
           st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                    min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_property_linearity(self, scores, ws):
        """S_j is linear: doubling all weights doubles every class score."""
        card = Scorecard(default_catalog())
        card.add_product("P")
        names = ["Timeliness", "Distributed Management", "System Throughput"]
        for name, score in zip(names, scores):
            card.set_score("P", name, score)
        weights = dict(zip(names, ws))
        double = {k: 2 * v for k, v in weights.items()}
        r1 = weighted_scores(card, weights)[0]
        r2 = weighted_scores(card, double)[0]
        assert r2.total == pytest.approx(2 * r1.total)
        for c in MetricClass:
            assert r2.class_scores[c] == pytest.approx(2 * r1.class_scores[c])


class TestProfilesAndReport:
    def test_profiles_map_to_real_metrics(self):
        from repro.core.profiles import (
            distributed_requirements,
            ecommerce_requirements,
            realtime_cluster_requirements,
        )
        catalog = default_catalog()
        for profile in (realtime_cluster_requirements(),
                        distributed_requirements(),
                        ecommerce_requirements()):
            weights = derive_weights(profile, catalog)  # validates names
            assert sum(1 for w in weights.values() if w > 0) >= 5

    def test_distributed_profile_emphasizes_fnr(self):
        from repro.core.profiles import distributed_requirements
        catalog = default_catalog()
        weights = derive_weights(distributed_requirements(), catalog)
        assert weights["Observed False Negative Ratio"] > \
            weights["Observed False Positive Ratio"]

    def test_realtime_profile_emphasizes_reaction(self):
        from repro.core.profiles import realtime_cluster_requirements
        catalog = default_catalog()
        weights = derive_weights(realtime_cluster_requirements(), catalog)
        for name in ("Timeliness", "Firewall Interaction",
                     "Router Interaction", "SNMP Interaction"):
            assert weights[name] == max(r.weight for r in
                                        realtime_cluster_requirements())

    def test_report_rendering(self):
        from repro.core.report import (
            format_metric_table,
            format_score_matrix,
            format_weighted_results,
        )
        catalog = default_catalog()
        text = format_metric_table(catalog, MetricClass.LOGISTICAL)
        assert "Distributed Management" in text
        card = Scorecard(catalog)
        card.add_product("A")
        card.set_score("A", "Timeliness", 3)
        matrix = format_score_matrix(card, MetricClass.PERFORMANCE)
        assert "Timeliness" in matrix and "3" in matrix
        results = weighted_scores(card, {"Timeliness": 1.0})
        out = format_weighted_results(results)
        assert "A" in out and "3.00" in out
