"""Tests for the metric model and the full catalog."""

import pytest

from repro.core.catalog import MetricCatalog, default_catalog
from repro.core.metric import (
    Metric,
    MetricClass,
    ObservationMethod,
    ScoreAnchors,
    validate_score,
)
from repro.errors import ScoreValueError, UnknownMetricError

TABLE1 = [
    "Distributed Management", "Ease of Configuration",
    "Ease of Policy Maintenance", "License Management",
    "Outsourced Solution", "Platform Requirements",
]
TABLE2 = [
    "Adjustable Sensitivity", "Data Pool Selectability", "Data Storage",
    "Host-based", "Multi-sensor Support", "Network-based",
    "Scalable Load-balancing", "System Throughput",
]
TABLE3 = [
    "Analysis of Compromise", "Error Reporting and Recovery",
    "Firewall Interaction", "Induced Traffic Latency",
    "Maximal Throughput with Zero Loss", "Network Lethal Dose",
    "Observed False Negative Ratio", "Observed False Positive Ratio",
    "Operational Performance Impact", "Router Interaction",
    "SNMP Interaction", "Timeliness",
]


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


class TestValidateScore:
    @pytest.mark.parametrize("ok", [0, 1, 2, 3, 4])
    def test_valid(self, ok):
        assert validate_score(ok) == ok

    @pytest.mark.parametrize("bad", [-1, 5, 2.5, "2", None, True])
    def test_invalid(self, bad):
        with pytest.raises(ScoreValueError):
            validate_score(bad)


class TestMetricModel:
    def test_requires_name_and_methods(self):
        with pytest.raises(ValueError):
            Metric(name="", metric_class=MetricClass.LOGISTICAL, definition="x")
        with pytest.raises(ValueError):
            Metric(name="x", metric_class=MetricClass.LOGISTICAL,
                   definition="x", methods=frozenset())

    def test_class_index_matches_paper(self):
        assert MetricClass.LOGISTICAL == 1
        assert MetricClass.ARCHITECTURAL == 2
        assert MetricClass.PERFORMANCE == 3


class TestDefaultCatalog:
    def test_total_count(self, catalog):
        assert len(catalog) == 52

    def test_table_subsets_match_paper(self, catalog):
        t1 = [m.name for m in catalog.by_class(MetricClass.LOGISTICAL,
                                               table_only=True)]
        t2 = [m.name for m in catalog.by_class(MetricClass.ARCHITECTURAL,
                                               table_only=True)]
        t3 = [m.name for m in catalog.by_class(MetricClass.PERFORMANCE,
                                               table_only=True)]
        assert t1 == TABLE1
        assert t2 == TABLE2
        assert t3 == TABLE3

    def test_not_included_metrics_present(self, catalog):
        for name in ["Quality of Documentation", "Anomaly Based",
                     "Threat Correlation", "Trend Analysis",
                     "Three Year Cost of Ownership", "Visibility"]:
            metric = catalog.get(name)
            assert not metric.in_paper_table

    def test_paper_anchor_wording_preserved(self, catalog):
        slb = catalog.get("Scalable Load-balancing")
        assert slb.anchors.low == "No load balancing"
        assert slb.anchors.high == "Intelligent, dynamic load balancing"
        err = catalog.get("Error Reporting and Recovery")
        assert "hang indefinitely" in err.anchors.low
        assert "cold reboot" in err.anchors.average
        assert "near real time" in err.anchors.high
        dm = catalog.get("Distributed Management")
        assert "encryption and authentication" in dm.anchors.high

    def test_all_table_metrics_have_definitions(self, catalog):
        for metric in catalog.table_metrics():
            assert len(metric.definition) > 20

    def test_observation_methods_designated(self, catalog):
        assert ObservationMethod.OPEN_SOURCE in catalog.get(
            "License Management").methods
        assert ObservationMethod.ANALYSIS in catalog.get(
            "Observed False Negative Ratio").methods

    def test_unknown_metric_raises(self, catalog):
        with pytest.raises(UnknownMetricError):
            catalog.get("Nonexistent Metric")

    def test_contains_and_names(self, catalog):
        assert "Timeliness" in catalog
        assert "Nope" not in catalog
        assert len(catalog.names()) == 52

    def test_duplicate_names_rejected(self):
        m = Metric(name="X", metric_class=MetricClass.LOGISTICAL,
                   definition="d")
        with pytest.raises(ValueError):
            MetricCatalog([m, m])

    def test_class_partition_complete(self, catalog):
        total = sum(len(catalog.by_class(c)) for c in MetricClass)
        assert total == len(catalog)
