"""Tests for longitudinal re-evaluation across product versions."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.longitudinal import EvaluationHistory, ScoreDelta
from repro.core.scorecard import Scorecard
from repro.errors import ScorecardError


def make_card(**scores):
    card = Scorecard(default_catalog())
    card.add_product("ids-x")
    for metric, score in scores.items():
        card.set_score("ids-x", metric.replace("_", " "), score)
    return card


@pytest.fixture
def history():
    h = EvaluationHistory("ids-x")
    h.add("1.0", "2001-10-01", make_card(Timeliness=2))
    h.add("2.0", "2002-03-01", make_card(Timeliness=4))
    return h


class TestHistory:
    def test_versions_in_order(self, history):
        assert history.versions == ["1.0", "2.0"]
        assert len(history) == 2
        assert history.latest().version == "2.0"

    def test_empty_latest_raises(self):
        with pytest.raises(ScorecardError):
            EvaluationHistory("x").latest()

    def test_add_requires_product(self):
        h = EvaluationHistory("other")
        with pytest.raises(ScorecardError):
            h.add("1.0", "2002-01-01", make_card())

    def test_unknown_version(self, history):
        with pytest.raises(ScorecardError):
            history.deltas("1.0", "9.9")


class TestDeltas:
    def test_changed_metric_reported(self, history):
        deltas = history.deltas("1.0", "2.0")
        names = {d.metric for d in deltas}
        assert "Timeliness" in names
        d = next(d for d in deltas if d.metric == "Timeliness")
        assert (d.before, d.after) == (2, 4)
        assert d.improvement and not d.regression

    def test_regression_detected(self):
        h = EvaluationHistory("ids-x")
        h.add("1.0", "t0", make_card(Timeliness=4))
        h.add("2.0", "t1", make_card(Timeliness=1))
        regs = h.regressions("1.0", "2.0")
        assert len(regs) == 1
        assert regs[0].regression

    def test_newly_scored_metric_is_a_delta(self):
        h = EvaluationHistory("ids-x")
        h.add("1.0", "t0", make_card())
        h.add("2.0", "t1", make_card(Timeliness=3))
        deltas = h.deltas("1.0", "2.0")
        d = next(d for d in deltas if d.metric == "Timeliness")
        assert d.before is None and d.after == 3
        assert not d.regression and not d.improvement

    def test_no_change_no_delta(self):
        h = EvaluationHistory("ids-x")
        h.add("1.0", "t0", make_card(Timeliness=3))
        h.add("1.1", "t1", make_card(Timeliness=3))
        assert h.deltas("1.0", "1.1") == []


class TestWeightedTrend:
    def test_trend_follows_customer_weights(self, history):
        trend = history.weighted_trend({"Timeliness": 2.0})
        assert trend == [("1.0", 4.0), ("2.0", 8.0)]

    def test_trend_indifferent_customer(self, history):
        # a customer who does not weight the changed metric sees no movement
        trend = history.weighted_trend({"SNMP Interaction": 1.0})
        assert trend == [("1.0", 0.0), ("2.0", 0.0)]
