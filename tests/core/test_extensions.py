"""Tests for the human-dimension scorecard extension (paper future work)."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.extensions import (
    extend_catalog,
    human_factors_metrics,
    human_factors_requirement,
    score_operator_workload,
)
from repro.core.metric import MetricClass
from repro.core.requirements import RequirementSet
from repro.core.scorecard import Scorecard
from repro.core.scoring import weighted_scores
from repro.core.weighting import derive_weights


class TestHumanFactorsMetrics:
    def test_five_metrics_with_anchors(self):
        metrics = human_factors_metrics()
        assert len(metrics) == 5
        for m in metrics:
            assert m.anchors is not None
            assert not m.in_paper_table  # extension, not a paper table

    def test_extend_catalog_is_additive_and_pure(self):
        base = default_catalog()
        extended = extend_catalog(base)
        assert len(extended) == len(base) + 5
        assert len(base) == 52  # input untouched
        assert "Operator Workload" in extended
        assert "Operator Workload" not in base

    def test_extension_duplicates_rejected(self):
        base = default_catalog()
        extended = extend_catalog(base)
        with pytest.raises(ValueError):
            extend_catalog(extended)  # adding the same five again

    def test_classes_span_all_three(self):
        classes = {m.metric_class for m in human_factors_metrics()}
        assert classes == {MetricClass.LOGISTICAL, MetricClass.ARCHITECTURAL,
                           MetricClass.PERFORMANCE}


class TestHumanFactorsWorkflow:
    def test_requirement_wires_into_weighting(self):
        catalog = extend_catalog(default_catalog())
        profile = RequirementSet("with-humans", [
            human_factors_requirement(weight=2.0)])
        weights = derive_weights(profile, catalog)
        assert weights["Operator Workload"] == 2.0
        assert weights["Console Interface Quality"] == 2.0
        assert weights["Timeliness"] == 0.0

    def test_scoring_end_to_end(self):
        catalog = extend_catalog(default_catalog())
        card = Scorecard(catalog)
        card.add_product("p")
        score, evidence = score_operator_workload(4.0)
        card.set_score("p", "Operator Workload", score, evidence=evidence)
        card.set_score("p", "Alert Comprehensibility", 3)
        weights = {"Operator Workload": 1.0, "Alert Comprehensibility": 1.0}
        result = weighted_scores(card, weights)[0]
        assert result.total == score + 3

    @pytest.mark.parametrize("rate,expected", [
        (0.0, 4), (1.0, 4), (5.0, 3), (20.0, 2), (100.0, 1), (1000.0, 0)])
    def test_workload_discretization(self, rate, expected):
        score, evidence = score_operator_workload(rate)
        assert score == expected
        assert "notifications/hour" in evidence

    def test_workload_monotone(self):
        rates = [0, 2, 10, 50, 200, 500]
        scores = [score_operator_workload(r)[0] for r in rates]
        assert scores == sorted(scores, reverse=True)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            score_operator_workload(-1.0)
