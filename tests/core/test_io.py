"""Tests for scorecard JSON persistence."""

import json

import pytest

from repro.core.catalog import default_catalog
from repro.core.extensions import extend_catalog
from repro.core.io import (
    load_scorecard,
    save_scorecard,
    scorecard_from_dict,
    scorecard_to_dict,
)
from repro.core.metric import ObservationMethod
from repro.core.scorecard import Scorecard
from repro.errors import ScorecardError, UnknownMetricError


@pytest.fixture
def card():
    card = Scorecard(default_catalog())
    card.add_product("a")
    card.add_product("b")
    card.set_score("a", "Timeliness", 3, evidence="0.4s", raw_value=0.4)
    card.set_score("a", "License Management", 2,
                   method=ObservationMethod.OPEN_SOURCE,
                   evidence="per-site keys")
    card.set_score("b", "Timeliness", 1)
    return card


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, card):
        data = scorecard_to_dict(card)
        loaded = scorecard_from_dict(data, default_catalog())
        assert loaded.products == card.products
        assert len(loaded) == len(card)
        entry = loaded.get("a", "Timeliness")
        assert entry.score == 3
        assert entry.evidence == "0.4s"
        assert entry.raw_value == 0.4
        assert entry.method is ObservationMethod.ANALYSIS
        os_entry = loaded.get("a", "License Management")
        assert os_entry.method is ObservationMethod.OPEN_SOURCE

    def test_file_roundtrip(self, card, tmp_path):
        path = str(tmp_path / "card.json")
        save_scorecard(card, path)
        loaded = load_scorecard(path, default_catalog())
        assert loaded.score("b", "Timeliness") == 1
        # the file is plain, stable JSON
        with open(path) as fh:
            raw = json.load(fh)
        assert raw["format"] == "repro-scorecard"

    def test_json_serializable(self, card):
        json.dumps(scorecard_to_dict(card))  # no TypeError


class TestValidationOnLoad:
    def test_bad_format_rejected(self):
        with pytest.raises(ScorecardError):
            scorecard_from_dict({"format": "other"}, default_catalog())

    def test_bad_version_rejected(self):
        with pytest.raises(ScorecardError):
            scorecard_from_dict({"format": "repro-scorecard", "version": 99},
                                default_catalog())

    def test_unknown_metric_rejected_by_default(self, card):
        extended = extend_catalog(default_catalog())
        rich = Scorecard(extended)
        rich.add_product("p")
        rich.set_score("p", "Operator Workload", 3)
        data = scorecard_to_dict(rich)
        with pytest.raises(UnknownMetricError):
            scorecard_from_dict(data, default_catalog())

    def test_unknown_metric_droppable(self):
        extended = extend_catalog(default_catalog())
        rich = Scorecard(extended)
        rich.add_product("p")
        rich.set_score("p", "Operator Workload", 3)
        rich.set_score("p", "Timeliness", 2)
        data = scorecard_to_dict(rich)
        loaded = scorecard_from_dict(data, default_catalog(),
                                     ignore_unknown_metrics=True)
        assert loaded.score("p", "Timeliness") == 2
        assert len(loaded) == 1

    def test_unknown_method_rejected(self, card):
        data = scorecard_to_dict(card)
        data["entries"][0]["method"] = "hearsay"
        with pytest.raises(ScorecardError):
            scorecard_from_dict(data, default_catalog())

    def test_score_validation_applies_on_load(self, card):
        data = scorecard_to_dict(card)
        data["entries"][0]["score"] = 9
        from repro.errors import ScoreValueError
        with pytest.raises(ScoreValueError):
            scorecard_from_dict(data, default_catalog())
