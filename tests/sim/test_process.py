"""Tests for the coroutine process layer."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Process, Signal, start


class TestProcessBasics:
    def test_simple_delays(self):
        eng = Engine()
        out = []
        def worker():
            out.append(eng.now)
            yield 1.5
            out.append(eng.now)
            yield 2.5
            out.append(eng.now)
        start(eng, worker())
        eng.run()
        assert out == [0.0, 1.5, 4.0]

    def test_return_value_on_done_signal(self):
        eng = Engine()
        def worker():
            yield 1.0
            return 42
        p = start(eng, worker())
        eng.run()
        assert p.done.triggered
        assert p.done.value == 42
        assert not p.alive

    def test_requires_generator(self):
        with pytest.raises(SimulationError):
            Process(Engine(), lambda: None)  # type: ignore[arg-type]

    def test_negative_delay_raises(self):
        eng = Engine()
        def worker():
            yield -1.0
        start(eng, worker())
        with pytest.raises(SimulationError):
            eng.run()

    def test_bad_yield_type_raises(self):
        eng = Engine()
        def worker():
            yield "nope"
        start(eng, worker())
        with pytest.raises(SimulationError):
            eng.run()

    def test_interrupt_stops_process(self):
        eng = Engine()
        out = []
        def worker():
            yield 1.0
            out.append("first")
            yield 10.0
            out.append("never")
        p = start(eng, worker())
        eng.schedule(5.0, p.interrupt)
        eng.run()
        assert out == ["first"]
        assert p.done.triggered and p.done.value is None


class TestSignals:
    def test_wait_on_signal_receives_value(self):
        eng = Engine()
        sig = Signal(eng, name="data")
        out = []
        def waiter():
            value = yield sig
            out.append((eng.now, value))
        start(eng, waiter())
        eng.schedule(3.0, sig.trigger, "payload")
        eng.run()
        assert out == [(3.0, "payload")]

    def test_already_triggered_signal_resumes_immediately(self):
        eng = Engine()
        sig = Signal(eng)
        sig.trigger("early")
        out = []
        def waiter():
            v = yield sig
            out.append((eng.now, v))
        start(eng, waiter())
        eng.run()
        assert out == [(0.0, "early")]

    def test_multiple_waiters_all_wake(self):
        eng = Engine()
        sig = Signal(eng)
        out = []
        def waiter(tag):
            v = yield sig
            out.append((tag, v))
        start(eng, waiter("a"))
        start(eng, waiter("b"))
        eng.schedule(1.0, sig.trigger, 7)
        eng.run()
        assert sorted(out) == [("a", 7), ("b", 7)]

    def test_double_trigger_raises(self):
        eng = Engine()
        sig = Signal(eng)
        sig.trigger()
        with pytest.raises(SimulationError):
            sig.trigger()

    def test_value_before_trigger_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Signal(eng).value

    def test_process_chaining_via_done(self):
        eng = Engine()
        out = []
        def producer():
            yield 2.0
            return "result"
        def consumer(prod):
            v = yield prod.done
            out.append((eng.now, v))
        p = start(eng, producer())
        start(eng, consumer(p))
        eng.run()
        assert out == [(2.0, "result")]
