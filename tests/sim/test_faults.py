"""Tests for the fault-injection layer (plans, injector, hooks)."""

import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ids.alert import Detection, Severity
from repro.ids.analyzer import Analyzer
from repro.ids.monitor import Monitor
from repro.net.address import IPv4Address
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.faults import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    named_plan,
    plan_names,
)


# ----------------------------------------------------------------------
# duck-typed fake deployment (hooks only; no simulation behaviour)
# ----------------------------------------------------------------------
class FakeComponent:
    def __init__(self):
        self.up = True
        self.calls = []

    def force_fail(self):
        self.up = False
        self.calls.append("fail")

    def force_restore(self):
        self.up = True
        self.calls.append("restore")

    def set_slowdown(self, factor):
        self.calls.append(("slow", factor))

    def clear_slowdown(self):
        self.calls.append("clear")

    def stall(self):
        self.calls.append("stall")

    def resume(self):
        self.calls.append("resume")

    def partition(self):
        self.calls.append("partition")

    def heal(self):
        self.calls.append("heal")

    def notify_recovered(self, sensor):
        self.calls.append(("recovered", sensor))


def fake_deployment(n_sensors=2, n_analyzers=1, monitor=True, balancer=True):
    bal = FakeComponent() if balancer else None
    if bal is not None:
        bal.failover = False
    return SimpleNamespace(
        sensors=[FakeComponent() for _ in range(n_sensors)],
        analyzers=[FakeComponent() for _ in range(n_analyzers)],
        monitor=FakeComponent() if monitor else None,
        pipeline=SimpleNamespace(balancer=bal) if bal is not None else None,
        ingest=lambda pkt: None,
    )


def pkt():
    return Packet(src=IPv4Address("198.18.0.1"),
                  dst=IPv4Address("10.0.0.5"), sport=1, dport=80)


# ----------------------------------------------------------------------
# plan construction and validation
# ----------------------------------------------------------------------
class TestFaultValidation:
    def test_kind_target_mismatch(self):
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.OVERLOAD, "analyzer:0", 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.PARTITION, "sensor:0", 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.LINK_LOSS, "monitor", 0.1, 0.1)

    def test_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.CRASH, "sensor:0", 1.5, 0.1)
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.CRASH, "sensor:0", 0.1, -0.1)

    def test_bad_magnitudes(self):
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.OVERLOAD, "sensor:0", 0.1, 0.1, magnitude=0.5)
        with pytest.raises(ConfigurationError):
            Fault(FaultKind.LINK_LOSS, "link", 0.1, 0.1, magnitude=1.5)

    def test_unknown_plan(self):
        with pytest.raises(ConfigurationError):
            named_plan("no-such-plan")

    def test_registry(self):
        names = plan_names()
        assert "none" in names and "crash-recover" in names
        assert named_plan("none").is_empty
        for name in names:
            plan = named_plan(name, seed=7)
            assert plan.name == name and plan.seed == 7
            assert plan.token() == named_plan(name, seed=7).token()

    def test_scaled_severity_zero_is_noop(self):
        fault = Fault(FaultKind.OVERLOAD, "sensor:*", 0.2, 0.5,
                      magnitude=8.0)
        zero = fault.scaled(0.0)
        assert zero.duration_frac == 0.0
        assert zero.magnitude == 1.0
        assert zero.downtime_weight() == 0.0

    def test_scaled_clamps_at_scenario_end(self):
        fault = Fault(FaultKind.CRASH, "sensor:0", 0.8, 0.5)
        assert fault.scaled(1.0).duration_frac == pytest.approx(0.2)


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class TestInjector:
    def test_empty_plan_is_dormant(self):
        eng = Engine()
        dep = fake_deployment()
        inj = FaultInjector(eng, dep, named_plan("none"), duration_s=10.0)
        inj.arm()
        assert not inj.applied and not inj.skipped
        assert dep.pipeline.balancer.failover is False  # hook stays off
        assert inj.availability() == 1.0
        eng.run()
        assert eng.now == 0.0  # nothing was ever scheduled

    def test_crash_schedules_fail_and_restore(self):
        eng = Engine()
        dep = fake_deployment()
        plan = FaultPlan("t", (Fault(FaultKind.CRASH, "sensor:0", 0.2, 0.3),))
        inj = FaultInjector(eng, dep, plan, duration_s=10.0)
        inj.arm()
        assert dep.pipeline.balancer.failover is True
        eng.run()
        assert dep.sensors[0].calls == ["fail", "restore"]
        assert dep.sensors[1].calls == []
        # recovery re-registration reaches the balancer, not the sensor
        assert ("recovered", dep.sensors[0]) in dep.pipeline.balancer.calls

    def test_skip_accounting_for_absent_components(self):
        eng = Engine()
        dep = fake_deployment(n_sensors=0, balancer=False)
        plan = FaultPlan("t", (
            Fault(FaultKind.CRASH, "sensor:0", 0.1, 0.2),
            Fault(FaultKind.CRASH, "balancer", 0.1, 0.2),
            Fault(FaultKind.CRASH, "analyzer:5", 0.1, 0.2),
        ))
        inj = FaultInjector(eng, dep, plan, duration_s=10.0)
        inj.arm()
        assert len(inj.skipped) == 3
        assert not inj.applied
        assert inj.availability() == 1.0  # skipped faults add no downtime
        counters = inj.degradation_counters()
        assert counters["faults_skipped"] == 3

    def test_link_loss_is_seed_deterministic(self):
        def run(seed):
            eng = Engine()
            delivered = []
            dep = fake_deployment()
            dep.ingest = lambda p: delivered.append(p)
            plan = FaultPlan("t", (
                Fault(FaultKind.LINK_LOSS, "link", 0.0, 1.0,
                      magnitude=0.5),), seed=seed)
            inj = FaultInjector(eng, dep, plan, duration_s=10.0)
            inj.arm()
            eng.run(until=0.5)  # open the loss window, keep it open
            lost_pattern = []
            for _ in range(50):
                before = len(delivered)
                inj.ingest(pkt())
                lost_pattern.append(len(delivered) == before)
            return lost_pattern, inj.packets_lost

        a_pattern, a_lost = run(3)
        b_pattern, b_lost = run(3)
        c_pattern, _ = run(4)
        assert a_pattern == b_pattern and a_lost == b_lost
        assert a_lost > 0
        assert a_pattern != c_pattern  # a different seed samples differently

    def test_link_latency_delays_not_drops(self):
        eng = Engine()
        delivered = []
        dep = fake_deployment()
        dep.ingest = lambda p: delivered.append(eng.now)
        plan = FaultPlan("t", (
            Fault(FaultKind.LINK_LATENCY, "link", 0.0, 1.0,
                  magnitude=0.25),))
        inj = FaultInjector(eng, dep, plan, duration_s=10.0)
        inj.arm()
        eng.run(until=0.5)  # open the latency window, keep it open
        inj.ingest(pkt())
        eng.run()
        assert inj.packets_delayed == 1 and inj.packets_lost == 0
        assert delivered and delivered[0] >= 0.75

    def test_availability_reference_plan(self):
        eng = Engine()
        dep = fake_deployment()
        inj = FaultInjector(eng, dep, named_plan("crash-recover"),
                            duration_s=100.0)
        inj.arm()
        # components: 2 sensors + 1 analyzer + monitor + balancer + link = 6
        # downtime: sensor 30s + analyzer 15s + monitor 20s = 65s of 600s
        assert inj.availability() == pytest.approx(1.0 - 65.0 / 600.0)

    def test_double_arm_rejected(self):
        eng = Engine()
        inj = FaultInjector(eng, fake_deployment(), named_plan("none"),
                            duration_s=10.0)
        inj.arm()
        with pytest.raises(ConfigurationError):
            inj.arm()


# ----------------------------------------------------------------------
# real component hooks
# ----------------------------------------------------------------------
class TestAnalyzerHooks:
    def _det(self, t, cat="portscan"):
        return Detection(time=t, sensor="s0", category=cat,
                         src=IPv4Address("198.18.0.1"),
                         dst=IPv4Address("10.0.0.5"),
                         severity=Severity.MEDIUM, score=1.0)

    def test_stall_queues_and_resume_drains(self):
        eng = Engine()
        alerts = []
        an = Analyzer(eng, "a0", analysis_delay_s=0.0)
        an.set_sink(alerts.append)
        an.stall()
        an.receive(self._det(1.0))
        assert alerts == [] and an.stalled_detections == 1
        an.resume()
        assert len(alerts) == 1
        assert alerts[0].time == pytest.approx(1.0)  # detection time kept

    def test_stall_queue_sheds_at_limit(self):
        eng = Engine()
        an = Analyzer(eng, "a0")
        an.STALL_QUEUE_LIMIT = 3
        an.stall()
        for i in range(5):
            an.receive(self._det(float(i), cat=f"c{i}"))
        assert an.stalled_detections == 3
        assert an.shed_detections == 2

    def test_crash_drops_and_loses_stall_backlog(self):
        eng = Engine()
        an = Analyzer(eng, "a0")
        an.stall()
        an.receive(self._det(1.0))
        an.force_fail()
        assert an.dropped_down == 1  # queued detection lost with the crash
        an.receive(self._det(2.0))
        assert an.dropped_down == 2
        an.force_restore()
        an.resume()
        an.receive(self._det(3.0))
        assert an.alerts_emitted == 0  # no sink attached; just no raise


class TestMonitorHooks:
    def _alert(self, t=1.0):
        from repro.ids.alert import Alert

        return Alert(time=t, analyzer="a0", category="portscan",
                     src=IPv4Address("198.18.0.1"),
                     dst=IPv4Address("10.0.0.5"),
                     severity=Severity.CRITICAL, confidence=1.0)

    def test_partition_defers_notifications_until_heal(self):
        eng = Engine()
        mon = Monitor(eng, "m0", notify_delay_s=0.0)
        mon.partition()
        mon.receive(self._alert())
        eng.run()
        assert mon.notifications == []
        assert mon.deferred_notifications == 1
        eng.schedule_at(5.0, mon.heal)
        eng.run()
        assert len(mon.notifications) == 1
        assert mon.notifications[0].time == pytest.approx(5.0)

    def test_partition_suppresses_responses(self):
        from repro.ids.policy import ResponseAction, SecurityPolicy

        eng = Engine()
        fired = []
        policy = SecurityPolicy.default()
        mon = Monitor(eng, "m0", policy=policy)
        mon.set_responder(lambda action, alert: fired.append(action))
        mon.partition()
        mon.receive(self._alert())
        actions = policy.actions_for(self._alert())
        expected = sum(1 for a in actions
                       if a not in (ResponseAction.NOTIFY,
                                    ResponseAction.LOG_ONLY))
        assert fired == []
        assert mon.suppressed_responses == expected


# ----------------------------------------------------------------------
# Hypothesis: analytic availability properties
# ----------------------------------------------------------------------
_TARGETS = {
    FaultKind.CRASH: ("sensor:0", "sensor:*", "analyzer:0", "balancer"),
    FaultKind.OVERLOAD: ("sensor:*", "sensor:1"),
    FaultKind.STALL: ("analyzer:*",),
    FaultKind.PARTITION: ("monitor",),
    FaultKind.LINK_LOSS: ("link",),
    FaultKind.LINK_LATENCY: ("link",),
}


@st.composite
def faults(draw):
    kind = draw(st.sampled_from(list(FaultKind)))
    target = draw(st.sampled_from(_TARGETS[kind]))
    start = draw(st.floats(0.0, 1.0, allow_nan=False))
    duration = draw(st.floats(0.0, 1.0, allow_nan=False))
    if kind is FaultKind.OVERLOAD:
        magnitude = draw(st.floats(1.0, 50.0, allow_nan=False))
    elif kind is FaultKind.LINK_LOSS:
        magnitude = draw(st.floats(0.0, 1.0, allow_nan=False))
    else:
        magnitude = draw(st.floats(0.0, 10.0, allow_nan=False))
    return Fault(kind, target, start, duration, magnitude)


@st.composite
def plans(draw):
    return FaultPlan("prop", tuple(draw(st.lists(faults(), max_size=6))),
                     seed=draw(st.integers(0, 2**16)))


def _availability(plan):
    eng = Engine()
    inj = FaultInjector(eng, fake_deployment(), plan, duration_s=50.0)
    inj.arm()
    return inj.availability()


@settings(max_examples=60, deadline=None)
@given(plan=plans(), severity=st.floats(0.0, 3.0, allow_nan=False))
def test_availability_in_unit_interval(plan, severity):
    value = _availability(plan.scaled(severity))
    assert 0.0 <= value <= 1.0
    assert math.isfinite(value)


@settings(max_examples=60, deadline=None)
@given(plan=plans(),
       s1=st.floats(0.0, 2.0, allow_nan=False),
       s2=st.floats(0.0, 2.0, allow_nan=False))
def test_degradation_monotone_in_severity(plan, s1, s2):
    lo, hi = sorted((s1, s2))
    # more severe faults can never *increase* availability
    assert _availability(plan.scaled(hi)) <= _availability(
        plan.scaled(lo)) + 1e-12
