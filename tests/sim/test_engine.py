"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(2.0, seen.append, "late")
        eng.schedule(1.0, seen.append, "early")
        eng.run()
        assert seen == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        times = []
        eng.schedule(1.5, lambda: times.append(eng.now))
        eng.schedule(3.25, lambda: times.append(eng.now))
        eng.run()
        assert times == [1.5, 3.25]

    def test_ties_broken_by_priority_then_insertion(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, "a", priority=5)
        eng.schedule(1.0, seen.append, "b", priority=1)
        eng.schedule(1.0, seen.append, "c", priority=1)
        eng.run()
        assert seen == ["b", "c", "a"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ScheduleError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ScheduleError):
            eng.schedule_at(9.0, lambda: None)

    def test_non_callable_rejected(self):
        with pytest.raises(ScheduleError):
            Engine().schedule(1.0, "not callable")  # type: ignore[arg-type]

    def test_schedule_from_callback(self):
        eng = Engine()
        seen = []
        def first():
            seen.append(("first", eng.now))
            eng.schedule(2.0, lambda: seen.append(("second", eng.now)))
        eng.schedule(1.0, first)
        eng.run()
        assert seen == [("first", 1.0), ("second", 3.0)]

    def test_zero_delay_runs_at_same_time_after_current(self):
        eng = Engine()
        seen = []
        def a():
            eng.schedule(0.0, seen.append, "b")
            seen.append("a")
        eng.schedule(1.0, a)
        eng.run()
        assert seen == ["a", "b"]
        assert eng.now == 1.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        eng = Engine()
        seen = []
        h = eng.schedule(1.0, seen.append, "x")
        h.cancel()
        eng.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_cancel_from_earlier_event(self):
        eng = Engine()
        seen = []
        h = eng.schedule(2.0, seen.append, "victim")
        eng.schedule(1.0, h.cancel)
        eng.run()
        assert seen == []


class TestRunControl:
    def test_run_until_advances_clock_exactly(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        assert eng.run(until=5.0) == 5.0
        assert eng.now == 5.0

    def test_run_until_leaves_later_events_pending(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, "in")
        eng.schedule(10.0, seen.append, "out")
        eng.run(until=5.0)
        assert seen == ["in"]
        eng.run()
        assert seen == ["in", "out"]

    def test_max_events(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(float(i + 1), seen.append, i)
        eng.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_from_callback(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, seen.append, "a")
        eng.schedule(2.0, eng.stop)
        eng.schedule(3.0, seen.append, "b")
        eng.run()
        assert seen == ["a"]

    def test_run_not_reentrant(self):
        eng = Engine()
        def reenter():
            with pytest.raises(SimulationError):
                eng.run()
        eng.schedule(1.0, reenter)
        eng.run()

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_executed_counter(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.events_executed == 4


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        eng = Engine()
        ticks = []
        eng.every(1.0, lambda: ticks.append(eng.now))
        eng.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_every_with_start_delay(self):
        eng = Engine()
        ticks = []
        eng.every(2.0, lambda: ticks.append(eng.now), start_delay=0.5)
        eng.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_every_cancel_stops_series(self):
        eng = Engine()
        ticks = []
        h = eng.every(1.0, lambda: ticks.append(eng.now))
        eng.schedule(2.5, h.cancel)
        eng.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_every_rejects_nonpositive_interval(self):
        with pytest.raises(ScheduleError):
            Engine().every(0.0, lambda: None)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_execution_times_nondecreasing(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_cancelled_subset_never_fires(self, items):
        eng = Engine()
        fired = []
        handles = []
        for i, (d, cancel) in enumerate(items):
            handles.append((eng.schedule(d, fired.append, i), cancel))
        for h, cancel in handles:
            if cancel:
                h.cancel()
        eng.run()
        expected = {i for i, (_, c) in enumerate(items) if not c}
        assert set(fired) == expected
