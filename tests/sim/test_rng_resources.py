"""Tests for RNG registry and host CPU resource model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.resources import HostCpu
from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(123).stream("x")
        b = RngRegistry(123).stream("x")
        assert list(a.random(8)) == list(b.random(8))

    def test_different_names_differ(self):
        reg = RngRegistry(123)
        a = reg.stream("x").random(8)
        b = reg.stream("y").random(8)
        assert list(a) != list(b)

    def test_independent_of_request_order(self):
        r1 = RngRegistry(5)
        r2 = RngRegistry(5)
        r1.stream("a")  # request 'a' first in r1 only
        x1 = r1.stream("b").random(4)
        x2 = r2.stream("b").random(4)
        assert list(x1) == list(x2)

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")

    def test_fork_changes_streams(self):
        reg = RngRegistry(9)
        f = reg.fork(1)
        assert f.seed != reg.seed
        assert list(reg.stream("z").random(4)) != list(f.stream("z").random(4))

    def test_fork_deterministic(self):
        assert RngRegistry(9).fork(3).seed == RngRegistry(9).fork(3).seed


class TestHostCpu:
    def test_initial_idle(self):
        cpu = HostCpu(Engine())
        assert cpu.utilization == 0.0
        assert cpu.demand == 0.0
        assert not cpu.saturated

    def test_add_and_release_load(self):
        cpu = HostCpu(Engine())
        h = cpu.add_load("ids", 0.05)
        assert cpu.utilization == pytest.approx(0.05)
        h.release()
        assert cpu.utilization == 0.0

    def test_release_idempotent(self):
        cpu = HostCpu(Engine())
        h = cpu.add_load("ids", 0.25)
        h.release()
        h.release()
        assert cpu.demand == 0.0

    def test_saturation(self):
        cpu = HostCpu(Engine())
        cpu.add_load("a", 0.7)
        cpu.add_load("b", 0.6)
        assert cpu.demand == pytest.approx(1.3)
        assert cpu.utilization == 1.0
        assert cpu.saturated

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            HostCpu(Engine()).add_load("bad", -0.1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            HostCpu(Engine(), capacity_ops=0)

    def test_service_time_scales_with_residual(self):
        eng = Engine()
        cpu = HostCpu(eng, capacity_ops=1000.0)
        base = cpu.service_time(100.0)
        assert base == pytest.approx(0.1)
        cpu.add_load("audit", 0.5)
        assert cpu.service_time(100.0) == pytest.approx(0.2)

    def test_service_time_floor_when_saturated(self):
        cpu = HostCpu(Engine(), capacity_ops=1000.0)
        cpu.add_load("hog", 2.0)
        # residual floors at 1% of capacity
        assert cpu.service_time(100.0) == pytest.approx(100.0 / 10.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            HostCpu(Engine()).service_time(-1.0)

    def test_average_utilization_time_weighted(self):
        eng = Engine()
        cpu = HostCpu(eng)
        eng.schedule(0.0, cpu.add_load, "ids", 0.2)
        eng.run(until=10.0)
        # load 0.2 held over entire window
        assert cpu.average_utilization(until=10.0) == pytest.approx(0.2, abs=1e-9)

    def test_consumer_average_attribution(self):
        eng = Engine()
        cpu = HostCpu(eng)
        handle = {}
        eng.schedule(0.0, lambda: handle.setdefault("h", cpu.add_load("ids", 0.4)))
        eng.schedule(5.0, lambda: handle["h"].release())
        eng.run(until=10.0)
        # 0.4 for 5 s out of 10 s -> 0.2
        assert cpu.consumer_average("ids", until=10.0) == pytest.approx(0.2, abs=1e-9)
        assert cpu.consumer_average("other") == 0.0
