"""Tests for the online statistics accumulators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import Counter, RateMeter, Reservoir, Series, TimeWeighted, Welford

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestWelford:
    def test_empty_is_nan(self):
        w = Welford()
        assert math.isnan(w.mean)
        assert math.isnan(w.variance)

    def test_single_value(self):
        w = Welford()
        w.add(5.0)
        assert w.mean == 5.0
        assert math.isnan(w.variance)
        assert w.min == w.max == 5.0

    def test_matches_numpy(self):
        xs = [1.0, 2.5, -3.0, 7.25, 0.125]
        w = Welford()
        w.extend(xs)
        assert w.mean == pytest.approx(np.mean(xs))
        assert w.variance == pytest.approx(np.var(xs, ddof=1))
        assert w.stdev == pytest.approx(np.std(xs, ddof=1))

    @given(st.lists(finite, min_size=2, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_numpy(self, xs):
        w = Welford()
        w.extend(xs)
        assert w.n == len(xs)
        assert w.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        assert w.variance == pytest.approx(float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-4)
        assert w.min == min(xs)
        assert w.max == max(xs)

    @given(st.lists(finite, min_size=1, max_size=50),
           st.lists(finite, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        wa, wb, wc = Welford(), Welford(), Welford()
        wa.extend(a)
        wb.extend(b)
        wc.extend(a + b)
        merged = wa.merge(wb)
        assert merged.n == wc.n
        assert merged.mean == pytest.approx(wc.mean, rel=1e-9, abs=1e-6)
        if merged.n >= 2:
            assert merged.variance == pytest.approx(wc.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        w = Welford()
        w.extend([1.0, 2.0])
        assert w.merge(Welford()).mean == pytest.approx(1.5)
        assert Welford().merge(w).mean == pytest.approx(1.5)


class TestCounter:
    def test_basic(self):
        c = Counter()
        c.inc("a")
        c.inc("a", 2)
        c.inc("b")
        assert c["a"] == 3
        assert c.get("b") == 1
        assert c.get("missing") == 0
        assert c.total == 4
        assert c.as_dict() == {"a": 3, "b": 1}


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(t0=0.0, value=2.0)
        assert tw.average(until=10.0) == pytest.approx(2.0)

    def test_step_signal(self):
        tw = TimeWeighted(t0=0.0, value=0.0)
        tw.update(5.0, 1.0)   # 0 for 5s, then 1
        assert tw.average(until=10.0) == pytest.approx(0.5)
        assert tw.maximum == 1.0
        assert tw.current == 1.0

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_until_before_last_update_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(until=4.0)

    @given(st.lists(st.tuples(st.floats(min_value=0.001, max_value=10, allow_nan=False),
                              st.floats(min_value=-100, max_value=100, allow_nan=False)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_average_within_value_bounds(self, steps):
        tw = TimeWeighted(t0=0.0, value=steps[0][1])
        t = 0.0
        values = [steps[0][1]]
        for dt, v in steps:
            t += dt
            tw.update(t, v)
            values.append(v)
        avg = tw.average(until=t + 1.0)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9


class TestReservoir:
    def test_small_sample_exact(self):
        r = Reservoir(capacity=100)
        for x in range(10):
            r.add(float(x))
        assert r.quantile(0.0) == 0.0
        assert r.quantile(1.0) == 9.0
        assert r.quantile(0.5) == pytest.approx(4.5)

    def test_capacity_bounds_memory(self):
        r = Reservoir(capacity=32, rng=np.random.default_rng(1))
        for x in range(10_000):
            r.add(float(x))
        assert r.n == 10_000
        assert len(r._sample) == 32

    def test_quantile_approximation_uniform(self):
        rng = np.random.default_rng(7)
        r = Reservoir(capacity=2048, rng=rng)
        for x in rng.random(20_000):
            r.add(float(x))
        q50, q90 = r.quantiles([0.5, 0.9])
        assert q50 == pytest.approx(0.5, abs=0.05)
        assert q90 == pytest.approx(0.9, abs=0.05)

    def test_empty_quantile_nan(self):
        assert math.isnan(Reservoir().quantile(0.5))
        assert all(math.isnan(v) for v in Reservoir().quantiles([0.1, 0.9]))

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


class TestRateMeter:
    def test_constant_rate(self):
        m = RateMeter(bin_width=1.0)
        for i in range(10):
            m.add(float(i), 5)
        assert m.rate(t=10.0, window=10.0) == pytest.approx(5.0)

    def test_peak_bin_rate(self):
        m = RateMeter(bin_width=0.5)
        m.add(0.1, 1)
        m.add(1.1, 10)
        assert m.peak_bin_rate == 20.0

    def test_out_of_order_rejected(self):
        m = RateMeter(bin_width=1.0)
        m.add(5.0)
        with pytest.raises(ValueError):
            m.add(2.0)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            RateMeter(bin_width=0)
        m = RateMeter()
        with pytest.raises(ValueError):
            m.rate(1.0, window=0)


class TestSeries:
    def test_append_and_export(self):
        s = Series("lat")
        s.add(0.0, 1.0)
        s.add(1.0, 2.0)
        assert len(s) == 2
        assert list(s.times) == [0.0, 1.0]
        assert list(s.values) == [1.0, 2.0]
        assert s.last() == (1.0, 2.0)

    def test_time_order_enforced(self):
        s = Series()
        s.add(5.0, 0.0)
        with pytest.raises(ValueError):
            s.add(4.0, 0.0)

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            Series().last()
