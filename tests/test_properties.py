"""Cross-cutting property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import default_catalog
from repro.ids.anomaly import AnomalyEngine
from repro.net.address import IPv4Address
from repro.net.link import Link
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.tcp import SessionTable
from repro.net.trace import Trace
from repro.sim.engine import Engine

A, B = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")


class TestLinkProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=0.5, allow_nan=False),
        st.integers(min_value=0, max_value=1400)), min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_fifo_delivery_order(self, arrivals):
        """Delivered packets leave the link in the order they entered."""
        eng = Engine()
        order_in, order_out = [], []
        link = Link(eng, bandwidth_bps=2e5, queue_bytes=8000,
                    sink=lambda p: order_out.append(p.pid))
        arrivals.sort(key=lambda a: a[0])

        def send(n):
            pkt = Packet(src=A, dst=B, payload_len=n)
            if link.send(pkt):
                order_in.append(pkt.pid)

        for t, n in arrivals:
            eng.schedule_at(t, send, n)
        eng.run()
        assert order_out == order_in

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=100, max_value=1400))
    @settings(max_examples=30, deadline=None)
    def test_delivery_times_nondecreasing(self, n, size):
        eng = Engine()
        times = []
        link = Link(eng, bandwidth_bps=1e6,
                    sink=lambda p: times.append(eng.now))
        for _ in range(n):
            link.send(Packet(src=A, dst=B, payload_len=size))
        eng.run()
        assert times == sorted(times)


class TestSessionTableProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1024, max_value=1100),
                              st.booleans()),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_size_never_exceeds_cap(self, events, cap):
        table = SessionTable(max_sessions=cap)
        for i, (sport, is_syn) in enumerate(events):
            flags = TcpFlags.SYN if is_syn else TcpFlags.ACK
            table.feed(Packet(src=A, dst=B, sport=sport, dport=80,
                              proto=Protocol.TCP, flags=flags,
                              seq=i), float(i) * 0.01)
            assert len(table) <= cap


class TestTraceProperties:
    @given(st.lists(st.lists(st.floats(min_value=0, max_value=100,
                                       allow_nan=False),
                             max_size=20),
                    min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_count_and_order(self, groups):
        traces = []
        for times in groups:
            trace = Trace()
            for t in sorted(times):
                trace.append(t, Packet(src=A, dst=B))
            traces.append(trace)
        merged = Trace.merge(traces)
        assert len(merged) == sum(len(t) for t in traces)
        stamps = [r.time for r in merged]
        assert stamps == sorted(stamps)


class TestAnomalyProperties:
    @given(st.floats(min_value=0, max_value=1, allow_nan=False),
           st.floats(min_value=0, max_value=1, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_threshold_monotone_in_sensitivity(self, s1, s2):
        e1, e2 = AnomalyEngine(sensitivity=s1), AnomalyEngine(sensitivity=s2)
        if s1 <= s2:
            assert e1.threshold >= e2.threshold
        else:
            assert e1.threshold <= e2.threshold


class TestCatalogProperties:
    def test_all_table_metrics_have_anchors(self):
        for metric in default_catalog().table_metrics():
            assert metric.anchors is not None, metric.name

    def test_names_are_unique_and_titlecased(self):
        names = default_catalog().names()
        assert len(names) == len(set(names))
        for name in names:
            assert name[0].isupper() or name[0].isdigit()
