"""End-to-end test of the human-dimension extension in the full runner."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.extensions import extend_catalog, human_factors_requirement
from repro.core.profiles import realtime_cluster_requirements
from repro.eval.runner import EvaluationOptions, evaluate_field
from repro.products import ManhuntProduct, NidProduct

QUICK = EvaluationOptions(
    scenario_duration_s=40.0, train_duration_s=15.0, n_hosts=4,
    throughput_rates_pps=(500, 4000), throughput_probe_s=0.4,
    include_dos=False)


@pytest.fixture(scope="module")
def extended_field():
    profile = realtime_cluster_requirements()
    profile.add(human_factors_requirement(weight=4.0))
    catalog = extend_catalog(default_catalog())
    return evaluate_field([NidProduct, ManhuntProduct], profile, QUICK,
                          catalog=catalog)


class TestHumanFactorsInRunner:
    def test_extension_metrics_scored(self, extended_field):
        card = extended_field.scorecard
        for product in card.products:
            assert card.missing(product) == []  # all 57 metrics
            for name in ("Operator Workload", "Alert Comprehensibility",
                         "Operator Trust Calibration",
                         "Operator Learnability",
                         "Console Interface Quality"):
                entry = card.get(product, name)
                assert entry is not None
                assert 0 <= entry.score <= 4
                assert entry.evidence

    def test_weights_include_extension(self, extended_field):
        assert extended_field.weights["Operator Workload"] == 4.0

    def test_trust_calibration_tracks_false_alarms(self, extended_field):
        card = extended_field.scorecard
        # the anomaly product raised false alarms; the signature product
        # raised none: trust calibration must not rank manhunt above nid
        assert card.score("sim-nid", "Operator Trust Calibration") >= \
            card.score("sim-manhunt", "Operator Trust Calibration")

    def test_default_catalog_unaffected(self):
        """Without the extended catalog the runner never emits extension
        metrics (no UnknownMetricError, no stray entries)."""
        field = evaluate_field([NidProduct],
                               realtime_cluster_requirements(), QUICK)
        assert "Operator Workload" not in field.scorecard.catalog
        assert field.scorecard.missing("sim-nid") == []
