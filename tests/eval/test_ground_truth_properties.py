"""Hypothesis property tests for the Figure-3 ground-truth algebra.

These pin down the invariants of :mod:`repro.eval.ground_truth` over
arbitrary alert streams and flow mixes, not just the hand-picked cases in
``test_ground_truth.py``:

* ``detected`` and ``missed`` partition ``actual`` (disjoint union);
* ``0 <= FPR <= 1`` and ``0 <= FNR <= 1`` whenever ``|T| > 0``;
* ``false_alarms >= 0`` and never exceeds the number of distinct
  ``(category, source)`` claims offered;
* ``count_transactions`` is monotone under adding benign flows, and
  unchanged by extra packets on an already-counted flow.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import PortScan
from repro.attacks.base import AttackKind, AttackRecord
from repro.eval.ground_truth import count_transactions, score_alerts
from repro.ids.alert import Alert, Severity
from repro.net.address import IPv4Address, Subnet
from repro.net.packet import Packet, Protocol
from repro.net.trace import Trace
from repro.traffic import ClusterProfile, ScenarioBuilder
from repro.traffic.mixer import Scenario

ATTACKER = IPv4Address("198.18.0.1")
NODES = list(Subnet("10.0.0.0/24").hosts(4))


def build_scenario(n_attacks: int, seed: int) -> Scenario:
    builder = ScenarioBuilder("prop", duration_s=15.0, seed=seed)
    builder.add_background(ClusterProfile(NODES))
    for i in range(n_attacks):
        builder.add_attack(1.0 + 3.0 * i,
                           PortScan(ATTACKER, NODES[i % len(NODES)],
                                    ports=range(1, 40)))
    return builder.build()


# one scenario per attack count is plenty: the properties quantify over
# the *alert stream*, and rebuilding scenarios per example is slow
SCENARIOS = {n: build_scenario(n, seed=3) for n in range(4)}


@st.composite
def alert_streams(draw):
    """A scenario plus an arbitrary mix of true/benign/bogus alerts."""
    scenario = SCENARIOS[draw(st.integers(0, 3))]
    ids = sorted(scenario.attack_ids)
    truths = st.sampled_from(ids) if ids else st.none()
    alerts = draw(st.lists(st.builds(
        Alert,
        time=st.floats(0.0, 15.0, allow_nan=False),
        analyzer=st.just("prop"),
        category=st.sampled_from(["portscan", "flood", "anomaly"]),
        src=st.sampled_from([ATTACKER] + NODES),
        dst=st.sampled_from(NODES),
        severity=st.sampled_from(list(Severity)),
        confidence=st.floats(0.0, 1.0, allow_nan=False),
        truth_attack_id=st.one_of(
            st.none(),
            truths,
            st.just("no-such-attack"),  # stale/bogus side-channel label
        ),
    ), max_size=25))
    return scenario, alerts


@given(alert_streams())
@settings(max_examples=60, deadline=None)
def test_detected_and_missed_partition_actual(stream):
    scenario, alerts = stream
    res = score_alerts("prop", scenario, alerts)
    assert res.detected | res.missed == res.actual
    assert res.detected & res.missed == set()
    assert res.detected <= res.actual
    assert res.actual == scenario.attack_ids


@given(alert_streams())
@settings(max_examples=60, deadline=None)
def test_error_ratios_bounded(stream):
    scenario, alerts = stream
    res = score_alerts("prop", scenario, alerts)
    assert res.transactions > 0
    assert 0.0 <= res.false_positive_ratio <= 1.0
    assert 0.0 <= res.false_negative_ratio <= 1.0
    assert 0.0 <= res.detection_ratio <= 1.0


@given(alert_streams())
@settings(max_examples=60, deadline=None)
def test_false_alarms_bounded_by_distinct_claims(stream):
    scenario, alerts = stream
    res = score_alerts("prop", scenario, alerts)
    assert res.false_alarms >= 0
    distinct_claims = {(a.category, a.src.value) for a in alerts}
    assert res.false_alarms <= len(distinct_claims)
    assert res.alerts_total == len(alerts)


@given(alert_streams())
@settings(max_examples=40, deadline=None)
def test_detection_delay_only_for_detected(stream):
    scenario, alerts = stream
    res = score_alerts("prop", scenario, alerts)
    assert set(res.detection_delay) == res.detected


# ----------------------------------------------------------------------
# count_transactions monotonicity
# ----------------------------------------------------------------------
flow_specs = st.tuples(st.integers(0, 3), st.integers(0, 3),
                       st.integers(1024, 1030), st.integers(20, 25))


def benign_scenario(specs) -> Scenario:
    """A scenario whose trace is exactly one packet per spec, all benign."""
    trace = Trace("prop")
    for t, (si, di, sport, dport) in enumerate(specs):
        trace.append(float(t), Packet(NODES[si], NODES[di], sport=sport,
                                      dport=dport, proto=Protocol.TCP,
                                      payload_len=64))
    return Scenario(name="prop", trace=trace, attacks=[],
                    duration_s=float(len(specs) + 1), seed=0)


@given(st.lists(flow_specs, max_size=12), st.lists(flow_specs, max_size=6))
@settings(max_examples=80, deadline=None)
def test_count_transactions_monotone_under_added_benign_flows(base, extra):
    fewer = benign_scenario(base)
    more = benign_scenario(base + extra)
    assert count_transactions(more) >= count_transactions(fewer)
    assert count_transactions(more) <= count_transactions(fewer) + len(extra)


@given(st.lists(flow_specs, min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_repeat_and_reverse_packets_do_not_add_transactions(specs):
    # duplicating every flow and adding its reverse direction must not
    # create new transactions: FlowKey is canonical and bidirectional
    reversed_specs = [(di, si, dport, sport)
                      for (si, di, sport, dport) in specs]
    base = benign_scenario(specs)
    doubled = benign_scenario(specs + specs + reversed_specs)
    assert count_transactions(doubled) == count_transactions(base)


@given(st.lists(flow_specs, max_size=8), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_attacks_each_count_as_one_transaction(specs, n_attacks):
    base = benign_scenario(specs)
    attacks = [AttackRecord(attack_id=f"atk-{i}", kind=AttackKind.PROBE,
                            start=0.0, end=1.0, packets=5)
               for i in range(n_attacks)]
    with_attacks = Scenario(name="prop", trace=base.trace, attacks=attacks,
                            duration_s=base.duration_s, seed=0)
    assert (count_transactions(with_attacks) ==
            count_transactions(base) + n_attacks)
