"""Tests for scenario factories and the two site profiles in evaluation."""

import pytest

from repro.eval.testbed import (
    EXTERNAL_ATTACKER,
    EvalTestbed,
    cluster_scenario,
    ecommerce_scenario,
)
from repro.net.address import Subnet
from repro.products import NidProduct


@pytest.fixture
def nodes():
    return list(Subnet("10.0.0.0/24").hosts(4))


class TestScenarioFactories:
    def test_cluster_scenario_complete(self, nodes):
        scenario = cluster_scenario(nodes, duration_s=70.0, seed=1)
        assert len(scenario.attacks) == 10
        assert scenario.trace.attack_ids() == scenario.attack_ids
        assert scenario.benign_packets > 0
        kinds = {a.kind.value for a in scenario.attacks}
        assert "dos" in kinds and "insider" in kinds

    def test_short_scenario_compresses_attack_starts(self, nodes):
        scenario = cluster_scenario(nodes, duration_s=35.0, seed=1)
        assert all(a.start <= 35.0 for a in scenario.attacks)
        assert len(scenario.attacks) == 10

    def test_no_dos_option(self, nodes):
        scenario = cluster_scenario(nodes, duration_s=70.0, seed=1,
                                    include_dos=False)
        assert all(a.kind.value != "dos" for a in scenario.attacks)
        assert len(scenario.attacks) == 8

    def test_rate_scale(self, nodes):
        lo = cluster_scenario(nodes, duration_s=20.0, seed=1,
                              include_dos=False, rate_scale=0.5)
        hi = cluster_scenario(nodes, duration_s=20.0, seed=1,
                              include_dos=False, rate_scale=2.0)
        assert hi.benign_packets > 2 * lo.benign_packets * 0.8

    def test_ecommerce_scenario(self, nodes):
        scenario = ecommerce_scenario(nodes[0], nodes, duration_s=40.0,
                                      seed=2, include_dos=False)
        assert len(scenario.attacks) == 8
        # web traffic present: port 80 benign flows
        web = [r.packet for r in scenario.trace
               if r.packet.attack_id is None and r.packet.dport == 80]
        assert web


class TestEvalTestbedProfiles:
    def test_ecommerce_profile_runs(self):
        testbed = EvalTestbed(NidProduct(), n_hosts=4, seed=1,
                              train_duration_s=10.0, profile="ecommerce")
        scenario = testbed.make_scenario(duration_s=30.0, include_dos=False)
        result = testbed.run_scenario(scenario)
        result.check_invariants()
        # web-attack signatures (CGI probe) fire on the web profile
        assert any(a.rsplit("-", 1)[0] == "cgiprobe" for a in result.detected)

    def test_attacker_address_is_external(self, nodes):
        scenario = cluster_scenario(nodes, duration_s=30.0, seed=1,
                                    include_dos=False)
        lan = Subnet("10.0.0.0/24")
        assert EXTERNAL_ATTACKER not in lan
        external_srcs = {r.packet.src for r in scenario.trace
                         if r.packet.attack_id
                         and r.packet.src not in lan}
        assert EXTERNAL_ATTACKER in external_srcs
