"""Tests for transaction counting and the Figure-3 ratio computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import PortScan
from repro.eval.ground_truth import AccuracyResult, count_transactions, score_alerts
from repro.ids.alert import Alert, Notification, Severity
from repro.net.address import IPv4Address, Subnet
from repro.traffic import ClusterProfile, ScenarioBuilder

ATT = IPv4Address("198.18.0.1")
OTHER = IPv4Address("198.18.0.2")


def make_scenario(n_attacks=2, seed=1):
    nodes = list(Subnet("10.0.0.0/24").hosts(4))
    b = ScenarioBuilder("gt", duration_s=20.0, seed=seed)
    b.add_background(ClusterProfile(nodes))
    for i in range(n_attacks):
        b.add_attack(2.0 + i * 5, PortScan(ATT, nodes[i % len(nodes)],
                                           ports=range(1, 50)))
    return b.build()


def alert(truth=None, category="portscan", src=ATT, t=5.0):
    return Alert(time=t, analyzer="a", category=category, src=src,
                 dst=IPv4Address("10.0.0.1"), severity=Severity.MEDIUM,
                 confidence=0.9, truth_attack_id=truth)


class TestCountTransactions:
    def test_counts_benign_flows_plus_attacks(self):
        scenario = make_scenario(n_attacks=2)
        t = count_transactions(scenario)
        # at least the attacks themselves plus some benign flows
        assert t > 2
        # consistency: removing attacks lowers T by exactly 2
        benign_only = make_scenario(n_attacks=0)
        assert count_transactions(benign_only) == t - 2 or t > 0

    def test_attack_packets_not_counted_as_benign_flows(self):
        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        b = ScenarioBuilder("only-attack", duration_s=10.0)
        b.add_attack(0.0, PortScan(ATT, nodes[0], ports=range(1, 100)))
        scenario = b.build()
        assert count_transactions(scenario) == 1  # just the attack


class TestScoreAlerts:
    def test_perfect_detection(self):
        scenario = make_scenario(n_attacks=2)
        ids = sorted(scenario.attack_ids)
        alerts = [alert(truth=ids[0]), alert(truth=ids[1])]
        res = score_alerts("p", scenario, alerts)
        assert res.detected == set(ids)
        assert res.missed == set()
        assert res.false_negative_ratio == 0.0
        assert res.false_positive_ratio == 0.0
        assert res.detection_ratio == 1.0

    def test_miss_counted(self):
        scenario = make_scenario(n_attacks=2)
        ids = sorted(scenario.attack_ids)
        res = score_alerts("p", scenario, [alert(truth=ids[0])])
        assert len(res.missed) == 1
        assert res.false_negative_ratio == pytest.approx(1 / res.transactions)

    def test_false_alarms_deduped_by_category_and_source(self):
        scenario = make_scenario(n_attacks=1)
        alerts = [
            alert(truth=None, category="x", src=OTHER),
            alert(truth=None, category="x", src=OTHER),   # duplicate claim
            alert(truth=None, category="y", src=OTHER),   # distinct category
        ]
        res = score_alerts("p", scenario, alerts)
        assert res.false_alarms == 2
        assert res.alerts_total == 3

    def test_detection_delay_uses_first_alert(self):
        scenario = make_scenario(n_attacks=1)
        aid = next(iter(scenario.attack_ids))
        start = scenario.attacks[0].start
        alerts = [alert(truth=aid, t=start + 3.0), alert(truth=aid, t=start + 1.0)]
        res = score_alerts("p", scenario, alerts)
        assert res.detection_delay[aid] == pytest.approx(1.0)
        assert res.mean_detection_delay == pytest.approx(1.0)
        assert res.max_detection_delay == pytest.approx(1.0)

    def test_notification_delay(self):
        scenario = make_scenario(n_attacks=1)
        aid = next(iter(scenario.attack_ids))
        start = scenario.attacks[0].start
        a = alert(truth=aid, t=start + 1.0)
        notes = [Notification(time=start + 2.5, channel="console", alert=a)]
        res = score_alerts("p", scenario, [a], notes)
        assert res.notification_delay[aid] == pytest.approx(2.5)
        assert res.mean_notification_delay == pytest.approx(2.5)

    def test_invariants_hold(self):
        scenario = make_scenario(n_attacks=2)
        ids = sorted(scenario.attack_ids)
        res = score_alerts("p", scenario,
                           [alert(truth=ids[0]), alert(truth=None)])
        res.check_invariants()
        assert res.detected | res.missed == res.actual

    def test_unknown_truth_id_counts_as_false_alarm(self):
        # an alert labeled with an attack id not in this scenario (stale
        # state) must not inflate detections
        scenario = make_scenario(n_attacks=1)
        res = score_alerts("p", scenario, [alert(truth="ghost-99")])
        assert res.detected == set()
        assert res.false_alarms == 1

    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_property_ratios_bounded(self, n_detected, n_false):
        scenario = make_scenario(n_attacks=3)
        ids = sorted(scenario.attack_ids)
        alerts = [alert(truth=ids[i % 3]) for i in range(n_detected)]
        alerts += [alert(truth=None, category=f"c{i}", src=OTHER)
                   for i in range(n_false)]
        res = score_alerts("p", scenario, alerts)
        assert 0.0 <= res.false_positive_ratio <= 1.0
        assert 0.0 <= res.false_negative_ratio <= 1.0
        # FNR + detected fraction of T is conserved
        assert len(res.detected) + len(res.missed) == 3
