"""The shared trace corpus: hit/miss semantics, result equivalence, and
the ``clear-cache`` extension.

The corpus is a pure execution optimization: a battery run with a warm
corpus must produce results equal to a cold run, which must equal a run
with no corpus at all.  Entries are content-keyed, corrupt entries are
regenerated, and deactivating the corpus falls straight through to the
generators.
"""

import os
import pickle

import pytest

from repro.eval.corpus import (
    CorpusStats,
    TraceCorpus,
    active_corpus,
    clear_corpus,
    corpus_root,
    corpus_scenario,
    corpus_stats,
    corpus_trace,
    use_corpus,
)
from repro.eval.parallel import clear_cache, last_corpus_stats
from repro.eval.runner import EvaluationOptions, evaluate_product
from repro.eval.testbed import cluster_scenario
from repro.net.address import IPv4Address
from repro.net.packet import Packet
from repro.net.trace import Trace
from repro.products import ManhuntProduct

A = IPv4Address("10.9.0.1")
B = IPv4Address("10.9.0.2")

TINY = dict(seed=0, n_hosts=3, scenario_duration_s=10.0,
            train_duration_s=4.0, throughput_rates_pps=(500, 1200),
            throughput_probe_s=0.2)


def small_trace(tag: bytes) -> Trace:
    trace = Trace("small")
    trace.append(0.0, Packet(src=A, dst=B, sport=1, dport=80, payload=tag))
    return trace


class TestTraceCorpus:
    def test_miss_store_hit(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path))
        built = []

        def build():
            built.append(1)
            return small_trace(b"x")

        first = corpus.trace("t", ("k",), build)
        assert built == [1]
        assert corpus.stats == CorpusStats(hits=0, misses=1, stores=1)
        again = corpus.trace("t", ("k",), build)
        assert built == [1]                 # in-memory hit, no rebuild
        assert again is first
        corpus._memory.clear()
        from_disk = corpus.trace("t", ("k",), build)
        assert built == [1]                 # disk hit, no rebuild
        assert [p.payload for _, p in from_disk] == [b"x"]
        assert corpus.stats.hits == 2

    def test_distinct_tokens_distinct_entries(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path))
        t1 = corpus.trace("t", (1,), lambda: small_trace(b"one"))
        t2 = corpus.trace("t", (2,), lambda: small_trace(b"two"))
        assert [p.payload for _, p in t1] != [p.payload for _, p in t2]
        assert corpus.stats.misses == 2

    def test_corrupt_entry_is_regenerated(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path))
        corpus.trace("t", ("k",), lambda: small_trace(b"good"))
        (entry,) = [n for n in os.listdir(tmp_path) if n.endswith(".rtrc")]
        with open(os.path.join(str(tmp_path), entry), "wb") as fh:
            fh.write(b"RTRCgarbage")
        corpus._memory.clear()
        rebuilt = corpus.trace("t", ("k",), lambda: small_trace(b"good"))
        assert [p.payload for _, p in rebuilt] == [b"good"]
        assert corpus.stats == CorpusStats(hits=0, misses=2, stores=2)

    def test_scenario_round_trip(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path))
        nodes = [IPv4Address(f"10.9.1.{i}") for i in range(1, 5)]

        def build():
            with use_corpus(None):    # build raw, uncached
                return cluster_scenario(nodes, duration_s=8.0, seed=3)

        cold = corpus.scenario("s", ("k",), build)
        corpus._memory.clear()
        warm = corpus.scenario("s", ("k",), build)
        assert warm.name == cold.name
        assert warm.duration_s == cold.duration_s
        assert warm.seed == cold.seed
        assert pickle.dumps(warm.attacks) == pickle.dumps(cold.attacks)
        assert len(warm.trace) == len(cold.trace)
        assert [(t, p.src.value, p.payload, p.attack_id)
                for t, p in warm.trace] == \
            [(t, p.src.value, p.payload, p.attack_id)
             for t, p in cold.trace]


class TestAmbientActivation:
    def test_use_corpus_activates_and_restores(self, tmp_path):
        assert active_corpus() is None
        with use_corpus(str(tmp_path)):
            assert active_corpus() is not None
            with use_corpus(None):       # explicit disable nests
                assert active_corpus() is None
            assert active_corpus() is not None
        assert active_corpus() is None

    def test_helpers_fall_through_when_inactive(self, tmp_path):
        built = []

        def build():
            built.append(1)
            return small_trace(b"x")

        corpus_trace("t", ("k",), build)
        corpus_trace("t", ("k",), build)
        assert built == [1, 1]           # no corpus: no memoization
        assert not os.listdir(tmp_path)

    def test_same_root_shares_one_instance(self, tmp_path):
        with use_corpus(str(tmp_path)):
            first = active_corpus()
        with use_corpus(str(tmp_path)):
            assert active_corpus() is first

    def test_corpus_stats_aggregates(self, tmp_path):
        base = corpus_stats()
        with use_corpus(str(tmp_path / "agg")):
            corpus_trace("t", ("k",), lambda: small_trace(b"x"))
        after = corpus_stats()
        assert after.misses == base.misses + 1
        assert after.stores == base.stores + 1


class TestBatteryIntegration:
    def test_corpus_root_layout(self):
        assert corpus_root(None) is None
        assert corpus_root(".repro-cache") == os.path.join(".repro-cache",
                                                           "traces")

    def test_warm_corpus_equals_cold_equals_uncached(self, tmp_path):
        cache = str(tmp_path / "cache")
        uncached = evaluate_product(ManhuntProduct,
                                    EvaluationOptions(**TINY))
        cold = evaluate_product(ManhuntProduct,
                                EvaluationOptions(**TINY, cache_dir=cache))
        assert last_corpus_stats().misses > 0
        assert last_corpus_stats().stores > 0
        # drop the result cache but keep the corpus: everything re-runs
        # against stored traces
        for name in os.listdir(cache):
            if name.endswith(".pkl"):
                os.unlink(os.path.join(cache, name))
        warm = evaluate_product(ManhuntProduct,
                                EvaluationOptions(**TINY, cache_dir=cache))
        assert last_corpus_stats().misses == 0
        assert last_corpus_stats().hits > 0
        assert cold == uncached
        assert warm == uncached

    def test_clear_cache_clears_corpus_too(self, tmp_path):
        cache = str(tmp_path / "cache")
        evaluate_product(ManhuntProduct,
                         EvaluationOptions(**TINY, cache_dir=cache))
        traces_dir = os.path.join(cache, "traces")
        assert any(n.endswith(".rtrc") for n in os.listdir(traces_dir))
        removed = clear_cache(cache)
        assert removed > 0
        assert not os.listdir(traces_dir)
        assert not [n for n in os.listdir(cache) if n.endswith(".pkl")]

    def test_clear_corpus_missing_dir(self, tmp_path):
        assert clear_corpus(str(tmp_path / "nothing")) == 0
