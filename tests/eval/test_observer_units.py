"""Unit tests for the observation->score discretizers.

The ``_step`` cutpoint mapper and the per-metric threshold tables are where
a fencepost error would silently skew every scorecard, so they get direct
boundary coverage here (the runner tests only exercise realized values).
"""

import pytest

from repro.eval.observer import _ORDINAL, _step


class TestStepMapper:
    def test_below_first_cut(self):
        assert _step(0.0, (1.0, 2.0), (4, 2, 0)) == 4

    def test_exactly_on_cut_takes_better_score(self):
        # cuts are inclusive upper bounds
        assert _step(1.0, (1.0, 2.0), (4, 2, 0)) == 4
        assert _step(2.0, (1.0, 2.0), (4, 2, 0)) == 2

    def test_beyond_last_cut(self):
        assert _step(99.0, (1.0, 2.0), (4, 2, 0)) == 0

    def test_negated_convention_for_higher_is_better(self):
        # throughput-style metrics negate the raw value so that the same
        # ascending-cut mapper yields higher scores for higher throughput
        cuts = (-32000.0, -16000.0, -8000.0, -2000.0)
        scores = (4, 3, 2, 1, 0)
        assert _step(-64000.0, cuts, scores) == 4
        assert _step(-32000.0, cuts, scores) == 4
        assert _step(-31999.0, cuts, scores) == 3
        assert _step(-100.0, cuts, scores) == 0

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1.5, 2.0, 3.0])
    def test_monotone_nonincreasing(self, value):
        cuts = (0.5, 1.0, 2.0)
        scores = (4, 3, 1, 0)
        higher = _step(value + 0.25, cuts, scores)
        assert higher <= _step(value, cuts, scores)


class TestOrdinalScales:
    def test_every_scale_is_monotone_ordered(self):
        """Each ordinal scale's declared order maps to ascending scores --
        a transposed entry would silently invert a metric."""
        expected_orders = {
            "remote_management": ["none", "limited", "full-secure"],
            "install_complexity": ["manual", "guided", "turnkey"],
            "policy_maintenance": ["per-sensor", "central-restart",
                                   "central-live"],
            "license": ["per-sensor", "per-site", "enterprise"],
            "outsourced": ["required-scans", "optional", "in-house"],
            "docs": ["poor", "fair", "good"],
            "admin_effort": ["high", "medium", "low"],
            "support": ["none", "business-hours", "24x7"],
            "training": ["none", "docs-only", "vendor-courses"],
            "adjustable_sensitivity": ["none", "coarse", "continuous"],
            "data_pool_select": ["none", "static", "runtime"],
            "multi_sensor": ["single", "several", "integrated"],
            "load_balancing": ["none", "static", "dynamic"],
            "interoperability": ["none", "limited", "standards"],
        }
        for field, order in expected_orders.items():
            scale = _ORDINAL[field]
            scores = [scale[v] for v in order]
            assert scores == sorted(scores), field
            assert len(set(scores)) == len(scores), field

    def test_scores_in_range(self):
        for field, scale in _ORDINAL.items():
            for value, score in scale.items():
                assert 0 <= score <= 4, (field, value)
