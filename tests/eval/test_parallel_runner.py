"""Serial-vs-parallel equivalence and result-cache behaviour.

The headline risk of parallelizing a deterministic simulator is silently
breaking reproducibility, so the equivalence tests here are load-bearing:
``workers=4`` must produce *bit-identical* results -- dataclass-equal
evaluations and byte-identical rendered tables -- to ``workers=1``, and a
cache hit must be indistinguishable from a fresh run.
"""

import os

import pytest

from repro.core.profiles import realtime_cluster_requirements
from repro.core.report import format_weighted_results
from repro.eval.parallel import (
    ResultCache,
    WorkUnit,
    clear_cache,
    last_cache_stats,
    plan_units,
    unit_key,
)
from repro.eval.runner import (
    EvaluationOptions,
    evaluate_field,
    evaluate_product,
)
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
)
from repro.report.figures import figure5_weighted_scores
from repro.report.tables import scorecard_table

TINY = dict(seed=0, n_hosts=3, scenario_duration_s=10.0,
            train_duration_s=4.0, throughput_rates_pps=(500, 1200),
            throughput_probe_s=0.2)

FIELD_PRODUCTS = [NidProduct, AafidProduct]


def options(**overrides) -> EvaluationOptions:
    return EvaluationOptions(**{**TINY, **overrides})


@pytest.fixture(scope="module")
def serial_field():
    return evaluate_field(FIELD_PRODUCTS, realtime_cluster_requirements(),
                          options(workers=1))


@pytest.fixture(scope="module")
def parallel_field():
    return evaluate_field(FIELD_PRODUCTS, realtime_cluster_requirements(),
                          options(workers=4))


class TestSerialParallelEquivalence:
    def test_product_evaluation_fields_identical(self):
        serial = evaluate_product(ManhuntProduct, options(workers=1))
        parallel = evaluate_product(ManhuntProduct, options(workers=4))
        assert serial.name == parallel.name
        assert serial.accuracy == parallel.accuracy
        assert serial.throughput == parallel.throughput
        assert serial.bundle == parallel.bundle
        assert serial == parallel

    def test_field_evaluations_equal(self, serial_field, parallel_field):
        assert serial_field.evaluations == parallel_field.evaluations
        assert serial_field.weights == parallel_field.weights
        assert serial_field.results == parallel_field.results
        assert serial_field.ranking() == parallel_field.ranking()

    def test_rendered_tables_byte_identical(self, serial_field,
                                            parallel_field):
        assert (scorecard_table(serial_field.scorecard) ==
                scorecard_table(parallel_field.scorecard))
        assert (format_weighted_results(serial_field.results) ==
                format_weighted_results(parallel_field.results))
        assert (figure5_weighted_scores(serial_field.results,
                                        serial_field.weights) ==
                figure5_weighted_scores(parallel_field.results,
                                        parallel_field.weights))

    def test_bundle_is_picklable(self, serial_field):
        import pickle

        for evaluation in serial_field.evaluations.values():
            clone = pickle.loads(pickle.dumps(evaluation))
            assert clone == evaluation


class TestWorkPlan:
    def test_canonical_unit_order(self):
        units = plan_units(["a", "b"], options())
        assert units == [
            WorkUnit(0, "a", "scenario"),
            WorkUnit(0, "a", "rate", 500.0),
            WorkUnit(0, "a", "rate", 1200.0),
            WorkUnit(1, "b", "scenario"),
            WorkUnit(1, "b", "rate", 500.0),
            WorkUnit(1, "b", "rate", 1200.0),
        ]

    def test_keys_unique_within_plan(self):
        opts = options()
        keys = [unit_key(u, opts) for u in plan_units(["a", "b"], opts)]
        assert len(set(keys)) == len(keys)

    def test_key_ignores_execution_knobs(self):
        unit = WorkUnit(0, "a", "scenario")
        assert (unit_key(unit, options(workers=1)) ==
                unit_key(unit, options(workers=8, cache_dir="/anywhere")))

    def test_key_tracks_measurement_options(self):
        unit = WorkUnit(0, "a", "scenario")
        assert (unit_key(unit, options()) !=
                unit_key(unit, options(scenario_duration_s=11.0)))
        assert (unit_key(unit, options()) !=
                unit_key(unit, options(seed=1)))

    def test_rate_key_reusable_across_sweep_shapes(self):
        # a probe's result does not depend on the other swept rates
        unit = WorkUnit(0, "a", "rate", 500.0)
        assert (unit_key(unit, options(throughput_rates_pps=(500, 1200))) ==
                unit_key(unit, options(throughput_rates_pps=(500, 9000))))

    def test_engine_knob_changes_every_key(self):
        # kernel A/B runs must never read each other's cached results,
        # for scenario and rate units alike
        for unit in plan_units(["a"], options()):
            assert (unit_key(unit, options(engine="indexed")) !=
                    unit_key(unit, options(engine="linear")))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, serial_field):
        cache_dir = str(tmp_path / "cache")
        opts = options(cache_dir=cache_dir)
        first = evaluate_field(FIELD_PRODUCTS,
                               realtime_cluster_requirements(), opts)
        stats = last_cache_stats()
        n_units = len(plan_units(["a", "b"], opts))
        assert (stats.hits, stats.misses, stats.stores) == (0, n_units,
                                                            n_units)

        second = evaluate_field(FIELD_PRODUCTS,
                                realtime_cluster_requirements(), opts)
        stats = last_cache_stats()
        assert (stats.hits, stats.misses, stats.stores) == (n_units, 0, 0)

        assert first.evaluations == second.evaluations
        assert first.evaluations == serial_field.evaluations
        assert (scorecard_table(second.scorecard) ==
                scorecard_table(serial_field.scorecard))

    def test_invalidation_on_option_change(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        opts = options(cache_dir=cache_dir,
                       throughput_rates_pps=(500,))
        evaluate_product(AafidProduct, opts)
        assert last_cache_stats().stores == 2  # scenario + one rate

        # a changed scenario knob misses the scenario unit again
        changed = options(cache_dir=cache_dir, throughput_rates_pps=(500,),
                          scenario_duration_s=11.0)
        evaluate_product(AafidProduct, changed)
        assert last_cache_stats().misses >= 1
        assert last_cache_stats().hits <= 1

    def test_engine_flip_is_a_cache_miss_with_identical_results(self,
                                                                tmp_path):
        cache_dir = str(tmp_path / "cache")
        indexed = evaluate_product(NidProduct, options(
            cache_dir=cache_dir, throughput_rates_pps=(500,),
            engine="indexed"))
        assert last_cache_stats().stores == 2
        linear = evaluate_product(NidProduct, options(
            cache_dir=cache_dir, throughput_rates_pps=(500,),
            engine="linear"))
        stats = last_cache_stats()
        # the flipped knob must miss everything and recompute...
        assert stats.hits == 0 and stats.stores == 2
        # ...yet the kernels are measurement-identical by construction
        assert linear == indexed

    def test_shared_cache_across_worker_counts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        evaluate_product(AafidProduct, options(cache_dir=cache_dir,
                                               workers=1))
        evaluate_product(AafidProduct, options(cache_dir=cache_dir,
                                               workers=4))
        stats = last_cache_stats()
        assert stats.misses == 0 and stats.stores == 0
        assert stats.hits == len(plan_units(["a"], options()))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        opts = options(cache_dir=cache_dir, throughput_rates_pps=(500,))
        baseline = evaluate_product(AafidProduct, opts)
        # two corruption shapes: UnpicklingError and the ValueError that
        # pickle raises on text garbage ("garbage\n")
        for junk in (b"not a pickle", b"garbage\n"):
            for name in os.listdir(cache_dir):
                if not name.endswith(".pkl"):
                    continue        # skip the trace-corpus subdirectory
                with open(os.path.join(cache_dir, name), "wb") as fh:
                    fh.write(junk)
            again = evaluate_product(AafidProduct, opts)
            assert again == baseline
            assert last_cache_stats().misses == 2

    def test_clear_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        opts = options(cache_dir=cache_dir, throughput_rates_pps=(500,))
        evaluate_product(AafidProduct, opts)
        cache = ResultCache(cache_dir)
        assert len(cache) == 2
        traces_dir = os.path.join(cache_dir, "traces")
        n_traces = len([n for n in os.listdir(traces_dir)
                        if n.endswith(".rtrc")])
        assert n_traces > 0
        # clear-cache drops the work units and the corpus traces together
        assert clear_cache(cache_dir) == 2 + n_traces
        assert len(cache) == 0
        assert not os.listdir(traces_dir)
        assert clear_cache(cache_dir) == 0

    def test_unpicklable_factory_degrades_to_inline(self):
        sensitivity = 0.7
        factory = lambda: ManhuntProduct(sensitivity=sensitivity)  # noqa: E731
        opts = options(workers=4, throughput_rates_pps=(500,))
        parallel = evaluate_product(factory, opts)
        serial = evaluate_product(factory, options(
            throughput_rates_pps=(500,)))
        assert parallel == serial


@pytest.mark.slow
class TestMultiWorkerStress:
    def test_full_field_equivalence_under_contention(self):
        """All four products, more workers than cores: equivalence must
        survive arbitrary completion interleavings."""
        factories = [NidProduct, RealSecureProduct, ManhuntProduct,
                     AafidProduct]
        serial = evaluate_field(factories, realtime_cluster_requirements(),
                                options(workers=1))
        for workers in (2, 4, 8):
            parallel = evaluate_field(factories,
                                      realtime_cluster_requirements(),
                                      options(workers=workers))
            assert parallel.evaluations == serial.evaluations
            assert (scorecard_table(parallel.scorecard) ==
                    scorecard_table(serial.scorecard))
            assert parallel.ranking() == serial.ranking()
