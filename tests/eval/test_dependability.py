"""Tests for the dependability experiment (clean vs faulted runs)."""

import math
import pickle

import pytest

from repro.eval.dependability import (
    DependabilityReport,
    FaultedRun,
    measure_dependability,
    run_scenario_under_faults,
    score_dependability,
)
from repro.eval.ground_truth import AccuracyResult
from repro.eval.latency import timeliness_from_accuracy
from repro.eval.parallel import WorkUnit, unit_key
from repro.eval.runner import EvaluationOptions, measure_scenario
from repro.eval.testbed import EvalTestbed
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
)
from repro.sim.faults import named_plan

SMALL = dict(n_hosts=3, seed=0, train_duration_s=3.0)
DURATION = 8.0


def _clean_run(product_cls):
    testbed = EvalTestbed(product_cls(), **SMALL)
    scenario = testbed.make_scenario(duration_s=DURATION)
    return testbed.run_scenario(scenario)


def _faulted_run(product_cls, plan):
    testbed = EvalTestbed(product_cls(), **SMALL)
    scenario = testbed.make_scenario(duration_s=DURATION)
    return run_scenario_under_faults(testbed, scenario, plan)


class TestEmptyPlanIdentity:
    """The no-fault acceptance gate: routing a run through the injector
    with an empty plan must be byte-identical to today's direct path."""

    @pytest.mark.parametrize("product_cls", [NidProduct, RealSecureProduct,
                                             ManhuntProduct, AafidProduct])
    def test_transcript_byte_identical(self, product_cls):
        direct = _clean_run(product_cls)
        via_injector, injector = _faulted_run(product_cls,
                                              named_plan("none"))
        assert pickle.dumps(direct) == pickle.dumps(via_injector)
        assert injector.availability() == 1.0


class TestCrashRecoverPlan:
    """The reference-plan acceptance gate: measurable degradation."""

    @pytest.fixture(scope="class")
    def report(self):
        options = EvaluationOptions(
            scenario_duration_s=DURATION, **SMALL)
        return measure_dependability(
            ManhuntProduct, options, named_plan("crash-recover"),
            severities=(0.5, 1.0))

    def test_availability_below_one(self, report):
        assert report.availability < 1.0
        assert 0.0 <= report.availability <= 1.0

    def test_nonzero_timeliness_delta(self, report):
        assert report.timeliness_delta_s != 0.0

    def test_runs_severity_ascending(self, report):
        severities = [run.severity for run in report.runs]
        assert severities == sorted(severities) == [0.5, 1.0]

    def test_degradation_counters_show_activity(self, report):
        counters = report.runs[-1].counters
        assert counters["faults_applied"] == 3
        assert counters["sensor_injected_failures"] >= 1
        # the analyzer crash window drops detections with accounting
        assert counters["analyzer_dropped_down"] > 0

    def test_scoring_produces_both_metrics(self, report):
        scores = score_dependability(report)
        assert set(scores) == {"Availability Under Faults",
                               "Graceful Degradation"}
        for score, evidence, raw in scores.values():
            assert 0 <= score <= 4
            assert "crash-recover" in evidence
            assert math.isfinite(raw)


class TestRunnerWiring:
    def test_measure_scenario_populates_dependability(self):
        options = EvaluationOptions(
            scenario_duration_s=DURATION, faults="crash-recover",
            fault_severities=(1.0,), **SMALL)
        measurement = measure_scenario(NidProduct, options)
        report = measurement.dependability
        assert isinstance(report, DependabilityReport)
        assert report.plan == "crash-recover"
        assert report.availability < 1.0

    def test_measure_scenario_default_is_none(self):
        options = EvaluationOptions(scenario_duration_s=DURATION, **SMALL)
        measurement = measure_scenario(NidProduct, options)
        assert measurement.dependability is None

    def test_scenario_cache_key_tracks_fault_plan(self):
        unit = WorkUnit(index=0, product="p", kind="scenario")
        clean = EvaluationOptions()
        faulted = EvaluationOptions(faults="crash-recover")
        assert unit_key(unit, clean) != unit_key(unit, faulted)

    def test_rate_cache_key_ignores_fault_plan(self):
        # rate probes never run faults; their cached results stay sharable
        unit = WorkUnit(index=0, product="p", kind="rate", rate_pps=500.0)
        clean = EvaluationOptions()
        faulted = EvaluationOptions(faults="crash-recover")
        assert unit_key(unit, clean) == unit_key(unit, faulted)


class TestReportAlgebra:
    def _report(self, runs, baseline_notified=1.0, baseline_delay=1.0):
        return DependabilityReport(
            product="p", plan="t", seed=0,
            baseline_detection_ratio=1.0,
            baseline_notified_ratio=baseline_notified,
            baseline_mean_report_delay_s=baseline_delay,
            runs=tuple(runs))

    def _run(self, severity, notified, delay=1.0, availability=0.9):
        return FaultedRun(severity=severity, availability=availability,
                          detection_ratio=notified, notified_ratio=notified,
                          mean_report_delay_s=delay, counters={})

    def test_empty_runs(self):
        report = self._report([])
        assert report.availability == 1.0
        assert report.degradation_slope == 0.0
        assert report.timeliness_delta_s == 0.0

    def test_slope_fits_through_origin(self):
        report = self._report([self._run(0.5, 0.9), self._run(1.0, 0.8)])
        # least squares through (0.5, 0.1), (1.0, 0.2): slope exactly 0.2
        assert report.degradation_slope == pytest.approx(0.2)

    def test_silenced_product_is_infinite_delta(self):
        report = self._report([self._run(1.0, 0.0, delay=float("nan"))])
        assert math.isinf(report.timeliness_delta_s)

    def test_never_notifying_baseline_is_zero_delta(self):
        report = self._report(
            [self._run(1.0, 0.0, delay=float("nan"))],
            baseline_notified=0.0, baseline_delay=float("nan"))
        assert report.timeliness_delta_s == 0.0


class TestTimelinessAudit:
    """Never-notified attacks must not contaminate the timeliness means."""

    def _result(self, notification_delay, missed):
        return AccuracyResult(
            product="p", transactions=10,
            actual={"a1", "a2", "a3"},
            detected={"a1", "a2", "a3"} - set(missed),
            missed=set(missed), false_alarms=0, alerts_total=3,
            notification_delay=notification_delay)

    def test_missed_attack_placeholder_excluded(self):
        # a 0.0 placeholder for a missed attack must not drag the mean down
        result = self._result({"a1": 2.0, "a2": 4.0, "a3": 0.0},
                              missed=["a3"])
        report = timeliness_from_accuracy(result)
        assert report.mean_report_delay_s == pytest.approx(3.0)
        assert report.max_report_delay_s == pytest.approx(4.0)
        assert report.attacks_reported == 2

    def test_non_finite_delay_excluded(self):
        result = self._result({"a1": 2.0, "a2": float("inf")}, missed=[])
        report = timeliness_from_accuracy(result)
        assert report.mean_report_delay_s == pytest.approx(2.0)
        assert report.attacks_reported == 1

    def test_nothing_reported_is_infinite(self):
        result = self._result({"a1": float("inf")}, missed=["a2", "a3"])
        report = timeliness_from_accuracy(result)
        assert math.isinf(report.mean_report_delay_s)
        assert report.attacks_reported == 0
