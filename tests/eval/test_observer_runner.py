"""Tests for observation->score mapping and the full evaluation runner."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.metric import MetricClass
from repro.core.profiles import (
    distributed_requirements,
    realtime_cluster_requirements,
)
from repro.core.scorecard import Scorecard
from repro.eval.observer import fill_scorecard, score_open_source
from repro.eval.runner import (
    EvaluationOptions,
    evaluate_field,
    evaluate_product,
)
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
)

QUICK = EvaluationOptions(
    scenario_duration_s=40.0,
    train_duration_s=15.0,
    n_hosts=4,
    throughput_rates_pps=(500, 4000, 32000),
    throughput_probe_s=0.4,
)


@pytest.fixture(scope="module")
def field():
    return evaluate_field(
        [NidProduct, RealSecureProduct, ManhuntProduct, AafidProduct],
        realtime_cluster_requirements(), QUICK)


class TestOpenSourceScoring:
    def test_scores_in_range_with_evidence(self):
        for product in (NidProduct(), AafidProduct()):
            scores = score_open_source(product.facts)
            assert len(scores) >= 20
            for metric, (score, evidence) in scores.items():
                assert 0 <= score <= 4, metric
                assert evidence

    def test_ordinal_facts_ordered(self):
        nid = score_open_source(NidProduct.facts)
        aafid = score_open_source(AafidProduct.facts)
        # commercial remote management beats research none
        assert nid["Distributed Management"][0] > aafid["Distributed Management"][0]
        # research cost beats commercial cost
        assert aafid["Three Year Cost of Ownership"][0] >= \
            nid["Three Year Cost of Ownership"][0]

    def test_detection_mechanism_mirror(self):
        mh = score_open_source(ManhuntProduct.facts)
        nid = score_open_source(NidProduct.facts)
        assert mh["Anomaly Based"][0] == 4 and mh["Signature Based"][0] == 0
        assert nid["Anomaly Based"][0] == 0 and nid["Signature Based"][0] == 4

    def test_scope_proportions(self):
        aafid = score_open_source(AafidProduct.facts)
        assert aafid["Host-based"][0] == 4
        assert aafid["Network-based"][0] == 0


class TestProductEvaluation:
    def test_single_product_bundle_complete(self):
        ev = evaluate_product(NidProduct, QUICK)
        assert ev.name == "sim-nid"
        assert ev.accuracy.transactions > 0
        assert ev.throughput.system_throughput_pps > 0
        assert ev.bundle.storage_bytes_per_mb >= 0
        assert ev.bundle.attack_sources

    def test_fill_scorecard_covers_catalog(self):
        ev = evaluate_product(NidProduct, QUICK)
        card = Scorecard(default_catalog())
        fill_scorecard(card, ev.bundle.deployment.facts, ev.bundle)
        missing = card.missing("sim-nid")
        assert missing == []  # every one of the 52 metrics scored


class TestFieldEvaluation:
    def test_all_products_scored_completely(self, field):
        assert len(field.scorecard.products) == 4
        for product in field.scorecard.products:
            assert field.scorecard.missing(product) == []
        for result in field.results:
            assert result.unscored_weighted == ()

    def test_realtime_ranking_shape(self, field):
        ranking = field.ranking()
        # the scalable, reactive, accurate product leads the RT profile;
        # the research host-agent prototype trails
        assert ranking[0] == "sim-manhunt"
        assert ranking[-1] == "sim-aafid"

    def test_class_scores_present(self, field):
        for result in field.results:
            for c in MetricClass:
                assert c in result.class_scores

    def test_expected_measured_contrasts(self, field):
        card = field.scorecard
        # anomaly product catches novel attacks: best FNR score
        fnr = {p: card.score(p, "Observed False Negative Ratio")
               for p in card.products}
        assert fnr["sim-manhunt"] == max(fnr.values())
        # but pays with false positives
        fpr = {p: card.score(p, "Observed False Positive Ratio")
               for p in card.products}
        assert fpr["sim-manhunt"] == min(fpr.values())
        # AAFID's C2 audit has the worst host impact
        impact = {p: card.score(p, "Operational Performance Impact")
                  for p in card.products}
        assert impact["sim-aafid"] == min(impact.values())
        # failure behaviour anchors: restart(4) > reboot(2)
        err = {p: card.score(p, "Error Reporting and Recovery")
               for p in card.products}
        assert err["sim-realsecure"] == 4
        assert err["sim-nid"] == 2

    def test_distributed_profile_shifts_weights(self, field):
        """Re-weight the same scorecard under the distributed profile --
        the paper's reusability claim -- and check FNR dominates."""
        from repro.core.scoring import weighted_scores
        from repro.core.weighting import derive_weights

        weights = derive_weights(distributed_requirements(),
                                 field.scorecard.catalog)
        results = weighted_scores(field.scorecard, weights, strict=False)
        assert len(results) == 4
        for result in results:
            assert result.unscored_weighted == ()
        # the weighting actually changed (different metrics emphasized)
        assert weights != field.weights
        totals = {r.product: r.total for r in results}
        rt_totals = {r.product: r.total for r in field.results}
        assert totals != rt_totals
        # the research prototype, blind to most of the attack corpus
        # (worst FNR), stays last under the FNR-dominated weighting
        from repro.core.scoring import rank_products
        assert rank_products(results)[-1].product == "sim-aafid"

    def test_raw_values_recorded_for_measured_metrics(self, field):
        entry = field.scorecard.get("sim-manhunt",
                                    "Observed False Negative Ratio")
        assert entry.raw_value is not None
        assert entry.evidence
