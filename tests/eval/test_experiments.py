"""Tests for the measurement experiments (throughput, latency, overhead,
accuracy sweep) and the EER locator."""

import math

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.eval.accuracy import equal_error_rate, run_accuracy, sensitivity_sweep
from repro.eval.latency import measure_induced_latency, timeliness_from_accuracy
from repro.eval.overhead import logging_level_overhead, measure_host_overhead
from repro.eval.testbed import EvalTestbed
from repro.eval.throughput import make_load_trace, measure_throughput, probe_rate
from repro.ids.host import LoggingLevel
from repro.net.address import IPv4Address
from repro.products import AafidProduct, ManhuntProduct, NidProduct

DST = IPv4Address("10.0.0.1")


class TestLoadTrace:
    def test_rate_and_duration(self):
        rng = np.random.default_rng(1)
        trace = make_load_trace(rng, 1000.0, 2.0, DST, payload_mode="http")
        assert len(trace) == 2000
        assert trace.duration <= 2.0

    def test_payload_modes(self):
        rng = np.random.default_rng(1)
        http = make_load_trace(rng, 100, 0.5, DST, payload_mode="http")
        rnd = make_load_trace(rng, 100, 0.5, DST, payload_mode="random")
        logical = make_load_trace(rng, 100, 0.5, DST, payload_mode="logical")
        assert all(r.packet.payload.startswith((b"GET", b"POST", b"HEAD"))
                   for r in http)
        assert all(r.packet.payload is not None for r in rnd)
        assert all(r.packet.payload is None and r.packet.payload_len == 400
                   for r in logical)

    def test_benign_ground_truth(self):
        rng = np.random.default_rng(1)
        trace = make_load_trace(rng, 100, 0.5, DST)
        assert trace.attack_packet_count() == 0

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(MeasurementError):
            make_load_trace(rng, 0, 1.0, DST)
        with pytest.raises(MeasurementError):
            make_load_trace(rng, 10, 1.0, DST, payload_mode="weird")


class TestThroughput:
    def test_low_rate_zero_loss(self):
        probe = probe_rate(NidProduct(), 200.0, duration_s=0.5)
        assert probe.dropped_packets == 0
        assert not probe.crashed
        assert probe.processed_packets == probe.offered_packets

    def test_overload_drops(self):
        probe = probe_rate(NidProduct(), 50_000.0, duration_s=0.5)
        assert probe.dropped_packets > 0
        assert 0 < probe.loss_ratio <= 1.0

    def test_report_shape(self):
        report = measure_throughput(
            lambda: NidProduct(), "sim-nid",
            rates_pps=(500, 4000, 32000), duration_s=0.4)
        assert report.zero_loss_pps >= 500
        assert report.system_throughput_pps > 0
        assert len(report.probes) == 3
        # probes are sorted by rate
        rates = [p.offered_pps for p in report.probes]
        assert rates == sorted(rates)

    def test_lethal_dose_observed_for_fragile_product(self):
        report = measure_throughput(
            lambda: NidProduct(), "sim-nid",
            rates_pps=(1000, 64000), duration_s=1.0)
        assert report.lethal_dose_pps == 64000

    def test_resilient_product_no_lethal_dose(self):
        report = measure_throughput(
            lambda: ManhuntProduct(), "sim-manhunt",
            rates_pps=(1000, 16000), duration_s=0.4)
        assert report.lethal_dose_pps is None

    def test_validation(self):
        with pytest.raises(MeasurementError):
            measure_throughput(lambda: NidProduct(), "x", rates_pps=())


class TestPayloadRealismEffect:
    """Lesson 1: random flood data under-loads a content-inspecting IDS."""

    def test_deep_sensor_realistic_payloads_cost_more(self):
        rate = 8000.0
        http = probe_rate(NidProduct(), rate, duration_s=0.5,
                          payload_mode="http", seed=3)
        rnd = probe_rate(NidProduct(), rate, duration_s=0.5,
                         payload_mode="random", seed=3)
        # protocol-parseable content takes the expensive parse path
        assert http.loss_ratio > rnd.loss_ratio

    def test_header_only_sensor_insensitive_to_content(self):
        # ManHunt's flow sensors barely touch payload: loss ratios match
        rate = 40000.0
        http = probe_rate(ManhuntProduct(), rate, duration_s=0.3,
                          payload_mode="http", seed=3)
        rnd = probe_rate(ManhuntProduct(), rate, duration_s=0.3,
                         payload_mode="random", seed=3)
        assert abs(http.loss_ratio - rnd.loss_ratio) < 0.05


class TestLatencyAndOverhead:
    def test_passive_product_zero_induced_latency(self):
        tb = EvalTestbed(NidProduct(), n_hosts=3, train_duration_s=0)
        report = measure_induced_latency(tb.deployment)
        assert report.induced_latency_s == pytest.approx(0.0, abs=1e-9)

    def test_inline_product_positive_latency(self):
        tb = EvalTestbed(ManhuntProduct(), n_hosts=3, train_duration_s=0)
        report = measure_induced_latency(tb.deployment)
        assert report.induced_latency_s == pytest.approx(200e-6, rel=0.1)

    def test_logging_level_overhead_bands(self):
        nominal = logging_level_overhead(LoggingLevel.NOMINAL, observe_s=5.0)
        c2 = logging_level_overhead(LoggingLevel.C2, observe_s=5.0)
        assert 0.03 <= nominal <= 0.05          # paper: 3-5 %
        assert c2 == pytest.approx(0.20, abs=0.01)  # paper: ~20 %

    def test_host_overhead_measured_on_deployment(self):
        tb = EvalTestbed(AafidProduct(), n_hosts=3, train_duration_s=0)
        report = measure_host_overhead(tb.deployment, observe_s=3.0)
        assert report.monitored_hosts == 3
        assert report.mean_host_cpu_fraction == pytest.approx(0.20, abs=0.02)
        assert report.percent == pytest.approx(20.0, abs=2.0)

    def test_no_agents_zero_overhead(self):
        tb = EvalTestbed(NidProduct(), n_hosts=3, train_duration_s=0)
        report = measure_host_overhead(tb.deployment, observe_s=1.0)
        assert report.mean_host_cpu_fraction == 0.0

    def test_timeliness_from_empty_accuracy(self):
        from repro.eval.ground_truth import AccuracyResult
        res = AccuracyResult(product="p", transactions=10, actual={"a"},
                             detected=set(), missed={"a"}, false_alarms=0,
                             alerts_total=0)
        report = timeliness_from_accuracy(res)
        assert math.isinf(report.mean_report_delay_s)
        assert report.attacks_reported == 0


class TestEqualErrorRate:
    def test_crossing_located(self):
        s = np.array([0.0, 0.5, 1.0])
        fpr = np.array([0.0, 0.1, 0.4])
        fnr = np.array([0.4, 0.1, 0.0])
        point = equal_error_rate(s, fpr, fnr)
        assert point is not None
        assert point[0] == pytest.approx(0.5)
        assert point[1] == pytest.approx(0.1)

    def test_interpolated_crossing(self):
        s = np.array([0.0, 1.0])
        fpr = np.array([0.0, 0.2])
        fnr = np.array([0.2, 0.0])
        point = equal_error_rate(s, fpr, fnr)
        assert point[0] == pytest.approx(0.5)
        assert point[1] == pytest.approx(0.1)

    def test_no_crossing(self):
        s = np.array([0.0, 1.0])
        assert equal_error_rate(s, np.array([0.0, 0.1]),
                                np.array([0.5, 0.3])) is None

    def test_single_point(self):
        assert equal_error_rate(np.array([0.5]), np.array([0.1]),
                                np.array([0.1])) is None

    def test_endpoint_equality(self):
        s = np.array([0.0, 1.0])
        point = equal_error_rate(s, np.array([0.0, 0.2]),
                                 np.array([0.5, 0.2]))
        assert point == (1.0, pytest.approx(0.2))


class TestAccuracyRuns:
    def test_run_accuracy_basic(self):
        res = run_accuracy(lambda s: NidProduct(sensitivity=s), 0.5,
                           duration_s=40.0, n_hosts=4, include_dos=False)
        assert res.transactions > 0
        assert res.detected  # signature IDS catches known attacks
        res.check_invariants()

    def test_sweep_monotone_shape(self):
        sweep = sensitivity_sweep(
            lambda s: ManhuntProduct(sensitivity=s), "mh",
            sensitivities=(0.1, 0.6, 1.0), duration_s=40.0, n_hosts=4)
        # FNR non-increasing, FPR non-decreasing across the sweep ends
        assert sweep.fnr[0] >= sweep.fnr[-1]
        assert sweep.fpr[-1] >= sweep.fpr[0]

    def test_sweep_validation(self):
        with pytest.raises(MeasurementError):
            sensitivity_sweep(lambda s: NidProduct(sensitivity=s), "x",
                              sensitivities=())


class TestBisectZeroLoss:
    def test_refines_between_brackets(self):
        from repro.eval.throughput import bisect_zero_loss, probe_rate

        rate = bisect_zero_loss(lambda: NidProduct(), lo_pps=500.0,
                                hi_pps=32_000.0, rel_tol=0.25,
                                duration_s=0.3)
        assert 500.0 <= rate < 32_000.0
        # the found rate is genuinely loss-free...
        probe = probe_rate(NidProduct(), rate, duration_s=0.3, seed=0)
        assert probe.dropped_packets == 0
        # ...and 1.5x beyond it is not
        beyond = probe_rate(NidProduct(), rate * 1.5, duration_s=0.3, seed=0)
        assert beyond.dropped_packets > 0

    def test_lossfree_upper_short_circuits(self):
        from repro.eval.throughput import bisect_zero_loss

        rate = bisect_zero_loss(lambda: ManhuntProduct(), lo_pps=500.0,
                                hi_pps=2_000.0, duration_s=0.3)
        assert rate == 2_000.0

    def test_bad_brackets(self):
        from repro.errors import MeasurementError
        from repro.eval.throughput import bisect_zero_loss

        with pytest.raises(MeasurementError):
            bisect_zero_loss(lambda: NidProduct(), lo_pps=0, hi_pps=100)
        with pytest.raises(MeasurementError):
            bisect_zero_loss(lambda: NidProduct(), lo_pps=64_000.0,
                             hi_pps=128_000.0, duration_s=0.3)
