"""Run the docstring examples shipped in the library."""

import doctest

import pytest

import repro.ids.multipattern
import repro.net.address
import repro.sim.engine
import repro.sim.process
import repro.sim.rng
import repro.traffic.mixer

MODULES = [
    repro.sim.engine,
    repro.sim.process,
    repro.sim.rng,
    repro.net.address,
    repro.ids.multipattern,
    repro.traffic.mixer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0
