"""Cross-module integration tests: determinism, failure injection,
record/replay, and end-to-end response timing."""

import numpy as np
import pytest

from repro.attacks import BufferOverflowExploit, UdpFlood
from repro.eval.testbed import EvalTestbed, cluster_scenario
from repro.net.address import IPv4Address, Subnet
from repro.net.topology import LanTestbed
from repro.net.trace import Trace
from repro.products import ManhuntProduct, NidProduct
from repro.sim.engine import Engine
from repro.traffic.profiles import ClusterProfile

ATT = IPv4Address("198.18.0.1")


class TestDeterminism:
    def _run(self, product_cls, seed=7):
        testbed = EvalTestbed(product_cls(), n_hosts=4, seed=seed,
                              train_duration_s=15.0)
        scenario = testbed.make_scenario(duration_s=40.0, include_dos=False)
        result = testbed.run_scenario(scenario)
        alerts = [(a.time, a.category, str(a.src), a.severity)
                  for a in testbed.deployment.monitor.alerts]
        return result, alerts

    @staticmethod
    def _kinds(ids):
        # attack ids carry a process-global instance counter
        # ("portscan-3"); behaviour comparison strips it
        return {aid.rsplit("-", 1)[0] for aid in ids}

    def test_same_seed_identical_run(self):
        r1, a1 = self._run(NidProduct, seed=7)
        r2, a2 = self._run(NidProduct, seed=7)
        assert a1 == a2
        assert r1.false_positive_ratio == r2.false_positive_ratio
        assert r1.false_negative_ratio == r2.false_negative_ratio
        assert self._kinds(r1.detected) == self._kinds(r2.detected)
        assert self._kinds(r1.missed) == self._kinds(r2.missed)

    def test_same_seed_identical_anomaly_run(self):
        r1, a1 = self._run(ManhuntProduct, seed=7)
        r2, a2 = self._run(ManhuntProduct, seed=7)
        assert a1 == a2

    def test_different_seed_different_scenario(self):
        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        s1 = cluster_scenario(nodes, duration_s=20.0, seed=1,
                              include_dos=False)
        nodes2 = list(Subnet("10.0.0.0/24").hosts(4))
        s2 = cluster_scenario(nodes2, duration_s=20.0, seed=2,
                              include_dos=False)
        assert [r.time for r in s1.trace] != [r.time for r in s2.trace]


class TestFailureInjection:
    def test_flood_crashes_fragile_sensor_and_creates_blind_window(self):
        """A lethal-dose flood takes the NID sensor down (cold reboot);
        an exploit during the blind window is missed, and the failure is
        only reported after recovery (the 'average' anchor)."""
        eng = Engine()
        lan = LanTestbed(eng, n_hosts=4)
        dep = NidProduct().deploy(eng, lan)
        target = lan.hosts[0].address
        rng = np.random.default_rng(5)

        # payload-bearing flood: deep inspection makes it CPU-lethal
        # (a bare SYN flood is header-only work and would not saturate)
        flood_trace, _ = UdpFlood(ATT, target, rate_pps=20_000,
                                  duration_s=1.0,
                                  payload_mode="random").generate(0.0, rng)
        exploit_trace, exploit_rec = BufferOverflowExploit(
            ATT, target).generate(3.0, rng)  # inside the 60 s reboot window

        for t, pkt in flood_trace:
            eng.schedule_at(t, dep.ingest, pkt)
        for t, pkt in exploit_trace:
            eng.schedule_at(t, dep.ingest, pkt)
        eng.run(until=10.0)

        sensor = dep.sensors[0]
        assert sensor.crashes >= 1
        assert not sensor.up                       # still rebooting
        assert sensor.dropped_down > 0             # blind window
        cats = {a.category for a in dep.monitor.alerts}
        assert "overflow-exploit" not in cats      # exploit slipped through
        assert dep.monitor.error_reports == []     # not reported yet

        eng.run(until=70.0)                        # reboot completes
        assert sensor.up
        assert any("recovered" in msg for _, msg in dep.monitor.error_reports)

    def test_restart_product_reports_failure_in_near_real_time(self):
        eng = Engine()
        lan = LanTestbed(eng, n_hosts=4)
        from repro.products import RealSecureProduct

        dep = RealSecureProduct().deploy(eng, lan)
        target = lan.hosts[0].address
        rng = np.random.default_rng(5)
        flood_trace, _ = UdpFlood(ATT, target, rate_pps=35_000,
                                  duration_s=1.0,
                                  payload_mode="random").generate(0.0, rng)
        for t, pkt in flood_trace:
            eng.schedule_at(t, dep.ingest, pkt)
        eng.run(until=10.0)
        assert dep.crash_count >= 1
        # RESTART mode: failure reported on the alert channel near the crash
        assert dep.monitor.error_reports
        report_time = dep.monitor.error_reports[0][0]
        assert report_time < 2.0
        # and all sensors are back up within seconds
        assert all(s.up for s in dep.sensors)


class TestRecordReplay:
    def test_recorded_tap_replays_to_same_detections(self):
        """Record site traffic at a SPAN tap, then replay the recording
        against a fresh deployment: same alerts (the section-4 'recorded
        traffic' workflow)."""
        # --- live run with a recorder on the tap --------------------------
        eng = Engine()
        lan = LanTestbed(eng, n_hosts=4)
        recorder = Trace.recorder(eng, "site")
        lan.add_span_tap(recorder)
        nodes = [h.address for h in lan.hosts]
        background = ClusterProfile(nodes).generate(
            10.0, np.random.default_rng(3))
        attack_trace, _ = BufferOverflowExploit(ATT, nodes[0]).generate(
            4.0, np.random.default_rng(4))
        for t, pkt in Trace.merge([background, attack_trace]):
            eng.schedule_at(t, lan.inject_from_wan, pkt)
        eng.run(until=15.0)
        assert len(recorder) > 0
        assert recorder.trace.attack_ids()  # labels survived the mirror

        # --- round-trip through the binary format -------------------------
        reloaded = Trace.from_bytes(recorder.trace.to_bytes())

        # --- replay against a product ------------------------------------
        def detect(trace):
            eng2 = Engine()
            lan2 = LanTestbed(eng2, n_hosts=4)
            dep = NidProduct().deploy(eng2, lan2)
            trace.replay(eng2, dep.ingest)
            eng2.run(until=trace.duration + 5.0)
            return {a.category for a in dep.monitor.alerts}

        assert detect(recorder.trace) == detect(reloaded)
        assert "overflow-exploit" in detect(reloaded)

    def test_recorder_stop(self):
        eng = Engine()
        rec = Trace.recorder(eng)
        from repro.net.packet import Packet

        rec(Packet(src=ATT, dst=ATT))
        rec.stop()
        rec(Packet(src=ATT, dst=ATT))
        assert len(rec) == 1


class TestEndToEndResponse:
    def test_detection_to_firewall_block_latency(self):
        """Attack -> alert -> policy -> console -> firewall, with the
        near-real-time latency the real-time profile cares about."""
        eng = Engine()
        lan = LanTestbed(eng, n_hosts=4)
        dep = NidProduct().deploy(eng, lan)
        target = lan.hosts[0].address
        trace, rec = BufferOverflowExploit(ATT, target).generate(
            1.0, np.random.default_rng(1))
        trace.replay(eng, dep.ingest, start_at=1.0)
        eng.run(until=10.0)

        fw = dep.firewall
        assert fw.is_blocked(ATT)
        block_req_time = fw.block_requests[0][0]
        # blocked within ~1 s of the attack's first packet
        assert block_req_time - rec.start < 1.0
        # response logged by the console
        assert any(r.action.value == "firewall-block"
                   for r in dep.console.responses)
