"""Tests for the four simulated products and their deployments."""

import numpy as np
import pytest

from repro.attacks import (
    BufferOverflowExploit,
    NovelExploit,
    PortScan,
    TelnetBruteForce,
)
from repro.net.address import IPv4Address
from repro.net.topology import LanTestbed
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
    all_products,
)
from repro.sim.engine import Engine
from repro.traffic.profiles import ClusterProfile

ATT = IPv4Address("198.18.0.1")


def deploy(product_cls, **kw):
    eng = Engine()
    tb = LanTestbed(eng, n_hosts=4)
    dep = product_cls(**kw).deploy(eng, tb)
    return eng, tb, dep


def train(dep, tb, eng, duration=20.0, seed=11):
    nodes = [h.address for h in tb.hosts]
    benign = ClusterProfile(nodes).generate(duration, np.random.default_rng(seed))
    dep.train_on(benign)
    dep.freeze()
    return benign


def run_attack(dep, eng, attack, seed=5, start=None):
    trace, rec = attack.generate(start if start is not None else eng.now,
                                 np.random.default_rng(seed))
    for t, pkt in trace:
        eng.schedule_at(max(t, eng.now), dep.ingest, pkt)
    eng.run()
    return rec


class TestFieldConsistency:
    def test_all_products_distinct_names(self):
        names = [p.name for p in all_products()]
        assert len(set(names)) == 4

    def test_facts_cover_detection_space(self):
        detections = {p.facts.detection for p in all_products()}
        assert {"signature", "anomaly", "hybrid"} <= detections
        scopes = {p.facts.scope for p in all_products()}
        assert {"network", "host", "both"} <= scopes

    @pytest.mark.parametrize("cls", [NidProduct, RealSecureProduct,
                                     ManhuntProduct, AafidProduct])
    def test_deploys_cleanly(self, cls):
        eng, tb, dep = deploy(cls)
        assert dep.monitor is not None
        assert dep.name.startswith("sim-")


class TestNid:
    def test_detects_known_exploit_and_blocks(self):
        eng, tb, dep = deploy(NidProduct)
        run_attack(dep, eng, BufferOverflowExploit(ATT, tb.hosts[0].address))
        assert dep.monitor.alert_count >= 1
        assert dep.firewall is not None
        assert dep.firewall.is_blocked(ATT)

    def test_misses_novel_exploit(self):
        eng, tb, dep = deploy(NidProduct)
        run_attack(dep, eng, NovelExploit(ATT, tb.hosts[0].address))
        assert dep.monitor.alert_count == 0

    def test_no_host_footprint(self):
        eng, tb, dep = deploy(NidProduct)
        assert dep.host_cpu_impact() == 0.0
        assert dep.facts.monitored_host_cpu_fraction == 0.0


class TestRealSecure:
    def test_network_and_host_visibility(self):
        eng, tb, dep = deploy(RealSecureProduct)
        run_attack(dep, eng, TelnetBruteForce(ATT, tb.hosts[1].address,
                                              attempts=80, rate_per_s=40))
        cats = {a.category for a in dep.monitor.alerts}
        assert "brute-force" in cats            # network signature
        assert "failed-login-storm" in cats     # host agent

    def test_host_agents_nominal_overhead(self):
        eng, tb, dep = deploy(RealSecureProduct)
        assert dep.host_cpu_impact() == pytest.approx(0.04)
        assert len(dep.host_agents) == len(tb.hosts)

    def test_snmp_trap_on_high_severity(self):
        eng, tb, dep = deploy(RealSecureProduct)
        run_attack(dep, eng, BufferOverflowExploit(ATT, tb.hosts[0].address))
        assert dep.snmp is not None
        assert dep.snmp.trap_count >= 1

    def test_session_consistent_balancing(self):
        eng, tb, dep = deploy(RealSecureProduct)
        assert dep.pipeline.balancer.strategy == "flow-hash"


class TestManhunt:
    def test_detects_novel_exploit_after_training(self):
        eng, tb, dep = deploy(ManhuntProduct, sensitivity=0.6)
        train(dep, tb, eng)
        run_attack(dep, eng, NovelExploit(ATT, tb.hosts[0].address))
        cats = {a.category for a in dep.monitor.alerts}
        assert any(c.startswith("anomaly-") for c in cats)

    def test_continuous_sensitivity(self):
        eng, tb, dep = deploy(ManhuntProduct)
        assert dep.set_sensitivity(0.9)
        assert all(s.detector.sensitivity == 0.9 for s in dep.sensors)

    def test_router_and_honeypot_capabilities(self):
        eng, tb, dep = deploy(ManhuntProduct)
        caps = dep.console.capabilities
        assert caps["router"] and caps["snmp"] and caps["honeypot"]
        assert not caps["firewall"]

    def test_dynamic_balancer_inline_latency(self):
        eng, tb, dep = deploy(ManhuntProduct)
        assert dep.pipeline.balancer.strategy == "dynamic"
        assert dep.inline_latency_s > 0


class TestAafid:
    def test_host_only_no_pipeline(self):
        eng, tb, dep = deploy(AafidProduct)
        assert dep.pipeline is None
        assert len(dep.host_agents) == len(tb.hosts)
        assert dep.console is None

    def test_c2_audit_overhead(self):
        eng, tb, dep = deploy(AafidProduct)
        assert dep.host_cpu_impact() == pytest.approx(0.20)
        for host in tb.hosts:
            assert host.cpu.demand == pytest.approx(0.20)

    def test_catches_brute_force_on_host(self):
        eng, tb, dep = deploy(AafidProduct)
        run_attack(dep, eng, TelnetBruteForce(ATT, tb.hosts[2].address,
                                              attempts=40, rate_per_s=40))
        cats = {a.category for a in dep.monitor.alerts}
        assert "failed-login-storm" in cats

    def test_blind_to_network_scan(self):
        eng, tb, dep = deploy(AafidProduct)
        run_attack(dep, eng, PortScan(ATT, tb.hosts[0].address,
                                      ports=range(1, 300)))
        assert dep.monitor.alert_count == 0  # no network sensing

    def test_no_sensitivity_adjustment(self):
        eng, tb, dep = deploy(AafidProduct)
        assert not dep.set_sensitivity(0.9)

    def test_no_response_capability(self):
        eng, tb, dep = deploy(AafidProduct)
        run_attack(dep, eng, TelnetBruteForce(ATT, tb.hosts[2].address,
                                              attempts=40, rate_per_s=40))
        assert dep.firewall is None and dep.router is None
