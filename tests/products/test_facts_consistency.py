"""Consistency checks between product facts and the observer's scales.

A typo in a fact string would silently crash (or skew) the open-source
scoring; these tests pin every ordinal fact of every product to the
observer's accepted vocabulary, and check cross-field coherence.
"""

import dataclasses

import pytest

from repro.eval.observer import _ORDINAL, score_open_source
from repro.products import all_products
from repro.products.base import ProductFacts

_FACT_FIELDS_WITH_SCALES = [
    "remote_management", "install_complexity", "policy_maintenance",
    "license", "outsourced", "docs", "filter_generation", "admin_effort",
    "support", "training", "adjustable_sensitivity", "data_pool_select",
    "multi_sensor", "load_balancing", "interoperability",
]


@pytest.mark.parametrize("product", all_products(), ids=lambda p: p.name)
class TestFactsVocabulary:
    def test_ordinal_fields_use_known_values(self, product):
        for field in _FACT_FIELDS_WITH_SCALES:
            value = getattr(product.facts, field)
            assert value in _ORDINAL[field], (
                f"{product.name}.{field}={value!r} not in scale "
                f"{sorted(_ORDINAL[field])}")

    def test_detection_and_scope_values(self, product):
        assert product.facts.detection in ("signature", "anomaly", "hybrid")
        assert product.facts.scope in ("network", "host", "both")

    def test_fraction_fields_bounded(self, product):
        f = product.facts
        assert 0.0 <= f.host_based_fraction <= 1.0
        assert 0.0 <= f.monitored_host_cpu_fraction <= 1.0
        assert f.network_based_fraction == pytest.approx(
            1.0 - f.host_based_fraction)

    def test_open_source_scoring_never_fails(self, product):
        scores = score_open_source(product.facts)
        assert all(0 <= s <= 4 for s, _ in scores.values())

    def test_scope_coherent_with_fractions(self, product):
        f = product.facts
        if f.scope == "network":
            assert f.host_based_fraction == 0.0
        elif f.scope == "host":
            assert f.host_based_fraction == 1.0
        else:
            assert 0.0 < f.host_based_fraction < 1.0


class TestFactsDataclass:
    def test_facts_frozen(self):
        facts = all_products()[0].facts
        with pytest.raises(dataclasses.FrozenInstanceError):
            facts.docs = "bad"  # type: ignore[misc]
