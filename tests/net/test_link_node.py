"""Tests for the link queueing model and nodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NetworkError
from repro.net.address import IPv4Address
from repro.net.link import Link
from repro.net.node import BorderRouter, Host, Switch
from repro.net.packet import Packet
from repro.sim.engine import Engine

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")
EXT = IPv4Address("192.0.2.7")


def mk(src=A, dst=B, n=100):
    return Packet(src=src, dst=dst, sport=1, dport=2, payload_len=n)


class TestLink:
    def test_delivery_with_latency(self):
        eng = Engine()
        got = []
        link = Link(eng, bandwidth_bps=1e6, propagation_delay=0.01,
                    sink=lambda p: got.append((eng.now, p)))
        pkt = mk(n=946)  # wire_size = 1000 bytes -> 8 ms at 1 Mbps
        assert link.send(pkt)
        eng.run()
        assert len(got) == 1
        t, p = got[0]
        assert p is pkt
        assert t == pytest.approx(0.008 + 0.01)

    def test_serialization_queueing(self):
        eng = Engine()
        times = []
        link = Link(eng, bandwidth_bps=1e6, propagation_delay=0.0,
                    sink=lambda p: times.append(eng.now))
        for _ in range(3):
            link.send(mk(n=946))  # 8 ms each
        eng.run()
        assert times == pytest.approx([0.008, 0.016, 0.024])

    def test_queue_overflow_drops(self):
        eng = Engine()
        link = Link(eng, bandwidth_bps=1e3, propagation_delay=0.0,
                    queue_bytes=2000, sink=lambda p: None)
        results = [link.send(mk(n=900)) for _ in range(5)]  # ~954B each
        eng.run()
        assert results[0] is True
        assert False in results
        assert link.dropped_packets == results.count(False)
        assert link.loss_ratio == pytest.approx(link.dropped_packets / 5)

    def test_idle_link_accepts_even_with_zero_queue(self):
        eng = Engine()
        got = []
        link = Link(eng, bandwidth_bps=1e6, queue_bytes=0, sink=got.append)
        assert link.send(mk())
        eng.run()
        assert len(got) == 1

    def test_conservation_invariant(self):
        eng = Engine()
        link = Link(eng, bandwidth_bps=1e5, queue_bytes=4000, sink=lambda p: None)
        for _ in range(50):
            link.send(mk(n=500))
        eng.run()
        assert link.in_flight_packets == 0
        assert link.offered_packets == link.delivered_packets + link.dropped_packets
        assert link.offered_bytes == link.delivered_bytes + link.dropped_bytes

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1.0, allow_nan=False),
                              st.integers(min_value=0, max_value=1400)),
                    min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_conservation_under_random_arrivals(self, arrivals):
        eng = Engine()
        delivered = []
        link = Link(eng, bandwidth_bps=5e5, queue_bytes=3000, sink=delivered.append)
        for t, n in arrivals:
            eng.schedule_at(t, link.send, mk(n=n))
        eng.run()
        assert link.offered_packets == len(arrivals)
        assert link.delivered_packets == len(delivered)
        assert link.in_flight_packets == 0
        assert link.delivered_packets + link.dropped_packets == len(arrivals)

    def test_delay_stats_recorded(self):
        eng = Engine()
        link = Link(eng, bandwidth_bps=1e6, propagation_delay=0.001, sink=lambda p: None)
        link.send(mk(n=946))
        eng.run()
        assert link.delay_stats.n == 1
        assert link.delay_stats.mean == pytest.approx(0.009)

    def test_utilization(self):
        eng = Engine()
        link = Link(eng, bandwidth_bps=1e6, propagation_delay=0.0, sink=lambda p: None)
        link.send(mk(n=946))  # 8000 bits
        eng.run(until=0.016)
        assert link.utilization(until=0.016) == pytest.approx(0.5)

    def test_bad_config(self):
        eng = Engine()
        with pytest.raises(ConfigurationError):
            Link(eng, bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            Link(eng, propagation_delay=-1)
        with pytest.raises(ConfigurationError):
            Link(eng, queue_bytes=-1)


class TestHost:
    def test_handlers_invoked(self):
        eng = Engine()
        host = Host(eng, "h", A)
        got = []
        host.on_packet(got.append)
        host.on_packet(lambda p: got.append("second"))
        pkt = mk(dst=A)
        host.receive(pkt)
        assert got == [pkt, "second"]
        assert host.received_packets == 1
        assert host.received_bytes == pkt.wire_size

    def test_send_requires_uplink(self):
        host = Host(Engine(), "h", A)
        with pytest.raises(NetworkError):
            host.send(mk())

    def test_send_via_uplink(self):
        eng = Engine()
        got = []
        host = Host(eng, "h", A)
        host.uplink = Link(eng, sink=got.append)
        host.send(mk())
        eng.run()
        assert len(got) == 1


class TestSwitch:
    def test_forwards_by_address(self):
        eng = Engine()
        sw = Switch(eng)
        got_a, got_b = [], []
        sw.attach(A, Link(eng, sink=got_a.append))
        sw.attach(B, Link(eng, sink=got_b.append))
        sw.receive(mk(dst=B))
        eng.run()
        assert not got_a and len(got_b) == 1
        assert sw.forwarded == 1

    def test_default_route(self):
        eng = Engine()
        sw = Switch(eng)
        got = []
        sw.default_route = Link(eng, sink=got.append)
        sw.receive(mk(dst=EXT))
        eng.run()
        assert len(got) == 1

    def test_unroutable_counted(self):
        eng = Engine()
        sw = Switch(eng)
        sw.receive(mk(dst=EXT))
        eng.run()
        assert sw.unroutable == 1

    def test_span_mirrors_copies(self):
        eng = Engine()
        sw = Switch(eng)
        forwarded, mirrored = [], []
        sw.attach(B, Link(eng, sink=forwarded.append))
        sw.add_span(Link(eng, sink=mirrored.append))
        pkt = mk(dst=B)
        sw.receive(pkt)
        eng.run()
        assert len(forwarded) == 1 and len(mirrored) == 1
        assert forwarded[0] is pkt
        assert mirrored[0] is not pkt           # a copy
        assert mirrored[0].pid != pkt.pid
        assert mirrored[0].attack_id == pkt.attack_id
        assert sw.mirrored == 1

    def test_span_drop_under_overload_loses_visibility(self):
        eng = Engine()
        sw = Switch(eng)
        mirrored = []
        sw.attach(B, Link(eng, bandwidth_bps=1e9, sink=lambda p: None))
        sw.add_span(Link(eng, bandwidth_bps=1e3, queue_bytes=500,
                         sink=mirrored.append))
        for _ in range(20):
            sw.receive(mk(dst=B, n=400))
        eng.run()
        assert len(mirrored) < 20  # SPAN port saturated; copies lost


class TestBorderRouter:
    def test_forwards_wan_to_lan(self):
        eng = Engine()
        router = BorderRouter(eng)
        got = []
        router.lan_side = Link(eng, sink=got.append)
        router.receive_from_wan(mk(src=EXT))
        eng.run()
        assert len(got) == 1

    def test_block_list(self):
        eng = Engine()
        router = BorderRouter(eng)
        got = []
        router.lan_side = Link(eng, sink=got.append)
        router.block(EXT)
        assert router.is_blocked(EXT)
        assert router.block_list_size == 1
        router.receive_from_wan(mk(src=EXT))
        eng.run()
        assert got == []
        assert router.blocked_packets == 1
        router.unblock(EXT)
        router.receive_from_wan(mk(src=EXT))
        eng.run()
        assert len(got) == 1

    def test_missing_links_raise(self):
        eng = Engine()
        router = BorderRouter(eng)
        with pytest.raises(ConfigurationError):
            router.receive_from_wan(mk())
        with pytest.raises(ConfigurationError):
            router.receive_from_lan(mk())
