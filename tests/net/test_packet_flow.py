"""Tests for the packet model and flow tracking."""

import pytest

from repro.errors import NetworkError
from repro.net.address import IPv4Address
from repro.net.flow import FlowKey, FlowTracker
from repro.net.packet import Packet, Protocol, TcpFlags

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")


def mk(src=A, dst=B, sport=1234, dport=80, **kw):
    return Packet(src=src, dst=dst, sport=sport, dport=dport, **kw)


class TestPacket:
    def test_wire_size_tcp(self):
        p = mk(payload=b"x" * 100)
        assert p.wire_size == 14 + 20 + 20 + 100

    def test_wire_size_udp_icmp(self):
        assert mk(proto=Protocol.UDP, payload_len=10).wire_size == 14 + 20 + 8 + 10
        assert mk(proto=Protocol.ICMP, sport=0, dport=0).wire_size == 14 + 20 + 8

    def test_logical_payload_without_bytes(self):
        p = mk(payload_len=5000)
        assert p.payload is None
        assert p.payload_len == 5000

    def test_payload_len_defaults_to_bytes(self):
        assert mk(payload=b"abc").payload_len == 3

    def test_payload_len_must_cover_bytes(self):
        with pytest.raises(NetworkError):
            mk(payload=b"abcd", payload_len=2)

    def test_negative_payload_len_rejected(self):
        with pytest.raises(NetworkError):
            mk(payload_len=-1)

    def test_port_range_enforced(self):
        with pytest.raises(NetworkError):
            mk(sport=70000)

    def test_address_type_enforced(self):
        with pytest.raises(NetworkError):
            Packet(src="10.0.0.1", dst=B)  # type: ignore[arg-type]

    def test_unique_pids(self):
        assert mk().pid != mk().pid

    def test_flags(self):
        p = mk(flags=TcpFlags.SYN | TcpFlags.ACK)
        assert p.has_flag(TcpFlags.SYN)
        assert p.has_flag(TcpFlags.ACK)
        assert not p.has_flag(TcpFlags.FIN)

    def test_ground_truth(self):
        assert mk().is_benign
        p = mk(attack_id="scan-1")
        assert not p.is_benign

    def test_reply_template_reverses_direction(self):
        p = mk(attack_id="x")
        r = p.reply_template(flags=TcpFlags.ACK)
        assert (r.src, r.dst, r.sport, r.dport) == (B, A, 80, 1234)
        assert r.attack_id == "x"
        assert r.has_flag(TcpFlags.ACK)

    def test_copy_preserves_fields_fresh_pid(self):
        p = mk(payload=b"data", attack_id="a1", flags=TcpFlags.PSH)
        c = p.copy()
        assert c.pid != p.pid
        assert (c.src, c.dst, c.payload, c.attack_id, c.flags) == (
            p.src, p.dst, p.payload, p.attack_id, p.flags)


class TestFlowKey:
    def test_bidirectional_canonicalization(self):
        fwd = mk()
        rev = mk(src=B, dst=A, sport=80, dport=1234)
        assert FlowKey.of(fwd) == FlowKey.of(rev)

    def test_different_flows_differ(self):
        assert FlowKey.of(mk(dport=80)) != FlowKey.of(mk(dport=443))
        assert FlowKey.of(mk()) != FlowKey.of(mk(proto=Protocol.UDP))


class TestFlowTracker:
    def test_observe_creates_and_updates(self):
        ft = FlowTracker()
        s1 = ft.observe(mk(payload=b"ab"), now=1.0)
        s2 = ft.observe(mk(src=B, dst=A, sport=80, dport=1234), now=2.0)
        assert s1 is s2
        assert s1.packets == 2
        assert s1.first_seen == 1.0 and s1.last_seen == 2.0
        assert s1.duration == 1.0
        assert len(ft) == 1

    def test_forward_direction_counted(self):
        ft = FlowTracker()
        ft.observe(mk(), 0.0)
        ft.observe(mk(src=B, dst=A, sport=80, dport=1234), 0.1)
        ft.observe(mk(), 0.2)
        stats = ft.get(mk())
        assert stats is not None
        # 'forward' means lo->hi endpoint; whichever it is, it saw the
        # two same-direction packets or the one reverse packet.
        assert stats.forward_packets in (1, 2)
        assert stats.packets == 3

    def test_idle_expiry(self):
        ft = FlowTracker(idle_timeout=10.0)
        ft.observe(mk(), 0.0)
        ft.observe(mk(dport=443), 95.0)
        removed = ft.expire(now=100.0)
        assert removed == 1
        assert len(ft) == 1
        assert ft.evicted == 1

    def test_capacity_eviction_drops_oldest(self):
        ft = FlowTracker(max_flows=2)
        ft.observe(mk(dport=1), 0.0)
        ft.observe(mk(dport=2), 1.0)
        ft.observe(mk(dport=3), 2.0)
        assert len(ft) == 2
        assert ft.get(mk(dport=1)) is None
        assert ft.get(mk(dport=3)) is not None

    def test_top_talkers(self):
        ft = FlowTracker()
        for _ in range(3):
            ft.observe(mk(dport=80, payload_len=1000), 0.0)
        ft.observe(mk(dport=443, payload_len=10), 0.0)
        top = ft.top_talkers(1)
        assert len(top) == 1
        assert top[0].key.port_hi == 80 or top[0].key.port_lo == 80

    def test_bad_args(self):
        with pytest.raises(ValueError):
            FlowTracker(idle_timeout=0)
        with pytest.raises(ValueError):
            FlowTracker(max_flows=0)
