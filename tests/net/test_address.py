"""Tests for IPv4 addresses and subnets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.address import IPv4Address, Subnet


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        assert str(IPv4Address("192.168.1.200")) == "192.168.1.200"

    def test_int_and_str_agree(self):
        assert IPv4Address("10.0.0.1") == IPv4Address((10 << 24) + 1)

    def test_copy_constructor(self):
        a = IPv4Address("1.2.3.4")
        assert IPv4Address(a) == a

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_int_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(2**32)

    def test_wrong_type(self):
        with pytest.raises(AddressError):
            IPv4Address(1.5)  # type: ignore[arg-type]

    def test_ordering_and_hash(self):
        a, b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        assert a < b
        assert len({a, IPv4Address("10.0.0.1")}) == 1

    def test_add_offset(self):
        assert IPv4Address("10.0.0.1") + 5 == IPv4Address("10.0.0.6")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200, deadline=None)
    def test_property_int_str_roundtrip(self, v):
        assert IPv4Address(str(IPv4Address(v))).value == v


class TestSubnet:
    def test_parse(self):
        s = Subnet("10.1.0.0/16")
        assert str(s) == "10.1.0.0/16"
        assert s.num_hosts == 65534

    def test_membership(self):
        s = Subnet("10.0.0.0/24")
        assert "10.0.0.42" in s
        assert IPv4Address("10.0.1.1") not in s

    def test_broadcast(self):
        assert Subnet("10.0.0.0/24").broadcast == IPv4Address("10.0.0.255")

    def test_host_bits_set_rejected(self):
        with pytest.raises(AddressError):
            Subnet("10.0.0.1/24")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "nope/8"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            Subnet(bad)

    def test_allocation_sequential_and_skips_network(self):
        s = Subnet("10.0.0.0/29")  # 6 usable hosts
        addrs = list(s.hosts(6))
        assert addrs[0] == IPv4Address("10.0.0.1")
        assert addrs[-1] == IPv4Address("10.0.0.6")
        with pytest.raises(AddressError):
            s.allocate()

    def test_allocated_addresses_in_subnet(self):
        s = Subnet("172.16.4.0/26")
        for a in s.hosts(10):
            assert a in s

    def test_cannot_allocate_from_host_prefix(self):
        with pytest.raises(AddressError):
            Subnet("10.0.0.0/31").allocate()

    def test_equality_and_hash(self):
        assert Subnet("10.0.0.0/24") == Subnet("10.0.0.0/24")
        assert len({Subnet("10.0.0.0/24"), Subnet("10.0.0.0/24")}) == 1
