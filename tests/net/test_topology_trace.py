"""Tests for the LAN testbed topology and the trace format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceFormatError
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.topology import LanTestbed
from repro.net.trace import Trace
from repro.sim.engine import Engine

EXT = IPv4Address("192.0.2.9")


def mk(src, dst, **kw):
    kw.setdefault("sport", 1)
    kw.setdefault("dport", 2)
    return Packet(src=src, dst=dst, **kw)


class TestLanTestbed:
    def test_hosts_allocated_in_subnet(self):
        tb = LanTestbed(Engine(), subnet="10.1.0.0/24", n_hosts=4)
        assert len(tb.hosts) == 4
        assert all(h.address in tb.subnet for h in tb.hosts)
        assert tb.host_by_address(tb.hosts[2].address) is tb.hosts[2]
        assert tb.host_by_address(EXT) is None

    def test_wan_packet_reaches_host(self):
        eng = Engine()
        tb = LanTestbed(eng, n_hosts=2)
        target = tb.hosts[0]
        got = []
        target.on_packet(got.append)
        tb.inject_from_wan(mk(EXT, target.address))
        eng.run()
        assert len(got) == 1

    def test_lan_packet_host_to_host(self):
        eng = Engine()
        tb = LanTestbed(eng, n_hosts=2)
        got = []
        tb.hosts[1].on_packet(got.append)
        tb.hosts[0].uplink.send(mk(tb.hosts[0].address, tb.hosts[1].address))
        eng.run()
        assert len(got) == 1

    def test_outbound_packet_leaves_via_router(self):
        eng = Engine()
        tb = LanTestbed(eng, n_hosts=1)
        tb.inject_on_lan(mk(tb.hosts[0].address, EXT))
        eng.run()
        assert tb.wan_egress.delivered_packets == 1

    def test_span_tap_sees_all_switched_traffic(self):
        eng = Engine()
        tb = LanTestbed(eng, n_hosts=2)
        seen = []
        tb.add_span_tap(seen.append)
        tb.inject_from_wan(mk(EXT, tb.hosts[0].address))
        tb.inject_on_lan(mk(tb.hosts[1].address, tb.hosts[0].address))
        eng.run()
        assert len(seen) == 2

    def test_router_block_protects_lan(self):
        eng = Engine()
        tb = LanTestbed(eng, n_hosts=1)
        got = []
        tb.hosts[0].on_packet(got.append)
        tb.router.block(EXT)
        tb.inject_from_wan(mk(EXT, tb.hosts[0].address))
        eng.run()
        assert got == []

    def test_graph_structure(self):
        tb = LanTestbed(Engine(), n_hosts=3)
        tb.add_span_tap(lambda p: None)
        g = tb.graph()
        assert g.has_edge("internet", "border")
        assert g.has_edge("border", "switch")
        hosts = [n for n, d in g.nodes(data=True) if d.get("kind") == "host"]
        assert len(hosts) == 3
        spans = [n for n, d in g.nodes(data=True) if d.get("kind") == "span"]
        assert spans == ["span0"]

    def test_bad_host_count(self):
        with pytest.raises(ConfigurationError):
            LanTestbed(Engine(), n_hosts=0)


class TestTrace:
    def _sample_trace(self):
        tr = Trace("sample")
        a, b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        tr.append(0.0, mk(a, b, payload=b"hello", flags=TcpFlags.SYN, proto=Protocol.TCP))
        tr.append(0.5, mk(b, a, proto=Protocol.UDP, payload_len=900))
        tr.append(1.5, mk(a, b, proto=Protocol.ICMP, sport=0, dport=0,
                          attack_id="ping-sweep-1"))
        return tr

    def test_append_enforces_time_order(self):
        tr = self._sample_trace()
        with pytest.raises(TraceFormatError):
            tr.append(1.0, mk(IPv4Address(1), IPv4Address(2)))

    def test_basic_stats(self):
        tr = self._sample_trace()
        assert len(tr) == 3
        assert tr.duration == 1.5
        assert tr.attack_ids() == {"ping-sweep-1"}
        assert tr.attack_packet_count() == 1
        assert tr.total_bytes == sum(r.packet.wire_size for r in tr)

    def test_roundtrip_bytes(self):
        tr = self._sample_trace()
        loaded = Trace.from_bytes(tr.to_bytes())
        assert len(loaded) == len(tr)
        for orig, new in zip(tr, loaded):
            assert new.time == orig.time
            p, q = orig.packet, new.packet
            assert (q.src, q.dst, q.sport, q.dport) == (p.src, p.dst, p.sport, p.dport)
            assert q.proto is p.proto
            assert q.flags == p.flags
            assert q.payload == p.payload
            assert q.payload_len == p.payload_len
            assert q.attack_id == p.attack_id

    def test_roundtrip_file(self, tmp_path):
        tr = self._sample_trace()
        path = tmp_path / "t.rtrc"
        tr.save(str(path))
        loaded = Trace.load(str(path))
        assert len(loaded) == 3

    def test_logical_payload_survives_roundtrip(self):
        tr = Trace()
        tr.append(0.0, mk(IPv4Address(1), IPv4Address(2), payload_len=5000))
        p = Trace.from_bytes(tr.to_bytes())[0].packet
        assert p.payload is None
        assert p.payload_len == 5000

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_truncated_rejected(self):
        data = self._sample_trace().to_bytes()
        with pytest.raises(TraceFormatError):
            Trace.from_bytes(data[:-3])
        with pytest.raises(TraceFormatError):
            Trace.from_bytes(data[:5])

    def test_merge_orders_by_time(self):
        a, b = IPv4Address(1), IPv4Address(2)
        t1, t2 = Trace("a"), Trace("b")
        t1.append(0.0, mk(a, b))
        t1.append(2.0, mk(a, b))
        t2.append(1.0, mk(b, a))
        merged = Trace.merge([t1, t2])
        assert [r.time for r in merged] == [0.0, 1.0, 2.0]

    def test_replay_delivers_at_relative_times(self):
        eng = Engine()
        tr = self._sample_trace()
        got = []
        tr.replay(eng, lambda p: got.append(eng.now), start_at=10.0)
        eng.run()
        assert got == [10.0, 10.5, 11.5]

    def test_replay_speedup(self):
        eng = Engine()
        tr = self._sample_trace()
        got = []
        tr.replay(eng, lambda p: got.append(eng.now), speedup=2.0)
        eng.run()
        assert got == [0.0, 0.25, 0.75]

    def test_replay_bad_speedup(self):
        with pytest.raises(TraceFormatError):
            self._sample_trace().replay(Engine(), lambda p: None, speedup=0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.binary(max_size=64),
        st.one_of(st.none(), st.text(min_size=1, max_size=10)),
    ), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, rows):
        tr = Trace()
        rows.sort(key=lambda r: r[0])
        for t, src, dst, payload, attack in rows:
            tr.append(t, Packet(src=IPv4Address(src), dst=IPv4Address(dst),
                                payload=payload or None, attack_id=attack))
        loaded = Trace.from_bytes(tr.to_bytes())
        assert len(loaded) == len(tr)
        for orig, new in zip(tr, loaded):
            assert new.time == orig.time
            assert new.packet.payload == orig.packet.payload
            assert new.packet.attack_id == orig.packet.attack_id
