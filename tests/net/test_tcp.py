"""Tests for TCP session tracking, reassembly and session generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TcpStateError
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.tcp import (
    SessionTable,
    StreamReassembler,
    TcpConnection,
    TcpState,
    build_session,
)

C = IPv4Address("10.0.0.1")
S = IPv4Address("10.0.0.2")


def tcp(src, dst, sport, dport, flags, seq=0, ack=0, payload=None):
    return Packet(src=src, dst=dst, sport=sport, dport=dport,
                  proto=Protocol.TCP, flags=flags, seq=seq, ack=ack,
                  payload=payload)


def handshake(conn, t0=0.0):
    conn.feed(tcp(C, S, 1000, 80, TcpFlags.SYN, seq=1), t0)
    conn.feed(tcp(S, C, 80, 1000, TcpFlags.SYN | TcpFlags.ACK, seq=9, ack=2), t0 + 0.01)
    conn.feed(tcp(C, S, 1000, 80, TcpFlags.ACK, seq=2, ack=10), t0 + 0.02)


class TestTcpConnection:
    def test_three_way_handshake(self):
        conn = TcpConnection()
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.SYN), 0.0)
        assert conn.state is TcpState.SYN_SENT
        assert conn.half_open
        conn.feed(tcp(S, C, 80, 1000, TcpFlags.SYN | TcpFlags.ACK), 0.01)
        assert conn.state is TcpState.SYN_RECEIVED
        assert conn.half_open
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.ACK), 0.02)
        assert conn.established
        assert conn.established_at == 0.02
        assert conn.initiator == (C, 1000)
        assert conn.responder == (S, 80)

    def test_graceful_close(self):
        conn = TcpConnection()
        handshake(conn)
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.FIN | TcpFlags.ACK), 1.0)
        assert conn.state is TcpState.FIN_WAIT
        conn.feed(tcp(S, C, 80, 1000, TcpFlags.FIN | TcpFlags.ACK), 1.1)
        assert conn.state is TcpState.TIME_WAIT
        assert conn.finished
        assert conn.closed_at == 1.1

    def test_server_initiated_close(self):
        conn = TcpConnection()
        handshake(conn)
        conn.feed(tcp(S, C, 80, 1000, TcpFlags.FIN | TcpFlags.ACK), 1.0)
        assert conn.state is TcpState.CLOSE_WAIT

    def test_reset_terminates(self):
        conn = TcpConnection()
        handshake(conn)
        conn.feed(tcp(S, C, 80, 1000, TcpFlags.RST), 2.0)
        assert conn.state is TcpState.RESET
        assert conn.finished

    def test_payload_accounting_by_direction(self):
        conn = TcpConnection()
        handshake(conn)
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.ACK | TcpFlags.PSH, payload=b"x" * 10), 1.0)
        conn.feed(tcp(S, C, 80, 1000, TcpFlags.ACK | TcpFlags.PSH, payload=b"y" * 30), 1.1)
        assert conn.bytes_to_responder == 10
        assert conn.bytes_to_initiator == 30

    def test_syn_retransmission_tolerated(self):
        conn = TcpConnection()
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.SYN), 0.0)
        conn.feed(tcp(C, S, 1000, 80, TcpFlags.SYN), 1.0)
        assert conn.state is TcpState.SYN_SENT

    def test_strict_rejects_data_before_syn(self):
        conn = TcpConnection(strict=True)
        with pytest.raises(TcpStateError):
            conn.feed(tcp(C, S, 1, 2, TcpFlags.ACK, payload=b"hi"), 0.0)

    def test_non_strict_ignores_data_before_syn(self):
        conn = TcpConnection()
        conn.feed(tcp(C, S, 1, 2, TcpFlags.ACK, payload=b"hi"), 0.0)
        assert conn.state is TcpState.CLOSED

    def test_non_tcp_rejected(self):
        conn = TcpConnection()
        with pytest.raises(TcpStateError):
            conn.feed(Packet(src=C, dst=S, proto=Protocol.UDP), 0.0)


class TestSessionTable:
    def test_tracks_by_flow(self):
        table = SessionTable()
        for pkt in build_session(C, S, 1000, 80, request=b"GET /"):
            table.feed(pkt, 0.0)
        assert len(table) == 1
        assert table.half_open_count == 0

    def test_half_open_counting(self):
        table = SessionTable()
        for i in range(5):
            table.feed(tcp(C, S, 1000 + i, 80, TcpFlags.SYN), float(i))
        assert table.half_open_count == 5
        assert table.established_count == 0

    def test_eviction_prefers_half_open(self):
        table = SessionTable(max_sessions=3)
        # one established session
        for pkt in build_session(C, S, 999, 80, teardown=False):
            table.feed(pkt, 0.0)
        # fill with half-open
        table.feed(tcp(C, S, 1001, 80, TcpFlags.SYN), 1.0)
        table.feed(tcp(C, S, 1002, 80, TcpFlags.SYN), 2.0)
        # next new session evicts the *oldest half-open* (port 1001)
        table.feed(tcp(C, S, 1003, 80, TcpFlags.SYN), 3.0)
        assert table.evicted == 1
        assert table.established_count == 1
        assert table.get(tcp(C, S, 1001, 80, TcpFlags.SYN)) is None

    def test_finished_session_replaced_on_new_syn(self):
        table = SessionTable()
        for pkt in build_session(C, S, 1000, 80):
            table.feed(pkt, 0.0)
        conn1 = table.get(tcp(C, S, 1000, 80, TcpFlags.SYN))
        assert conn1 is not None and conn1.finished
        table.feed(tcp(C, S, 1000, 80, TcpFlags.SYN), 10.0)
        conn2 = table.get(tcp(C, S, 1000, 80, TcpFlags.SYN))
        assert conn2 is not conn1
        assert conn2.half_open

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SessionTable(max_sessions=0)


class TestStreamReassembler:
    def test_in_order(self):
        r = StreamReassembler(isn=100)
        r.add(100, b"hello ")
        r.add(106, b"world")
        assert r.contiguous() == b"hello world"
        assert not r.has_gap

    def test_out_of_order(self):
        r = StreamReassembler(isn=0)
        r.add(5, b"world")
        assert r.contiguous() == b""
        assert r.has_gap
        r.add(0, b"hello")
        assert r.contiguous() == b"helloworld"
        assert not r.has_gap

    def test_duplicate_ignored(self):
        r = StreamReassembler(isn=0)
        r.add(0, b"abc")
        r.add(0, b"abc")
        assert r.contiguous() == b"abc"

    def test_partial_overlap_trimmed(self):
        r = StreamReassembler(isn=0)
        r.add(0, b"abcd")
        r.add(2, b"cdEF")
        assert r.contiguous() == b"abcdEF"

    def test_buffered_overlap_handled(self):
        r = StreamReassembler(isn=0)
        r.add(2, b"cdef")   # buffered with gap
        r.add(0, b"abcd")   # fills gap, overlaps buffer
        assert r.contiguous() == b"abcdef"

    def test_buffer_limit_drops(self):
        r = StreamReassembler(isn=0, max_buffer=4)
        r.add(100, b"abcdef")  # too big to buffer
        assert r.dropped_bytes == 6

    def test_empty_payload_noop(self):
        r = StreamReassembler(isn=0)
        r.add(0, b"")
        assert r.contiguous() == b""

    @given(st.binary(min_size=1, max_size=400), st.randoms())
    @settings(max_examples=50, deadline=None)
    def test_property_any_arrival_order_reassembles(self, data, rnd):
        chunks = []
        pos = 0
        while pos < len(data):
            size = rnd.randint(1, 50)
            chunks.append((pos, data[pos:pos + size]))
            pos += size
        rnd.shuffle(chunks)
        r = StreamReassembler(isn=0)
        for seq, chunk in chunks:
            r.add(seq, chunk)
        assert r.contiguous() == data


class TestBuildSession:
    def test_session_establishes_and_closes(self):
        conn = TcpConnection(strict=True)
        pkts = build_session(C, S, 1000, 80, request=b"GET / HTTP/1.0\r\n\r\n",
                             response=b"HTTP/1.0 200 OK\r\n\r\nhi")
        for i, pkt in enumerate(pkts):
            conn.feed(pkt, float(i))
        assert conn.finished
        assert conn.bytes_to_responder == 18
        assert conn.bytes_to_initiator == 21

    def test_segmentation_respects_mss(self):
        pkts = build_session(C, S, 1, 2, request=b"x" * 3500, mss=1000)
        data = [p for p in pkts if p.payload and p.src == C]
        assert [len(p.payload) for p in data] == [1000, 1000, 1000, 500]

    def test_reassembly_of_generated_session(self):
        req = bytes(range(256)) * 7
        pkts = build_session(C, S, 1, 2, request=req, mss=100)
        r = StreamReassembler(isn=1001)  # isn_client + 1
        for p in pkts:
            if p.src == C and p.payload:
                r.add(p.seq, p.payload)
        assert r.contiguous() == req

    def test_attack_id_propagates(self):
        pkts = build_session(C, S, 1, 2, request=b"evil", attack_id="exp-1")
        assert all(p.attack_id == "exp-1" for p in pkts)

    def test_no_teardown_option(self):
        pkts = build_session(C, S, 1, 2, teardown=False)
        assert not any(p.has_flag(TcpFlags.FIN) for p in pkts)

    def test_bad_mss(self):
        with pytest.raises(ValueError):
            build_session(C, S, 1, 2, mss=0)
