"""The trace data plane: batched codec vs the v1 loops, batched replay
vs eager scheduling, and the cached trace statistics.

The batched ``_encode``/``_decode`` pair must be *byte-identical* (encode)
and *field-identical* (decode) to the per-record ``_write``/``_read``
loops kept in-tree as the reference, over arbitrary traces -- including
payload-less packets, logical-length-only packets, and attack labels.
Batched replay must deliver the same events in the same order as eager
per-record scheduling, including ties against unrelated events.
"""

import io
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.net.address import IPv4Address
from repro.net.packet import Packet, Protocol, TcpFlags
from repro.net.trace import (
    DEFAULT_REPLAY_MODE,
    REPLAY_MODES,
    Trace,
    use_replay_mode,
)
from repro.sim.engine import Engine

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")


# ----------------------------------------------------------------------
# random traces
# ----------------------------------------------------------------------
payloads = (st.none()
            | st.binary(min_size=1, max_size=60)
            | st.just(b"GET /index.html HTTP/1.0\r\n"))


@st.composite
def traces(draw):
    trace = Trace(draw(st.sampled_from(("t", "bench", "scenario"))))
    t = 0.0
    for _ in range(draw(st.integers(0, 25))):
        t += draw(st.sampled_from((0.0, 0.001, 0.5)))
        payload = draw(payloads)
        plen = None
        if payload is None and draw(st.booleans()):
            plen = draw(st.integers(0, 1500))  # logical-length-only packet
        trace.append(t, Packet(
            src=draw(st.sampled_from((A, B))),
            dst=draw(st.sampled_from((A, B))),
            sport=draw(st.sampled_from((0, 80, 40000))),
            dport=draw(st.sampled_from((0, 80, 7000))),
            proto=draw(st.sampled_from((Protocol.TCP, Protocol.UDP,
                                        Protocol.ICMP))),
            flags=draw(st.sampled_from((TcpFlags.NONE, TcpFlags.SYN,
                                        TcpFlags.ACK | TcpFlags.PSH))),
            seq=draw(st.sampled_from((0, 1000))),
            payload=payload, payload_len=plen,
            attack_id=draw(st.sampled_from((None, "a1", "flood-2")))))
    return trace


def fields(trace):
    """Every codec-visible field of every record."""
    return [(t, p.src.value, p.dst.value, p.sport, p.dport, p.proto,
             p.flags, p.seq, p.ack, p.payload, p.payload_len, p.attack_id)
            for t, p in trace]


class TestCodecEquivalence:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=traces())
    def test_batched_encode_matches_v1_bytes(self, trace):
        buf = io.BytesIO()
        trace._write(buf)
        assert trace._encode() == buf.getvalue()

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=traces())
    def test_batched_decode_matches_v1_fields(self, trace):
        data = trace.to_bytes()
        batched = Trace.from_bytes(data, name=trace.name)
        looped = Trace._read(io.BytesIO(data), trace.name)
        assert fields(batched) == fields(looped)

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=traces())
    def test_round_trip_preserves_fields(self, trace):
        decoded = Trace.from_bytes(trace.to_bytes(), name=trace.name)
        assert fields(decoded) == fields(trace)
        assert decoded.total_bytes == trace.total_bytes
        assert decoded.attack_packet_count() == trace.attack_packet_count()
        assert decoded.attack_ids() == trace.attack_ids()

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=traces(), cut=st.integers(1, 40))
    def test_truncation_raises_like_v1(self, trace, cut):
        data = trace.to_bytes()
        if cut >= len(data):
            return
        bad = data[:-cut]
        with pytest.raises(TraceFormatError) as batched_err:
            Trace.from_bytes(bad)
        with pytest.raises(TraceFormatError) as looped_err:
            Trace._read(io.BytesIO(bad), "trace")
        assert str(batched_err.value) == str(looped_err.value)


class TestSaveLoadPaths:
    def _trace(self):
        trace = Trace("disk")
        trace.append(0.0, Packet(src=A, dst=B, payload=b"hello"))
        trace.append(0.5, Packet(src=B, dst=A, attack_id="a1",
                                 payload_len=900))
        return trace

    def test_pathlike_round_trip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "t.rtrc"          # os.PathLike, not str
        trace.save(path)
        loaded = Trace.load(path)
        assert fields(loaded) == fields(trace)

    def test_str_path_round_trip(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.rtrc")
        trace.save(path)
        assert fields(Trace.load(path)) == fields(trace)

    def test_file_object_round_trip(self, tmp_path):
        trace = self._trace()
        with open(tmp_path / "t.rtrc", "wb") as fh:
            trace.save(fh)
        with open(tmp_path / "t.rtrc", "rb") as fh:
            assert fields(Trace.load(fh, name="disk")) == fields(trace)

    def test_load_rejects_raw_trace_bytes(self):
        data = self._trace().to_bytes()
        with pytest.raises(TraceFormatError, match="from_bytes"):
            Trace.load(data)

    def test_load_empty_file(self, tmp_path):
        # empty files cannot be mmapped; the fallback must still produce
        # the same "truncated trace header" failure as the loop reader
        path = tmp_path / "empty.rtrc"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="truncated"):
            Trace.load(path)


class TestCachedStatistics:
    def test_total_bytes_invalidated_by_append(self):
        trace = Trace()
        p1 = Packet(src=A, dst=B, payload=b"xxxx")
        trace.append(0.0, p1)
        assert trace.total_bytes == p1.wire_size
        p2 = Packet(src=A, dst=B, payload_len=100)
        trace.append(1.0, p2)
        assert trace.total_bytes == p1.wire_size + p2.wire_size

    def test_attack_count_invalidated_by_extend(self):
        trace = Trace()
        trace.append(0.0, Packet(src=A, dst=B, attack_id="a1"))
        assert trace.attack_packet_count() == 1
        trace.extend([(1.0, Packet(src=A, dst=B, attack_id="a2")),
                      (2.0, Packet(src=A, dst=B))])
        assert trace.attack_packet_count() == 2

    def test_merge_preserves_statistics(self):
        t1, t2 = Trace("a"), Trace("b")
        t1.append(0.0, Packet(src=A, dst=B, payload=b"123"))
        t2.append(0.5, Packet(src=B, dst=A, attack_id="x", payload=b"45"))
        merged = Trace.merge([t1, t2])
        assert merged.total_bytes == t1.total_bytes + t2.total_bytes
        assert merged.attack_packet_count() == 1
        assert [t for t, _ in merged] == [0.0, 0.5]


# ----------------------------------------------------------------------
# replay equivalence
# ----------------------------------------------------------------------
def replay_log(trace, mode, speedup=1.0, start_at=0.0, competing=True):
    """Event log of a replay, with competing same-time events interleaved
    and one event scheduled from inside the sink."""
    engine = Engine()
    log = []
    if competing:
        for t, _ in trace:
            at = start_at + (t - trace[0].time) / speedup
            engine.schedule_at(at, log.append, ("tick", round(at, 9)))
    scheduled_inner = []

    def sink(pkt):
        log.append(("pkt", pkt.sport, pkt.dport, engine.now))
        if not scheduled_inner:
            scheduled_inner.append(True)
            engine.schedule(0.0, log.append, ("inner", engine.now))

    trace.replay(engine, sink, start_at=start_at, speedup=speedup, mode=mode)
    engine.run()
    return log


@st.composite
def replayable_traces(draw):
    trace = Trace("r")
    t = 0.0
    for i in range(draw(st.integers(1, 15))):
        t += draw(st.sampled_from((0.0, 0.001, 0.25)))  # 0.0 forces ties
        trace.append(t, Packet(src=A, dst=B, sport=i, dport=80))
    return trace


class TestReplayEquivalence:
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=replayable_traces(),
           speedup=st.sampled_from((0.5, 1.0, 4.0)),
           start_at=st.sampled_from((0.0, 3.0)))
    def test_batched_equals_scheduled(self, trace, speedup, start_at):
        assert (replay_log(trace, "batched", speedup, start_at)
                == replay_log(trace, "scheduled", speedup, start_at))

    def test_cursor_cancel_stops_remainder(self):
        trace = Trace("c")
        for i in range(5):
            trace.append(float(i), Packet(src=A, dst=B, sport=i))
        engine = Engine()
        seen = []

        def sink(pkt):
            seen.append(pkt.sport)
            if pkt.sport == 2:
                cursor.cancel()

        cursor = trace.replay(engine, sink, mode="batched")
        engine.run()
        assert seen == [0, 1, 2]

    def test_mode_knob_and_validation(self):
        assert DEFAULT_REPLAY_MODE in REPLAY_MODES
        trace = Trace("m")
        trace.append(0.0, Packet(src=A, dst=B))
        engine = Engine()
        with pytest.raises(TraceFormatError):
            trace.replay(engine, lambda p: None, speedup=0.0)
        with pytest.raises(TraceFormatError):
            trace.replay(engine, lambda p: None, mode="eager")
        with use_replay_mode("scheduled"):
            assert trace.replay(Engine(), lambda p: None) is None

    def test_empty_trace_is_a_noop(self):
        engine = Engine()
        assert Trace("e").replay(engine, lambda p: None) is None
        assert engine.pending == 0
