"""Tests for the table/figure rendering layer."""

import numpy as np
import pytest

from repro.core.catalog import default_catalog
from repro.core.metric import MetricClass
from repro.core.scorecard import Scorecard
from repro.core.scoring import weighted_scores
from repro.core.weighting import figure6_example
from repro.eval.accuracy import SensitivitySweep, SweepPoint
from repro.eval.ground_truth import AccuracyResult
from repro.report.render import ascii_chart, text_table
from repro.report.tables import scorecard_table, table1, table2, table3
from repro.report.figures import (
    figure2_cardinality,
    figure3_error_ratios,
    figure4_error_curves,
    figure6_weight_mapping,
)


class TestRender:
    def test_text_table_alignment_and_borders(self):
        out = text_table(("a", "bb"), [("x", 1), ("yy", 22)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+-")
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # every row same width

    def test_text_table_ragged_rows(self):
        out = text_table(("a", "b", "c"), [("only",)])
        assert "only" in out

    def test_ascii_chart_basic(self):
        x = [0, 1, 2, 3]
        y1 = [0.0, 0.1, 0.2, 0.3]
        y2 = [0.3, 0.2, 0.1, 0.0]
        out = ascii_chart(x, [y1, y2], ["up", "down"], title="chart")
        assert "chart" in out
        assert "* up" in out and "o down" in out
        assert "#" in out or ("*" in out and "o" in out)

    def test_ascii_chart_constant_series(self):
        out = ascii_chart([0, 1], [[1.0, 1.0]], ["flat"])
        assert "flat" in out

    def test_ascii_chart_empty(self):
        assert ascii_chart([], [], []) == "(empty chart)"


class TestTables:
    def test_tables_contain_paper_metric_names(self):
        assert "Distributed Management" in table1()
        assert "Scalable Load-balancing" in table2()
        assert "Network Lethal Dose" in table3()

    def test_table_titles(self):
        assert table1().startswith("Table 1")
        assert table2().startswith("Table 2")
        assert table3().startswith("Table 3")

    def test_scorecard_table(self):
        card = Scorecard(default_catalog())
        card.add_product("A")
        card.set_score("A", "Timeliness", 3)
        out = scorecard_table(card, MetricClass.PERFORMANCE)
        assert "Timeliness" in out
        assert "| 3 |" in out.replace("  ", " ") or " 3 " in out
        # unscored metrics show a dash
        assert "-" in out


class TestFigures:
    def test_figure2_lists_all_relationships(self):
        out = figure2_cardinality()
        for c in ("1c : M", "M : M", "M : 1", "1 : 1c"):
            assert c in out

    def test_figure3_shows_formulas(self):
        res = AccuracyResult(product="p", transactions=100,
                             actual={"a", "b"}, detected={"a"},
                             missed={"b"}, false_alarms=3, alerts_total=10)
        out = figure3_error_ratios(res)
        assert "|D - A| / |T|" in out
        assert "0.0300" in out   # FPR = 3/100
        assert "0.0100" in out   # FNR = 1/100

    def test_figure4_with_and_without_eer(self):
        def mk(points):
            return SensitivitySweep(product="p", points=[
                SweepPoint(s, fp, fn, None) for s, fp, fn in points])

        crossing = mk([(0.0, 0.0, 0.4), (1.0, 0.4, 0.0)])
        out = figure4_error_curves(crossing)
        assert "Equal Error Rate: rate=" in out
        flat = mk([(0.0, 0.0, 0.4), (1.0, 0.1, 0.2)])
        out2 = figure4_error_curves(flat)
        assert "not reached" in out2

    def test_figure6_renders_paper_numbers(self):
        reqs, weights = figure6_example()
        out = figure6_weight_mapping(reqs, weights)
        for v in ("6.5", "8", "5", "3"):
            assert v in out

    def test_figure1_and_figure5(self):
        from repro.ids.analyzer import Analyzer
        from repro.ids.monitor import Monitor
        from repro.ids.pipeline import IdsPipeline
        from repro.ids.sensor import Sensor, SignatureDetector
        from repro.report.figures import (
            figure1_architecture,
            figure5_weighted_scores,
        )
        from repro.sim.engine import Engine

        eng = Engine()
        p = IdsPipeline(eng, "demo",
                        [Sensor(eng, "s0", SignatureDetector())],
                        [Analyzer(eng, "a0")], Monitor(eng, "m0")).wire()
        out = figure1_architecture(p)
        assert "s0" in out and "a0" in out and "m0" in out
        assert "Border Router" in out

        card = Scorecard(default_catalog())
        card.add_product("A")
        card.set_score("A", "Timeliness", 4)
        results = weighted_scores(card, {"Timeliness": 2.0})
        out5 = figure5_weighted_scores(results, {"Timeliness": 2.0})
        assert "8.00" in out5
        assert "S_3" in out5 or "performance" in out5


class TestSeriesCsv:
    def test_csv_layout(self):
        from repro.report.render import series_to_csv

        csv = series_to_csv([0.0, 1.0], [[0.1, 0.2], [0.9, 0.8]],
                            ["a", "b"], x_label="s")
        lines = csv.splitlines()
        assert lines[0] == "s,a,b"
        assert lines[1] == "0.0,0.1,0.9"
        assert len(lines) == 3

    def test_csv_validation(self):
        from repro.report.render import series_to_csv

        with pytest.raises(ValueError):
            series_to_csv([0.0], [[1.0]], ["a", "b"])
        with pytest.raises(ValueError):
            series_to_csv([0.0, 1.0], [[1.0]], ["a"])


class TestScorecardEvidence:
    def test_with_evidence_rows(self):
        from repro.report.tables import scorecard_table

        card = Scorecard(default_catalog())
        card.add_product("A")
        card.set_score("A", "Timeliness", 3, evidence="0.4 s mean")
        out = scorecard_table(card, MetricClass.PERFORMANCE,
                              with_evidence=True)
        assert "[A] 0.4 s mean" in out
