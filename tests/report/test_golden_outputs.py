"""Golden regression tests for the paper's rendered artifacts.

Every table and figure is re-rendered from a small deterministic
configuration and compared byte-for-byte against a checked-in snapshot
under ``tests/report/golden/``.  Any drift in scoring, simulation, or
layout shows up as a readable diff here instead of a silent change in the
reproduced paper output.

To bless intentional changes, regenerate the snapshots::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/report/test_golden_outputs.py

then review and commit the diff under ``tests/report/golden/``.
"""

import os
import pathlib

import pytest

from repro.core.profiles import realtime_cluster_requirements
from repro.core.report import format_weighted_results
from repro.eval.accuracy import sensitivity_sweep
from repro.eval.runner import EvaluationOptions, evaluate_field
from repro.products import ManhuntProduct, NidProduct
from repro.report.figures import (
    figure3_error_ratios,
    figure4_error_curves,
    figure5_weighted_scores,
    figure6_weight_mapping,
)
from repro.report.tables import scorecard_table, table1, table2, table3

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDENS"))

OPTIONS = EvaluationOptions(seed=0, n_hosts=3, scenario_duration_s=10.0,
                            train_duration_s=4.0,
                            throughput_rates_pps=(500, 1200),
                            throughput_probe_s=0.2)


def check(name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        f"REPRO_UPDATE_GOLDENS=1")
    expected = path.read_text(encoding="utf-8")
    assert text == expected, f"{name} drifted from its golden snapshot"


@pytest.fixture(scope="module")
def field():
    return evaluate_field([NidProduct, ManhuntProduct],
                          realtime_cluster_requirements(), OPTIONS)


@pytest.fixture(scope="module")
def sweep():
    return sensitivity_sweep(
        lambda s: ManhuntProduct(sensitivity=s), "sim-manhunt",
        sensitivities=(0.2, 0.5, 0.8), seed=0, duration_s=12.0, n_hosts=3)


class TestGoldenTables:
    def test_table1(self):
        check("table1", table1())

    def test_table2(self):
        check("table2", table2())

    def test_table3(self):
        check("table3", table3())

    def test_scorecard(self, field):
        check("scorecard", scorecard_table(field.scorecard))

    def test_weighted_results(self, field):
        check("weighted_results", format_weighted_results(field.results))


class TestGoldenFigures:
    def test_figure3(self, field):
        check("figure3",
              figure3_error_ratios(
                  field.evaluations["sim-manhunt"].accuracy))

    def test_figure4(self, sweep):
        check("figure4", figure4_error_curves(sweep))

    def test_figure5(self, field):
        check("figure5",
              figure5_weighted_scores(field.results, field.weights))

    def test_figure6(self, field):
        check("figure6",
              figure6_weight_mapping(realtime_cluster_requirements(),
                                     field.weights))
