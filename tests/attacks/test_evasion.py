"""Evasion tests: attacks engineered to sit outside default detectability.

These are deliberate *negative capability* tests: they pin down what the
shipped engines do NOT catch, so the detectability frontier is documented
behaviour rather than an accident.
"""

import numpy as np
import pytest

from repro.attacks import SlowPortScan
from repro.errors import ConfigurationError
from repro.ids.anomaly import AnomalyEngine
from repro.ids.signature import SignatureEngine, default_ruleset
from repro.net.address import IPv4Address, Subnet
from repro.traffic.profiles import ClusterProfile

ATT = IPv4Address("198.18.0.1")


def make_trained_anomaly(sensitivity):
    nodes = list(Subnet("10.0.0.0/24").hosts(4))
    engine = AnomalyEngine(sensitivity=sensitivity)
    trace = ClusterProfile(nodes).generate(30.0, np.random.default_rng(1))
    for t, pkt in trace:
        engine.train(pkt, t)
    engine.freeze()
    return engine, nodes


class TestSlowPortScan:
    def test_probe_pacing(self):
        scan = SlowPortScan(ATT, IPv4Address("10.0.0.5"),
                            ports=range(1, 11), probe_interval_s=30.0)
        trace, rec = scan.generate(0.0, np.random.default_rng(1))
        assert len(trace) == 10
        assert rec.duration >= 9 * 30.0 * 0.9
        assert rec.novel

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlowPortScan(ATT, IPv4Address("10.0.0.5"), probe_interval_s=0)

    def test_evades_signature_thresholds_at_default(self):
        engine = SignatureEngine(default_ruleset(), sensitivity=0.5)
        scan = SlowPortScan(ATT, IPv4Address("10.0.0.5"),
                            ports=range(1, 65), probe_interval_s=30.0)
        trace, _ = scan.generate(0.0, np.random.default_rng(2))
        hits = []
        for t, pkt in trace:
            hits.extend(engine.inspect(pkt, t))
        # windowed portscan rule never accumulates enough distinct ports
        assert all(m.category != "portscan" for m in hits)

    def test_evades_anomaly_at_default(self):
        engine, nodes = make_trained_anomaly(sensitivity=0.5)
        scan = SlowPortScan(ATT, nodes[0], ports=range(1, 65),
                            probe_interval_s=30.0)
        trace, _ = scan.generate(0.0, np.random.default_rng(2))
        scores = []
        for t, pkt in trace:
            scores.extend(engine.inspect(pkt, t))
        # rate and fan-out features never trip at one probe / 30 s
        assert all(f not in ("rate", "fanout") for f, _ in scores)

    def test_fast_variant_is_caught_as_control(self):
        """Control: the same scan at speed IS caught -- the evasion is
        purely temporal."""
        from repro.attacks import PortScan
        engine = SignatureEngine(default_ruleset(), sensitivity=0.5)
        scan = PortScan(ATT, IPv4Address("10.0.0.5"), ports=range(1, 65),
                        rate_pps=100.0)
        trace, _ = scan.generate(0.0, np.random.default_rng(2))
        cats = set()
        for t, pkt in trace:
            cats.update(m.category for m in engine.inspect(pkt, t))
        assert "portscan" in cats
