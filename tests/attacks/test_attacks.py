"""Tests for the attack library."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.address import IPv4Address, Subnet
from repro.net.packet import Protocol, TcpFlags
from repro.net.tcp import SessionTable
from repro.attacks import (
    ATTACK_CLASSES,
    AttackKind,
    BufferOverflowExploit,
    CgiProbe,
    HostSweep,
    IcmpTunnel,
    NovelExploit,
    OVERFLOW_MARKER,
    PortScan,
    SynFlood,
    TelnetBruteForce,
    TrustAbuse,
    UdpFlood,
    make_attack,
    standard_attack_suite,
)
from repro.traffic.payload import shannon_entropy

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")
TGT2 = IPv4Address("10.0.0.6")


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestBase:
    def test_unique_attack_ids(self, rng):
        a = PortScan(ATT, TGT, ports=[80])
        b = PortScan(ATT, TGT, ports=[80])
        assert a.attack_id != b.attack_id

    def test_generate_labels_all_packets(self, rng):
        attack = PortScan(ATT, TGT, ports=range(1, 20))
        trace, record = attack.generate(5.0, rng)
        assert all(r.packet.attack_id == attack.attack_id for r in trace)
        assert record.attack_id == attack.attack_id
        assert record.packets == len(trace) == 19
        assert record.start == 5.0
        assert record.end >= record.start
        assert record.duration >= 0

    def test_generate_time_shift(self, rng):
        attack = HostSweep(ATT, [TGT, TGT2], rate_pps=10.0)
        trace, record = attack.generate(100.0, rng)
        assert trace[0].time >= 100.0
        assert record.start == 100.0


class TestPortScan:
    def test_scans_all_ports_with_syn(self, rng):
        trace, _ = PortScan(ATT, TGT, ports=range(1, 101), rate_pps=1000).generate(0.0, rng)
        ports = {r.packet.dport for r in trace}
        assert ports == set(range(1, 101))
        assert all(r.packet.has_flag(TcpFlags.SYN) for r in trace)
        assert all(r.packet.src == ATT for r in trace)

    def test_rate_controls_duration(self, rng):
        trace, rec = PortScan(ATT, TGT, ports=range(1, 101), rate_pps=100.0,
                              randomize_order=False).generate(0.0, rng)
        assert rec.duration == pytest.approx(1.0, rel=0.3)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            PortScan(ATT, TGT, ports=[])
        with pytest.raises(ConfigurationError):
            PortScan(ATT, TGT, rate_pps=0)


class TestHostSweep:
    def test_covers_all_targets_icmp(self, rng):
        targets = list(Subnet("10.0.1.0/28").hosts(10))
        trace, _ = HostSweep(ATT, targets, probes_per_host=2).generate(0.0, rng)
        assert len(trace) == 20
        assert {r.packet.dst for r in trace} == set(targets)
        assert all(r.packet.proto is Protocol.ICMP for r in trace)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            HostSweep(ATT, [])
        with pytest.raises(ConfigurationError):
            HostSweep(ATT, [TGT], probes_per_host=0)


class TestFloods:
    def test_syn_flood_spoofed_sources(self, rng):
        flood = SynFlood(TGT, rate_pps=1000, duration_s=1.0,
                         spoof_subnet="203.0.113.0/24")
        trace, _ = flood.generate(0.0, rng)
        assert len(trace) == 1000
        spoof = Subnet("203.0.113.0/24")
        sources = {r.packet.src for r in trace}
        assert len(sources) > 100  # widely spoofed
        assert all(s in spoof for s in sources)
        assert all(r.packet.has_flag(TcpFlags.SYN) for r in trace)

    def test_syn_flood_exhausts_session_table(self, rng):
        trace, _ = SynFlood(TGT, rate_pps=500, duration_s=1.0).generate(0.0, rng)
        table = SessionTable(max_sessions=100)
        for r in trace:
            table.feed(r.packet, r.time)
        assert table.evicted > 0
        assert table.half_open_count == 100

    def test_udp_flood_payload_modes(self, rng):
        rnd, _ = UdpFlood(ATT, TGT, rate_pps=100, duration_s=0.5,
                          payload_mode="random").generate(0.0, rng)
        logical, _ = UdpFlood(ATT, TGT, rate_pps=100, duration_s=0.5,
                              payload_mode="logical").generate(0.0, rng)
        http, _ = UdpFlood(ATT, TGT, rate_pps=100, duration_s=0.5,
                           payload_mode="http").generate(0.0, rng)
        assert all(r.packet.payload is not None for r in rnd)
        assert all(r.packet.payload is None and r.packet.payload_len == 512
                   for r in logical)
        blob = b"".join(r.packet.payload for r in http)
        assert b"HTTP/1.0" in blob
        # content realism contrast: random >> http entropy
        h_rnd = shannon_entropy(b"".join(r.packet.payload for r in rnd))
        h_http = shannon_entropy(blob)
        assert h_rnd > 7.5 > h_http

    def test_flood_bad_args(self):
        with pytest.raises(ConfigurationError):
            SynFlood(TGT, rate_pps=0)
        with pytest.raises(ConfigurationError):
            UdpFlood(ATT, TGT, payload_mode="nope")


class TestBruteForce:
    def test_attempts_and_final_success(self, rng):
        attack = TelnetBruteForce(ATT, TGT, attempts=10, rate_per_s=100, succeeds=True)
        trace, rec = attack.generate(0.0, rng)
        payloads = b"".join(r.packet.payload or b"" for r in trace)
        assert payloads.count(b"Login incorrect") == 10
        assert payloads.count(b"Last login") == 1
        assert rec.kind is AttackKind.BRUTE_FORCE
        assert all(r.packet.dport in (23,) or r.packet.sport == 23 for r in trace)

    def test_failure_only(self, rng):
        attack = TelnetBruteForce(ATT, TGT, attempts=5, succeeds=False)
        trace, _ = attack.generate(0.0, rng)
        payloads = b"".join(r.packet.payload or b"" for r in trace)
        assert b"Last login" not in payloads

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            TelnetBruteForce(ATT, TGT, attempts=0)


class TestExploits:
    def test_overflow_contains_marker(self, rng):
        trace, rec = BufferOverflowExploit(ATT, TGT).generate(0.0, rng)
        blob = b"".join(r.packet.payload or b"" for r in trace)
        assert OVERFLOW_MARKER in blob
        assert rec.kind is AttackKind.EXPLOIT
        assert not rec.novel

    def test_cgi_probe_paths_on_port_80(self, rng):
        trace, _ = CgiProbe(ATT, TGT).generate(0.0, rng)
        blob = b"".join(r.packet.payload or b"" for r in trace)
        assert b"/cgi-bin/phf" in blob
        assert b"cmd.exe" in blob
        assert all(80 in (r.packet.dport, r.packet.sport) for r in trace)

    def test_novel_exploit_avoids_known_markers(self, rng):
        trace, rec = NovelExploit(ATT, TGT).generate(0.0, rng)
        blob = b"".join(r.packet.payload or b"" for r in trace)
        assert OVERFLOW_MARKER not in blob
        assert b"cgi-bin" not in blob
        assert rec.novel
        assert shannon_entropy(blob) > 7.0

    def test_overflow_sled_too_small(self):
        with pytest.raises(ConfigurationError):
            BufferOverflowExploit(ATT, TGT, sled_size=2)


class TestInsiderAndTunnel:
    def test_trust_abuse_uses_cluster_protocol(self, rng):
        trace, rec = TrustAbuse(TGT2, TGT, commands=2).generate(0.0, rng)
        assert rec.novel
        assert rec.kind is AttackKind.INSIDER
        blob = b"".join(r.packet.payload or b"" for r in trace)
        assert b"exfil" in blob or b"disable_log" in blob
        assert all(7001 in (r.packet.dport, r.packet.sport) for r in trace)

    def test_icmp_tunnel_high_entropy_pings(self, rng):
        tunnel = IcmpTunnel(TGT2, ATT, total_bytes=4096, chunk=512)
        trace, rec = tunnel.generate(0.0, rng)
        assert rec.kind is AttackKind.TUNNEL
        requests = [r.packet for r in trace if r.packet.src == TGT2]
        assert all(p.proto is Protocol.ICMP for p in requests)
        assert sum(p.payload_len for p in requests) == 4096
        blob = b"".join(p.payload for p in requests)
        assert shannon_entropy(blob) > 7.0

    def test_tunnel_bad_args(self):
        with pytest.raises(ConfigurationError):
            IcmpTunnel(TGT2, ATT, total_bytes=0)


class TestCatalog:
    def test_registry_complete(self):
        assert len(ATTACK_CLASSES) == 11
        covered = {cls.kind for cls in ATTACK_CLASSES.values()}
        assert covered == set(AttackKind)

    def test_make_attack(self):
        attack = make_attack("port-scan", attacker=ATT, target=TGT, ports=[1, 2])
        assert isinstance(attack, PortScan)

    def test_make_attack_unknown(self):
        with pytest.raises(ConfigurationError):
            make_attack("nope")

    def test_standard_suite_covers_all_kinds(self, rng):
        hosts = list(Subnet("10.0.0.0/24").hosts(4))
        suite = standard_attack_suite(ATT, hosts)
        kinds = {attack.kind for _, attack in suite}
        assert kinds == set(AttackKind)
        starts = [t for t, _ in suite]
        assert starts == sorted(starts)

    def test_standard_suite_without_dos(self):
        hosts = list(Subnet("10.0.0.0/24").hosts(4))
        suite = standard_attack_suite(ATT, hosts, include_dos=False)
        assert all(a.kind is not AttackKind.DOS for _, a in suite)

    def test_standard_suite_needs_hosts(self):
        with pytest.raises(ConfigurationError):
            standard_attack_suite(ATT, list(Subnet("10.0.0.0/24").hosts(2)))


class TestScenarioMixer:
    def test_build_merges_and_labels(self, rng):
        from repro.traffic import ClusterProfile, ScenarioBuilder

        nodes = list(Subnet("10.0.0.0/24").hosts(4))
        builder = ScenarioBuilder("mix", duration_s=20.0, seed=3)
        builder.add_background(ClusterProfile(nodes))
        builder.add_attack(5.0, PortScan(ATT, nodes[0], ports=range(1, 30)))
        builder.add_attack(10.0, HostSweep(ATT, nodes))
        scenario = builder.build()
        assert len(scenario.attacks) == 2
        assert scenario.trace.attack_ids() == scenario.attack_ids
        times = [r.time for r in scenario.trace]
        assert times == sorted(times)
        assert scenario.benign_packets > 0
        assert "mix" in scenario.summary()

    def test_scenario_deterministic(self):
        from repro.traffic import ClusterProfile, ScenarioBuilder

        nodes = list(Subnet("10.0.0.0/24").hosts(3))

        def build():
            b = ScenarioBuilder("d", duration_s=10.0, seed=9)
            b.add_background(ClusterProfile(nodes))
            b.add_attack(2.0, PortScan(ATT, nodes[0], ports=range(1, 10)))
            return b.build()

        s1, s2 = build(), build()
        assert len(s1.trace) == len(s2.trace)
        assert [r.time for r in s1.trace] == [r.time for r in s2.trace]

    def test_attack_beyond_duration_rejected(self):
        from repro.traffic import ScenarioBuilder

        b = ScenarioBuilder("x", duration_s=10.0)
        with pytest.raises(ConfigurationError):
            b.add_attack(11.0, PortScan(ATT, TGT, ports=[1]))
