"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTablesAndCatalog:
    def test_tables(self):
        code, text = run(["tables"])
        assert code == 0
        assert "Table 1" in text and "Table 2" in text and "Table 3" in text
        assert "Network Lethal Dose" in text

    def test_catalog_default_table_only(self):
        code, text = run(["catalog"])
        assert code == 0
        assert "Distributed Management" in text
        assert "Quality of Documentation" not in text

    def test_catalog_all(self):
        code, text = run(["catalog", "--all"])
        assert "Quality of Documentation" in text
        assert "low(0):" in text

    def test_catalog_human_factors(self):
        code, text = run(["catalog", "--human-factors"])
        assert "Operator Workload" in text


class TestScenario:
    def test_generate_and_reload(self, tmp_path):
        path = str(tmp_path / "scenario.rtrc")
        code, text = run(["scenario", "--out", path, "--duration", "20",
                          "--no-dos", "--seed", "3"])
        assert code == 0
        assert "attack instances" in text
        from repro.net.trace import Trace

        trace = Trace.load(path)
        assert len(trace) > 0
        assert trace.attack_ids()  # ground truth preserved on disk

    def test_ecommerce_profile(self, tmp_path):
        path = str(tmp_path / "shop.rtrc")
        code, text = run(["scenario", "--out", path, "--profile",
                          "ecommerce", "--duration", "15", "--no-dos"])
        assert code == 0


class TestEvaluateAndSweep:
    def test_quick_evaluate_two_products(self):
        code, text = run(["evaluate", "--quick", "--products", "nid",
                          "manhunt", "--profile", "realtime"])
        assert code == 0
        assert "ranking (realtime):" in text
        assert "sim-nid" in text and "sim-manhunt" in text

    def test_engine_flag_parses_and_defaults(self):
        parser = build_parser()
        assert parser.parse_args(
            ["evaluate", "--quick"]).engine == "indexed"
        assert parser.parse_args(
            ["evaluate", "--engine", "linear"]).engine == "linear"
        assert parser.parse_args(
            ["sweep", "--product", "nid"]).engine == "indexed"
        with pytest.raises(SystemExit):
            parser.parse_args(["evaluate", "--engine", "bogus"])

    def test_quick_evaluate_linear_kernel(self):
        code, text = run(["evaluate", "--quick", "--products", "nid",
                          "--profile", "realtime", "--engine", "linear"])
        assert code == 0
        assert "sim-nid" in text

    def test_sweep_small(self):
        code, text = run(["sweep", "--product", "manhunt", "--points", "2",
                          "--duration", "25"])
        assert code == 0
        assert "Equal Error Rate" in text
        assert "sensitivity" in text


class TestTemplate:
    def test_blank_scorecard_roundtrip(self, tmp_path):
        path = str(tmp_path / "template.json")
        code, text = run(["template", "--out", path,
                          "--products", "ids-a", "ids-b"])
        assert code == 0
        assert "52 metrics" in text
        from repro.core.catalog import default_catalog
        from repro.core.io import load_scorecard

        card = load_scorecard(path, default_catalog())
        assert card.products == ("ids-a", "ids-b")
        assert len(card) == 0  # blank: everything left to score

    def test_human_factors_template(self, tmp_path):
        path = str(tmp_path / "hf.json")
        code, text = run(["template", "--out", path, "--human-factors"])
        assert code == 0
        assert "57 metrics" in text
