"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable in offline environments that lack the
``wheel`` package required by PEP-517 editable builds
(``python setup.py develop`` or ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
