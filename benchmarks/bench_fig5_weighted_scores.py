"""F5 -- Figure 5: the weighted-score computation S_j = sum(U_ij * W_ij).

Evaluates the formula over the full scorecard and benchmarks it; property
checks cover linearity and negative weights.
"""

from repro.core.scoring import weighted_scores
from repro.report.figures import figure5_weighted_scores

from conftest import emit


def test_fig5_weighted_scores(benchmark, field_eval):
    card, weights = field_eval.scorecard, field_eval.weights

    results = benchmark(weighted_scores, card, weights, None, False)
    emit("fig5_weighted_scores", figure5_weighted_scores(results, weights))

    # totals decompose into the three class scores
    for r in results:
        assert r.total == sum(r.class_scores.values())
    # linearity: doubling weights doubles totals
    doubled = weighted_scores(card, {k: 2 * v for k, v in weights.items()},
                              strict=False)
    for r1, r2 in zip(results, doubled):
        assert abs(r2.total - 2 * r1.total) < 1e-9
    # negative weights flip a metric's contribution
    neg = weighted_scores(card, {"Observed False Positive Ratio": -1.0},
                          strict=False)
    for r in neg:
        score = card.score(r.product, "Observed False Positive Ratio")
        assert r.total == -score
