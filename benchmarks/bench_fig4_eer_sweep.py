"""F4 -- Figure 4: error-rate curves vs sensitivity and the Equal Error Rate.

Sweeps the adjustable-sensitivity products and regenerates the two opposed
error curves.  Shape assertions: FNR falls and FPR rises with sensitivity;
the anomaly product reaches a crossing (EER); the coarse signature product
need not (the paper: look for systems where equality *can* be achieved).
"""

from repro.eval.accuracy import sensitivity_sweep
from repro.products import ManhuntProduct, NidProduct
from repro.report.figures import figure4_error_curves

from conftest import emit

SENSITIVITIES = (0.05, 0.15, 0.3, 0.5, 0.7, 0.85, 1.0)


def run_sweeps():
    mh = sensitivity_sweep(lambda s: ManhuntProduct(sensitivity=s),
                           "sim-manhunt", SENSITIVITIES, duration_s=60.0)
    nid = sensitivity_sweep(lambda s: NidProduct(sensitivity=s),
                            "sim-nid", SENSITIVITIES, duration_s=60.0)
    return mh, nid


def test_fig4_eer_sweep(benchmark):
    mh, nid = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    emit("fig4_eer_sweep",
         figure4_error_curves(mh) + "\n\n" + figure4_error_curves(nid))
    # machine-readable series for external plotting
    from repro.report.render import series_to_csv
    emit("fig4_eer_sweep_csv", series_to_csv(
        mh.sensitivities, [mh.fpr, mh.fnr, nid.fpr, nid.fnr],
        ["manhunt_fpr", "manhunt_fnr", "nid_fpr", "nid_fnr"],
        x_label="sensitivity"))

    # monotone-opposed tails for the anomaly product
    assert mh.fnr[0] >= mh.fnr[-1]
    assert mh.fpr[-1] >= mh.fpr[0]
    # and a crossing exists: the adjustable-sensitivity story of Figure 4
    assert mh.eer() is not None
    # the signature product's FNR floors at its novel-attack blind spot, so
    # its curves stay apart at every swept sensitivity
    assert min(nid.fnr) > 0.0
