"""E5 -- section 2.1/4: detection quality depends on the protected traffic.

"Distinguishing between 'normal' and 'anomalous' behavior ... a constrained
application environment may help constrain the definition of normal
behavior making anomaly-based systems more appropriate.  This maxim may
apply to distributed, real-time systems such as those used for cluster
super-computing" (section 2.1); and "IDSs perform differently in the
presence of different kinds of network traffic" (section 4).

Runs the identical attack campaign against the same products under the two
site profiles and compares detection.
"""

from repro.eval.accuracy import run_accuracy
from repro.products import ManhuntProduct, NidProduct
from repro.report.render import text_table

from conftest import emit


def run_matrix():
    out = {}
    for profile in ("cluster", "ecommerce"):
        for factory, name in ((ManhuntProduct, "sim-manhunt"),
                              (NidProduct, "sim-nid")):
            result = run_accuracy(lambda s: factory(sensitivity=s), 0.5,
                                  duration_s=60.0, n_hosts=6,
                                  include_dos=False, profile=profile)
            out[(profile, name)] = result
    return out


def test_e5_traffic_dependence(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for (profile, name), result in matrix.items():
        rows.append((profile, name,
                     f"{len(result.detected)}/{len(result.actual)}",
                     result.false_alarms,
                     f"{result.false_negative_ratio:.4f}"))
    emit("e5_traffic_dependence",
         text_table(("Site profile", "Product", "Detected", "False alarms",
                     "FNR"), rows,
                    title="E5: same attacks, different background traffic"))

    mh_cluster = matrix[("cluster", "sim-manhunt")]
    mh_shop = matrix[("ecommerce", "sim-manhunt")]
    nid_cluster = matrix[("cluster", "sim-nid")]
    nid_shop = matrix[("ecommerce", "sim-nid")]

    # the constrained cluster environment makes the anomaly product
    # strictly more complete than the diverse web-shop traffic does
    assert mh_cluster.detection_ratio >= mh_shop.detection_ratio
    assert mh_cluster.detection_ratio == 1.0
    # signature detection is content-keyed, hence traffic-insensitive
    assert len(nid_cluster.detected) == len(nid_shop.detected)
    # and the anomaly product beats the signature product in *both* sites
    # on completeness (it sees the novel attacks)
    assert mh_cluster.detection_ratio > nid_cluster.detection_ratio
    assert mh_shop.detection_ratio > nid_shop.detection_ratio
