"""E3 -- lesson 1: random flood data is not a valid IDS load test.

"If packets with random data are used to generate background traffic, then
the IDS that analyzes both the header information and message data will not
be realistically tested" (section 4).

Offers identical packet rates and sizes with protocol-realistic versus
random content to a deep-inspection product and a light-touch flow product:
only the content-inspecting sensor's capacity depends on the content.
"""

from repro.eval.throughput import probe_rate
from repro.products import ManhuntProduct, NidProduct
from repro.report.render import text_table

from conftest import emit

DEEP_RATE = 8000.0
LIGHT_RATE = 40000.0


def run_contrast():
    rows = []
    outcomes = {}
    for label, product_cls, rate in (("deep-inspection (sim-nid)",
                                      NidProduct, DEEP_RATE),
                                     ("flow-level (sim-manhunt)",
                                      ManhuntProduct, LIGHT_RATE)):
        for mode in ("http", "random", "logical"):
            probe = probe_rate(product_cls(), rate, duration_s=0.5,
                               payload_mode=mode, seed=3)
            rows.append((label, mode, f"{rate:.0f}",
                         f"{probe.loss_ratio:.4f}"))
            outcomes[(label, mode)] = probe.loss_ratio
    return rows, outcomes


def test_e3_payload_realism(benchmark):
    rows, outcomes = benchmark.pedantic(run_contrast, rounds=1, iterations=1)
    emit("e3_payload_realism",
         text_table(("Sensor class", "Payload content", "Offered pps",
                     "Loss ratio"), rows,
                    title="E3: payload realism vs measured capacity "
                          "(lesson 1)"))

    deep = "deep-inspection (sim-nid)"
    light = "flow-level (sim-manhunt)"
    # a random-data flood understates the deep sensor's load: it measures
    # *more* capacity (less loss) than realistic content produces
    assert outcomes[(deep, "http")] > outcomes[(deep, "random")]
    # the light-touch sensor is (nearly) content-insensitive
    assert abs(outcomes[(light, "http")] - outcomes[(light, "random")]) < 0.05
