"""T1 -- Table 1: selected logistical metrics, definitions and product scores.

Regenerates the paper's Table 1 (metric definitions) and the logistical
slice of the prototype scorecard for the four simulated products.
"""

from repro.core.metric import MetricClass
from repro.report.tables import scorecard_table, table1

from conftest import emit


def test_table1_logistical(benchmark, field_eval):
    def render():
        return table1(field_eval.scorecard.catalog) + "\n\n" + scorecard_table(
            field_eval.scorecard, MetricClass.LOGISTICAL)

    text = benchmark(render)
    emit("table1_logistical", text)
    # the six Table-1 metrics are present with a score for every product
    for name in ("Distributed Management", "Ease of Configuration",
                 "Ease of Policy Maintenance", "License Management",
                 "Outsourced Solution", "Platform Requirements"):
        assert name in text
        for product in field_eval.scorecard.products:
            assert field_eval.scorecard.score(product, name) is not None
