"""F3 -- Figure 3: false positive / false negative quantities on a run.

Computes the A/D/T sets and the two Figure-3 ratios for every evaluated
product, and benchmarks the ground-truth scoring pass.
"""

from repro.eval.ground_truth import score_alerts
from repro.eval.testbed import EvalTestbed
from repro.products import NidProduct
from repro.report.figures import figure3_error_ratios

from conftest import emit


def test_fig3_error_ratios(benchmark, field_eval):
    blocks = []
    for name, evaluation in field_eval.evaluations.items():
        blocks.append(figure3_error_ratios(evaluation.accuracy))
    emit("fig3_error_ratios", "\n\n".join(blocks))

    for evaluation in field_eval.evaluations.values():
        acc = evaluation.accuracy
        acc.check_invariants()
        assert acc.transactions >= len(acc.actual)

    # benchmark the scoring pass itself on a fresh run's alert stream
    testbed = EvalTestbed(NidProduct(), n_hosts=4, train_duration_s=0)
    scenario = testbed.make_scenario(duration_s=40.0)
    testbed.run_scenario(scenario)
    monitor = testbed.deployment.monitor
    benchmark(score_alerts, "sim-nid", scenario, monitor.alerts,
              monitor.notifications)
