"""E4 -- section-3.3 weighting guidance: the same scorecard, three customers.

"The evaluation may be reused with the metrics given different weighting
according to the needs of the next customer."  Re-weights the E1 scorecard
under the real-time, distributed-trust and e-commerce profiles without
re-measuring anything, and shows how emphasis (and potentially ranking)
shifts.
"""

from repro.core.profiles import (
    distributed_requirements,
    ecommerce_requirements,
    realtime_cluster_requirements,
)
from repro.core.scoring import rank_products, weighted_scores
from repro.core.weighting import derive_weights
from repro.report.render import text_table

from conftest import emit


def test_e4_requirement_profiles(benchmark, field_eval):
    card = field_eval.scorecard
    catalog = card.catalog
    profiles = {
        "realtime-cluster": realtime_cluster_requirements(),
        "distributed-trust": distributed_requirements(),
        "ecommerce-web": ecommerce_requirements(),
    }

    def reweigh_all():
        out = {}
        for name, profile in profiles.items():
            weights = derive_weights(profile, catalog)
            out[name] = weighted_scores(card, weights, strict=False)
        return out

    all_results = benchmark(reweigh_all)

    rows = []
    for name, results in all_results.items():
        for rank, r in enumerate(rank_products(results), start=1):
            rows.append((name, rank, r.product, f"{r.total:.1f}"))
    emit("e4_requirement_profiles",
         text_table(("Profile", "Rank", "Product", "Total"), rows,
                    title="E4: rankings under three requirement profiles"))

    # structural checks on the weighting guidance itself
    w_rt = derive_weights(profiles["realtime-cluster"], catalog)
    w_dist = derive_weights(profiles["distributed-trust"], catalog)
    # real-time: reaction channels carry the top weight
    top_rt = max(w_rt.values())
    assert w_rt["Timeliness"] == top_rt
    assert w_rt["Firewall Interaction"] == top_rt
    # distributed: FNR outweighs FPR ("reducing the false negative ratio to
    # the lowest possible level accepting an increased false positive ...")
    assert w_dist["Observed False Negative Ratio"] > \
        w_dist["Observed False Positive Ratio"]
    # and the totals genuinely differ between customer profiles
    totals = {name: tuple(r.total for r in results)
              for name, results in all_results.items()}
    assert totals["realtime-cluster"] != totals["ecommerce-web"]
