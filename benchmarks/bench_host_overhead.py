"""E2 -- section-2.1 host-overhead calibration.

"Nominal event-logging support for host IDSs has been shown to consume
three to five percent of the monitored host's resources.  Logging compliant
with Department of Defense C2-level security requires as much as twenty
percent of the host's processing power."
"""

from repro.eval.overhead import logging_level_overhead
from repro.ids.host import LoggingLevel
from repro.report.render import text_table

from conftest import emit


def test_e2_host_overhead(benchmark):
    nominal = benchmark(logging_level_overhead, LoggingLevel.NOMINAL, 10.0)
    c2 = logging_level_overhead(LoggingLevel.C2, 10.0)

    rows = [
        ("nominal event logging", f"{nominal:.1%}", "3-5% (paper)"),
        ("C2-level audit", f"{c2:.1%}", "~20% (paper)"),
    ]
    emit("e2_host_overhead",
         text_table(("Logging level", "Measured host CPU", "Paper"),
                    rows, title="E2: host-based IDS overhead (section 2.1)"))

    assert 0.03 <= nominal <= 0.05
    assert abs(c2 - 0.20) <= 0.01
