"""F2 -- Figure 2: the subprocess cardinality rules, accepted and enforced.

Renders the cardinality table and benchmarks the wiring validator on a
large legal deployment; asserts every illegal shape is rejected.
"""

import pytest

from repro.errors import CardinalityError
from repro.ids.component import Component, Subprocess, validate_wiring
from repro.report.figures import figure2_cardinality

from conftest import emit


class _C(Component):
    def __init__(self, name, kind):
        super().__init__(name)
        self.kind = kind


def build_large_legal(n_sensors=32, n_analyzers=8):
    lb = _C("lb", Subprocess.LOAD_BALANCER)
    sensors = [_C(f"s{i}", Subprocess.SENSOR) for i in range(n_sensors)]
    analyzers = [_C(f"a{i}", Subprocess.ANALYZER) for i in range(n_analyzers)]
    monitor = _C("m", Subprocess.MONITOR)
    manager = _C("mgr", Subprocess.MANAGER)
    links = [(lb, s) for s in sensors]
    links += [(s, a) for s in sensors for a in analyzers]
    links += [(a, monitor) for a in analyzers]
    links.append((monitor, manager))
    mgmt = [(manager, c) for c in (lb, *sensors, *analyzers, monitor)]
    return [lb, *sensors, *analyzers, monitor, manager], links, mgmt


def test_fig2_cardinality(benchmark):
    emit("fig2_cardinality", figure2_cardinality())
    comps, links, mgmt = build_large_legal()
    benchmark(validate_wiring, comps, links, mgmt)

    # every illegal shape from Figure 2 is rejected
    s, a, m = (_C("s", Subprocess.SENSOR), _C("a", Subprocess.ANALYZER),
               _C("m", Subprocess.MONITOR))
    b1, b2 = _C("b1", Subprocess.LOAD_BALANCER), _C("b2", Subprocess.LOAD_BALANCER)
    with pytest.raises(CardinalityError):   # sensor with two balancers
        validate_wiring([b1, b2, s, a, m],
                        [(b1, s), (b2, s), (s, a), (a, m)])
    with pytest.raises(CardinalityError):   # skip-level link
        validate_wiring([s, a, m], [(s, m), (s, a), (a, m)])
    with pytest.raises(CardinalityError):   # two monitors
        m2 = _C("m2", Subprocess.MONITOR)
        validate_wiring([s, a, m, m2], [(s, a), (a, m), (a, m2)])
