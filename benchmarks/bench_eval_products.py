"""E1 -- the section-3.2 prototype evaluation: four products, full scorecard.

Regenerates the complete weighted evaluation under the real-time-cluster
requirement profile and prints the ranking.  Benchmarks a single-product
evaluation pass.

Run directly for the parallel-harness speedup measurement::

    python benchmarks/bench_eval_products.py --workers 4

times the full four-product field evaluation serially and through the
process-pool harness, verifies the outputs are byte-identical, and reports
the wall-clock speedup (>= 2x expected on a 4-core runner).
"""

import argparse
import dataclasses
import os
import sys
import time

from repro.core.profiles import realtime_cluster_requirements
from repro.core.report import format_weighted_results
from repro.core.scoring import rank_products
from repro.eval.runner import EvaluationOptions, evaluate_field, evaluate_product
from repro.products import NidProduct
from repro.report.tables import scorecard_table

try:
    from conftest import emit
except ImportError:  # direct `python benchmarks/bench_eval_products.py` run
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

QUICK = EvaluationOptions(
    scenario_duration_s=40.0, train_duration_s=15.0, n_hosts=4,
    throughput_rates_pps=(500, 4000, 32000), throughput_probe_s=0.4)


def test_e1_full_product_evaluation(benchmark, field_eval):
    text = (format_weighted_results(field_eval.results) + "\n\n" +
            scorecard_table(field_eval.scorecard, table_only=False))
    emit("e1_eval_products", text)

    # a complete scorecard: all 52 metrics scored for all 4 products
    for product in field_eval.scorecard.products:
        assert field_eval.scorecard.missing(product) == []
    assert len(field_eval.scorecard) == 4 * 52

    # qualitative ranking under the real-time profile: the scalable,
    # reactive, accurate anomaly farm leads; the research prototype trails
    ranking = field_eval.ranking()
    assert ranking[0] == "sim-manhunt"
    assert ranking[-1] == "sim-aafid"

    # benchmark one full single-product pass (quick configuration)
    benchmark.pedantic(evaluate_product, args=(NidProduct, QUICK),
                       rounds=1, iterations=1)


def _render(field) -> str:
    return (format_weighted_results(field.results) + "\n\n" +
            scorecard_table(field.scorecard, table_only=False))


def main(argv=None) -> int:
    """Serial-vs-parallel wall-clock comparison of the E1 field evaluation."""
    from conftest import E1_OPTIONS, PRODUCT_FACTORIES

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="use the quick configuration instead of E1")
    parser.add_argument("--cache-dir", default=None,
                        help="also exercise the on-disk result cache")
    args = parser.parse_args(argv)

    base = QUICK if args.quick else E1_OPTIONS
    serial = dataclasses.replace(base, workers=1, cache_dir=None)
    parallel = dataclasses.replace(base, workers=args.workers,
                                   cache_dir=args.cache_dir)
    factories = list(PRODUCT_FACTORIES)
    requirements = realtime_cluster_requirements()

    print(f"serial field evaluation ({len(factories)} products)...")
    t0 = time.perf_counter()
    f_serial = evaluate_field(factories, requirements, serial)
    t_serial = time.perf_counter() - t0
    print(f"  {t_serial:.2f}s")

    print(f"parallel field evaluation (workers={args.workers})...")
    t0 = time.perf_counter()
    f_parallel = evaluate_field(factories, requirements, parallel)
    t_parallel = time.perf_counter() - t0
    print(f"  {t_parallel:.2f}s")

    identical = _render(f_serial) == _render(f_parallel)
    speedup = t_serial / max(t_parallel, 1e-9)
    cores = os.cpu_count() or 1
    print(f"\nrendered outputs byte-identical: {identical}")
    print(f"speedup: {speedup:.2f}x on {cores} core(s)")
    if cores < args.workers:
        print(f"note: only {cores} core(s) available; pool overhead "
              f"dominates below workers={args.workers} cores")
    if args.cache_dir:
        t0 = time.perf_counter()
        f_cached = evaluate_field(factories, requirements, parallel)
        t_cached = time.perf_counter() - t0
        print(f"cached re-run: {t_cached:.2f}s "
              f"({t_serial / max(t_cached, 1e-9):.0f}x vs serial), "
              f"identical: {_render(f_cached) == _render(f_serial)}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
