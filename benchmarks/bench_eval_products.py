"""E1 -- the section-3.2 prototype evaluation: four products, full scorecard.

Regenerates the complete weighted evaluation under the real-time-cluster
requirement profile and prints the ranking.  Benchmarks a single-product
evaluation pass.
"""

from repro.core.report import format_weighted_results
from repro.core.scoring import rank_products
from repro.eval.runner import EvaluationOptions, evaluate_product
from repro.products import NidProduct
from repro.report.tables import scorecard_table

from conftest import emit

QUICK = EvaluationOptions(
    scenario_duration_s=40.0, train_duration_s=15.0, n_hosts=4,
    throughput_rates_pps=(500, 4000, 32000), throughput_probe_s=0.4)


def test_e1_full_product_evaluation(benchmark, field_eval):
    text = (format_weighted_results(field_eval.results) + "\n\n" +
            scorecard_table(field_eval.scorecard, table_only=False))
    emit("e1_eval_products", text)

    # a complete scorecard: all 52 metrics scored for all 4 products
    for product in field_eval.scorecard.products:
        assert field_eval.scorecard.missing(product) == []
    assert len(field_eval.scorecard) == 4 * 52

    # qualitative ranking under the real-time profile: the scalable,
    # reactive, accurate anomaly farm leads; the research prototype trails
    ranking = field_eval.ranking()
    assert ranking[0] == "sim-manhunt"
    assert ranking[-1] == "sim-aafid"

    # benchmark one full single-product pass (quick configuration)
    benchmark.pedantic(evaluate_product, args=(NidProduct, QUICK),
                       rounds=1, iterations=1)
