"""A3 -- ablation: passive SPAN tap vs in-line sensor placement.

Section 2.2 names the two costs of getting traffic to the IDS: "induced
latency of traffic (because the load balancer is in-line or because traffic
must be mirrored to it)".  The two deployment choices fail differently:

* **in-line** -- every packet pays a forwarding delay, but the sensor sees
  everything the path carries (up to the element's own capacity);
* **passive SPAN** -- production traffic is untouched, but the mirror port
  is a finite link: beyond its rate, *copies* are silently dropped and the
  sensor loses visibility exactly when attacks ride the overload.

Measured at rising offered rates: visibility fraction (tap-delivered /
offered) and added production-path latency.
"""

import numpy as np

from repro.eval.throughput import make_load_trace
from repro.net.address import IPv4Address
from repro.net.link import Link
from repro.net.node import Switch
from repro.report.render import text_table
from repro.sim.engine import Engine

from conftest import emit

DST = IPv4Address("10.0.0.5")
SPAN_BW = 20e6          # an underprovisioned 20 Mbps mirror port
INLINE_DELAY = 200e-6   # the in-line element's forwarding delay


def probe(rate_pps: float, inline: bool, seed: int = 6):
    eng = Engine()
    seen = []
    delivered = []

    if inline:
        # production path: ingress -> inline sensor hop -> egress link
        egress = Link(eng, bandwidth_bps=1e9, propagation_delay=0.0,
                      sink=lambda p: delivered.append(eng.now))

        def path(pkt):
            seen.append(pkt)
            eng.schedule(INLINE_DELAY, egress.send, pkt)
    else:
        sw = Switch(eng)
        egress = Link(eng, bandwidth_bps=1e9, propagation_delay=0.0,
                      sink=lambda p: delivered.append(eng.now))
        span = Link(eng, bandwidth_bps=SPAN_BW, propagation_delay=0.0,
                    queue_bytes=64 * 1024, sink=seen.append)
        sw.attach(DST, egress)
        sw.add_span(span)
        path = sw.receive

    rng = np.random.default_rng(seed)
    trace = make_load_trace(rng, rate_pps, 0.5, DST, payload_mode="logical",
                            payload_size=800)
    sends = []
    for t, pkt in trace:
        sends.append(t)
        eng.schedule_at(t, path, pkt)
    eng.run(until=2.0)

    visibility = len(seen) / len(trace)
    mean_latency = float(np.mean([d - s for s, d in zip(sends, delivered)]))
    return visibility, mean_latency


def run_sweep():
    rows = []
    outcomes = {}
    for rate in (1000.0, 4000.0, 16000.0):
        for inline in (False, True):
            vis, lat = probe(rate, inline)
            label = "in-line" if inline else "span"
            rows.append((f"{rate:.0f}", label, f"{vis:.3f}",
                         f"{lat * 1e6:.0f}"))
            outcomes[(rate, label)] = (vis, lat)
    return rows, outcomes


def test_a3_tap_placement(benchmark):
    rows, outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("a3_ablation_tap",
         text_table(("Offered pps", "Placement", "Visibility",
                     "Added latency (us)"), rows,
                    title="A3: passive SPAN vs in-line sensor placement"))

    # low rate: both see everything; only in-line adds latency
    assert outcomes[(1000.0, "span")][0] == 1.0
    assert outcomes[(1000.0, "in-line")][0] == 1.0
    assert outcomes[(1000.0, "in-line")][1] > outcomes[(1000.0, "span")][1]
    # high rate: the mirror port saturates (800B * 16kpps >> 20 Mbps) and
    # the passive sensor goes partially blind; in-line still sees all
    assert outcomes[(16000.0, "span")][0] < 0.5
    assert outcomes[(16000.0, "in-line")][0] == 1.0
    # production latency stays flat for the SPAN deployment at every rate
    assert outcomes[(16000.0, "span")][1] < 50e-6
