"""A1 -- ablation: load-balancing strategies under rising offered load.

Section 2.2: "Individual, statically placed sensors may overload or starve,
and the protection of the network will be uneven ... High-bandwidth load
balancers may allow the IDS to collect traffic higher up in the network ...
The result will be more efficient use of sensors."

Same four-sensor farm, four strategies, skewed traffic matrix (most flows
target one subnet): measures loss and Jain-fairness of sensor assignment.
"""

import numpy as np

from repro.eval.throughput import make_load_trace
from repro.ids.loadbalancer import (
    DynamicBalancer,
    HashBalancer,
    StaticPlacementBalancer,
)
from repro.ids.sensor import Sensor
from repro.net.address import IPv4Address
from repro.report.render import text_table
from repro.sim.engine import Engine

from conftest import emit


class _Null:
    sensitivity = 0.5

    def process(self, p, t):
        return []

    def reset(self):
        pass


def make_farm(eng, n=4):
    return [Sensor(eng, f"s{i}", _Null(), ops_rate=8e6, header_ops=500.0,
                   per_byte_ops=10.0, max_queue_delay_s=0.05,
                   lethal_drop_rate=None)
            for i in range(n)]


def skewed_trace(rng, rate, duration):
    """80% of flows to one /26, the rest spread over the /24."""
    hot = IPv4Address("10.0.0.5")
    cold = [IPv4Address(f"10.0.0.{65 + i}") for i in range(8)]
    trace = make_load_trace(rng, rate, duration, hot)
    records = []
    for i, (t, pkt) in enumerate(trace):
        if i % 5 == 0:
            pkt.dst = cold[i % len(cold)]
        records.append((t, pkt))
    return records


def run_strategy(strategy, rate=20_000.0, duration=0.5, seed=4):
    eng = Engine()
    sensors = make_farm(eng)
    if strategy == "static":
        lb = StaticPlacementBalancer(
            eng, "lb", sensors,
            subnets=["10.0.0.0/26", "10.0.0.64/26", "10.0.0.128/26",
                     "10.0.0.192/26"])
    elif strategy == "hash":
        lb = HashBalancer(eng, "lb", sensors)
    else:
        lb = DynamicBalancer(eng, "lb", sensors)
    rng = np.random.default_rng(seed)
    for t, pkt in skewed_trace(rng, rate, duration):
        eng.schedule_at(t, lb.ingest, pkt)
    eng.run(until=duration + 1.0)
    dropped = sum(s.dropped_overload for s in sensors)
    offered = lb.forwarded + lb.dropped
    starved = sum(1 for s in sensors if s.received == 0)
    return {
        "loss": dropped / max(offered, 1),
        "evenness": lb.balance_evenness(),
        "starved": starved,
    }


def test_a1_loadbalancer_ablation(benchmark):
    outcomes = {s: run_strategy(s) for s in ("static", "hash", "dynamic")}
    rows = [(s, f"{o['loss']:.4f}", f"{o['evenness']:.3f}", o["starved"])
            for s, o in outcomes.items()]
    emit("a1_ablation_loadbalancer",
         text_table(("Strategy", "Loss ratio", "Jain evenness",
                     "Starved sensors"), rows,
                    title="A1: load-balancing strategies under skewed load"))

    # static placement overloads the hot sensor and starves others
    assert outcomes["static"]["evenness"] < outcomes["dynamic"]["evenness"]
    assert outcomes["static"]["loss"] > outcomes["dynamic"]["loss"]
    assert outcomes["static"]["starved"] >= 1
    # dynamic balances best
    assert outcomes["dynamic"]["evenness"] >= outcomes["hash"]["evenness"] - 0.05
    assert outcomes["dynamic"]["starved"] == 0

    benchmark.pedantic(run_strategy, args=("dynamic",),
                       kwargs={"rate": 10_000.0, "duration": 0.3},
                       rounds=1, iterations=1)
