"""F1 -- Figure 1: the generalized architecture, exercised end-to-end.

Renders the deployed architecture and benchmarks packet transit through the
full pipeline (border tap -> balancer -> sensors -> analyzer -> monitor).
"""

import numpy as np

from repro.eval.testbed import EvalTestbed
from repro.eval.throughput import make_load_trace
from repro.products import RealSecureProduct
from repro.report.figures import figure1_architecture

from conftest import emit


def test_fig1_architecture_pipeline(benchmark):
    testbed = EvalTestbed(RealSecureProduct(), n_hosts=4, train_duration_s=0)
    pipeline = testbed.deployment.pipeline
    emit("fig1_architecture", figure1_architecture(pipeline))

    rng = np.random.default_rng(1)
    trace = make_load_trace(rng, 2000.0, 1.0, testbed.node_addresses[0])

    def run_pipeline():
        tb = EvalTestbed(RealSecureProduct(), n_hosts=4, train_duration_s=0)
        trace.replay(tb.engine, tb.deployment.ingest)
        tb.engine.run(until=2.0)
        return tb.deployment.packets_processed

    processed = benchmark(run_pipeline)
    assert processed == len(trace)  # full architecture keeps up at 2k pps
