"""T3 -- Table 3: selected performance metrics, definitions and scores.

The full laboratory battery behind this slice: accuracy scenario, load
sweep, latency, timeliness and host overhead.  Shape checks follow the
paper's qualitative story.
"""

from repro.core.metric import MetricClass
from repro.report.tables import scorecard_table, table3

from conftest import emit


def test_table3_performance(benchmark, field_eval):
    card = field_eval.scorecard

    def render():
        return table3(card.catalog) + "\n\n" + scorecard_table(
            card, MetricClass.PERFORMANCE)

    text = benchmark(render)
    emit("table3_performance", text)

    # accuracy: anomaly product has the best FNR, worst FPR
    fnr = {p: card.score(p, "Observed False Negative Ratio")
           for p in card.products}
    fpr = {p: card.score(p, "Observed False Positive Ratio")
           for p in card.products}
    assert fnr["sim-manhunt"] == max(fnr.values())
    assert fpr["sim-manhunt"] == min(fpr.values())
    # the host-agent prototype misses most of the corpus
    assert fnr["sim-aafid"] == min(fnr.values())

    # failure behaviour reproduces the three anchors
    err = {p: card.score(p, "Error Reporting and Recovery")
           for p in card.products}
    assert err["sim-realsecure"] == 4   # restart + near-real-time report
    assert err["sim-nid"] == 2          # cold reboot

    # host impact: C2-audit agents are the heaviest
    impact = {p: card.score(p, "Operational Performance Impact")
              for p in card.products}
    assert impact["sim-aafid"] == min(impact.values())

    # response interactions match declared capabilities
    assert card.score("sim-nid", "Firewall Interaction") == 4
    assert card.score("sim-aafid", "Firewall Interaction") == 0
    assert card.score("sim-manhunt", "SNMP Interaction") >= 2

    # load metrics: the sensor farm sustains the most
    zl = {p: field_eval.evaluations[p].throughput.zero_loss_pps
          for p in card.products}
    assert zl["sim-manhunt"] >= zl["sim-nid"]
