"""T2 -- Table 2: selected architectural metrics, definitions and scores.

Shape check: the dynamic-balancer product tops Scalable Load-balancing; the
host-agent product tops Host-based and bottoms Network-based.
"""

from repro.core.metric import MetricClass
from repro.report.tables import scorecard_table, table2

from conftest import emit


def test_table2_architectural(benchmark, field_eval):
    card = field_eval.scorecard

    def render():
        return table2(card.catalog) + "\n\n" + scorecard_table(
            card, MetricClass.ARCHITECTURAL)

    text = benchmark(render)
    emit("table2_architectural", text)

    slb = {p: card.score(p, "Scalable Load-balancing") for p in card.products}
    assert slb["sim-manhunt"] == 4          # intelligent dynamic LB
    assert slb["sim-aafid"] == 0            # none
    assert card.score("sim-aafid", "Host-based") == 4
    assert card.score("sim-aafid", "Network-based") == 0
    assert card.score("sim-nid", "Network-based") == 4
    # throughput ordering: the flow-based farm leads, single deep box trails
    st = {p: card.score(p, "System Throughput") for p in card.products}
    assert st["sim-manhunt"] >= st["sim-nid"]
