"""E6 -- how subjective is the weighting, really?

Section 3.3 concedes that "mapping these requirements to numeric weights
will always be somewhat subjective".  This bench quantifies the exposure
for the E1 evaluation: Monte-Carlo perturbation of the real-time-cluster
weights and the pairwise decision margins.
"""

import pytest

from repro.core.robustness import pairwise_margin, ranking_robustness
from repro.report.render import text_table

from conftest import emit


def test_e6_weight_robustness(benchmark, field_eval):
    card, weights = field_eval.scorecard, field_eval.weights

    report = benchmark.pedantic(
        ranking_robustness, args=(card, weights),
        kwargs={"samples": 400, "perturbation": 0.3, "seed": 0},
        rounds=1, iterations=1)

    ranking = list(report.baseline_ranking)
    rows = [("winner stability (±30% weights)",
             f"{report.winner_stability:.1%}"),
            ("full-ranking stability", f"{report.ranking_stability:.1%}")]
    for product, rate in sorted(report.win_rates.items(), key=lambda kv: -kv[1]):
        rows.append((f"win rate: {product}", f"{rate:.1%}"))
    for a, b in zip(ranking, ranking[1:]):
        rows.append((f"margin {a} vs {b}",
                     f"{pairwise_margin(card, weights, a, b):+.3f}"))
    emit("e6_weight_robustness",
         text_table(("Quantity", "Value"), rows,
                    title="E6: ranking robustness under weight perturbation"))

    # the E1 winner is not a knife-edge artifact of subjective weights
    assert report.winner_stability >= 0.9
    assert sum(report.win_rates.values()) == pytest.approx(1.0)
    # margins are ordered consistently with the ranking
    assert pairwise_margin(card, weights, ranking[0], ranking[-1]) > 0
