"""F6 -- Figure 6: the requirement-to-metric weighting worked example.

Reproduces the figure's printed metric weights {3, 6.5, 5, 0, 0, 8} from
requirement weights {1, 2.5, 3, 5} and benchmarks the derivation over a
realistic profile against the full catalog.
"""

from repro.core.catalog import default_catalog
from repro.core.profiles import realtime_cluster_requirements
from repro.core.weighting import derive_weights, figure6_example
from repro.report.figures import figure6_weight_mapping

from conftest import emit


def test_fig6_weight_mapping(benchmark):
    reqs, weights = figure6_example()
    emit("fig6_weight_mapping", figure6_weight_mapping(reqs, weights))

    # the paper's printed numbers, exactly
    assert weights == {"M1": 3.0, "M2": 6.5, "M3": 5.0,
                       "M4": 0.0, "M5": 0.0, "M6": 8.0}

    catalog = default_catalog()
    profile = realtime_cluster_requirements()
    derived = benchmark(derive_weights, profile, catalog)
    assert len(derived) == len(catalog)
    # every metric weight is the sum of its contributing requirements
    contributions = profile.contributions()
    for metric, reqs_for in contributions.items():
        assert derived[metric] == sum(r.weight for r in reqs_for)
