"""K2 -- the evaluation data plane: corpus + batched trace I/O + fast anomaly.

Times one "battery" of product passes over an anomaly-heavy traffic mix
two ways and reports end-to-end packets/second for each:

* **reference** -- what every pass cost before this data plane existed:
  regenerate the mix from the traffic generators, round-trip it through
  the v1 per-record codec loops (``Trace._write``/``Trace._read``, kept
  in-tree as the reference implementation), replay it through eager
  per-record scheduling (``mode="scheduled"``), and score every packet on
  the baseline anomaly path.
* **fast** -- the shipped path: the mix is generated once into a
  :class:`repro.eval.corpus.TraceCorpus` (cold pass), every later pass
  loads the stored ``.rtrc`` through the batched mmap decoder (the
  corpus's in-memory share is cleared between passes so each warm pass
  models a fresh pool worker hitting the disk corpus), replays it through
  the single-cursor batched mode, and scores on the fast anomaly path.

The run *gates on transcript equality first*: both pipelines must produce
identical pid-free transcripts -- ``(packet index, feature, score)`` per
anomaly hit, in order, at several sensitivities -- before any timing is
reported.  The gate also replays the fast pipeline twice (cold corpus,
then warm) so a corpus hit that decoded differently from the generator
output fails loudly instead of "winning".

Traffic diet: the canonical cluster accuracy scenario (service variety,
ICMP heartbeats, the labeled attack campaign -- what actually exercises
the anomaly features) plus benign HTTP load in the battery's ~2:1
load:scenario proportion.

Timing methodology: the two pipelines are interleaved A/B within each
repetition (alternating which goes first) and the best-of-N time per
pipeline is kept.  Each timed side runs ``--passes`` full passes (default
4, one per product in the battery); the fast side pays its cold
generate+store inside the timed region.

Run directly for the speedup measurement and JSON baseline::

    python benchmarks/bench_trace_dataplane.py --json BENCH_trace_dataplane.json

CI runs a reduced smoke configuration::

    python benchmarks/bench_trace_dataplane.py --packets 9000 --reps 2 --min-speedup 1.2
"""

import argparse
import io
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.eval.corpus import TraceCorpus
from repro.eval.testbed import cluster_scenario
from repro.eval.throughput import make_load_trace
from repro.ids.anomaly import AnomalyEngine
from repro.net.address import IPv4Address
from repro.net.trace import Trace
from repro.sim.engine import Engine

#: Sensitivities the equality gate replays the traffic at.  0.5 is the
#: battery default; the others move the detection threshold across several
#: of the anomaly features' score plateaus in both directions.
GATE_SENSITIVITIES = (0.3, 0.5, 0.85)

#: Fraction of the mix used to train the anomaly baseline in each pass.
TRAIN_FRACTION = 0.25


# ----------------------------------------------------------------------
# traffic
# ----------------------------------------------------------------------
def build_mix(packets: int, seed: int) -> Trace:
    """Anomaly-heavy mix: cluster scenario + benign HTTP load, as a Trace.

    Two thirds of the budget comes from the cluster scenario (background
    services, ICMP heartbeats, the attack campaign), the rest from the
    throughput generator's HTTP load, offset past the scenario so time
    stays monotone like in a real battery run.
    """
    nodes = [IPv4Address(f"10.0.0.{i}") for i in range(1, 9)]
    scenario = cluster_scenario(nodes, duration_s=60.0, seed=seed)
    scen = list(scenario.trace)[:max(2 * packets // 3, 1)]

    n_load = max(packets - len(scen), 1)
    rng = np.random.default_rng(seed + 1000)
    load = make_load_trace(rng, rate_pps=1000.0, duration_s=n_load / 1000.0,
                           dst=nodes[4])
    t0 = scen[-1][0] + 1.0
    mix = Trace("bench-mix")
    for t, p in scen:
        mix.append(t, p)
    for t, p in load:
        mix.append(t0 + t, p)
    return mix


# ----------------------------------------------------------------------
# one pass: train, freeze, replay, score
# ----------------------------------------------------------------------
def score_trace(trace: Trace, path: str, replay_mode: str,
                sensitivity: float):
    """Pid-free transcript of one product pass over ``trace``.

    Trains the anomaly baseline on the leading ``TRAIN_FRACTION`` of the
    mix, freezes, then replays the whole trace through the simulation
    engine in ``replay_mode`` and inspects every delivered packet on the
    anomaly ``path``.
    """
    anomaly = AnomalyEngine(sensitivity=sensitivity, path=path)
    records = list(trace)
    for t, pkt in records[:max(int(len(records) * TRAIN_FRACTION), 1)]:
        anomaly.train(pkt, t)
    anomaly.freeze()

    sim = Engine()
    transcript = []
    index = 0

    def sink(pkt) -> None:
        nonlocal index
        for feature, score in anomaly.inspect(pkt, sim.now):
            transcript.append((index, feature, score))
        index += 1

    trace.replay(sim, sink, mode=replay_mode)
    sim.run()
    return transcript


def reference_pass(packets: int, seed: int, sensitivity: float = 0.5):
    """Regenerate + v1 loop codec + scheduled replay + baseline anomaly."""
    mix = build_mix(packets, seed)
    buf = io.BytesIO()
    mix._write(buf)          # the kept-in-tree v1 reference codec
    buf.seek(0)
    mix = Trace._read(buf, "bench-mix")
    return score_trace(mix, path="baseline", replay_mode="scheduled",
                       sensitivity=sensitivity)


def fast_pass(corpus: TraceCorpus, packets: int, seed: int,
              sensitivity: float = 0.5):
    """Corpus fetch (batched mmap decode when warm) + batched replay +
    fast anomaly.  The in-memory share is cleared first so every warm
    pass models a fresh pool worker reading the disk corpus."""
    corpus._memory.clear()
    mix = corpus.trace("bench-mix", (packets, seed),
                       lambda: build_mix(packets, seed))
    return score_trace(mix, path="fast", replay_mode="batched",
                       sensitivity=sensitivity)


# ----------------------------------------------------------------------
# equality gate
# ----------------------------------------------------------------------
def check_equality(corpus: TraceCorpus, packets: int, seed: int) -> int:
    """Assert both pipelines agree at every gate sensitivity.

    The fast pipeline runs twice per sensitivity -- once against a cold
    corpus (generator output) and once warm (``.rtrc`` round trip) -- so
    codec lossiness would also trip the gate.  Returns the number of
    transcript entries replayed.
    """
    total = 0
    for s in GATE_SENSITIVITIES:
        expected = reference_pass(packets, seed, sensitivity=s)
        shutil.rmtree(corpus.root, ignore_errors=True)
        cold = fast_pass(corpus, packets, seed, sensitivity=s)
        warm = fast_pass(corpus, packets, seed, sensitivity=s)
        for name, got in (("cold", cold), ("warm", warm)):
            assert got == expected, (
                f"data-plane divergence at sensitivity {s} ({name} corpus): "
                f"reference produced {len(expected)} transcript entries, "
                f"fast produced {len(got)}")
        total += len(expected)
    return total


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def time_pipelines(corpus: TraceCorpus, packets: int, seed: int,
                   passes: int, reps: int):
    """Interleaved A/B best-of-N seconds per pipeline: {name: seconds}.

    One timed side = ``passes`` full end-to-end passes (the battery runs
    one per product).  The fast side starts from an empty corpus each rep,
    so its cold generate+store is inside the timed region.
    """
    best = {"reference": float("inf"), "fast": float("inf")}

    def run_reference() -> float:
        t0 = time.perf_counter()
        for _ in range(passes):
            reference_pass(packets, seed)
        return time.perf_counter() - t0

    def run_fast() -> float:
        shutil.rmtree(corpus.root, ignore_errors=True)
        t0 = time.perf_counter()
        for _ in range(passes):
            fast_pass(corpus, packets, seed)
        return time.perf_counter() - t0

    sides = {"reference": run_reference, "fast": run_fast}
    for rep in range(reps):
        order = (("reference", "fast") if rep % 2 == 0
                 else ("fast", "reference"))
        for name in order:
            best[name] = min(best[name], sides[name]())
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="evaluation data-plane speedup: trace corpus + batched "
                    "codec/replay + fast anomaly vs regenerate + loop codec "
                    "+ scheduled replay + baseline anomaly, gated on "
                    "identical scoring transcripts")
    parser.add_argument("--packets", type=int, default=30000,
                        help="mixed-trace size per pass")
    parser.add_argument("--passes", type=int, default=4,
                        help="passes per timed side (the battery runs one "
                             "per product)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved A/B repetitions (best-of-N)")
    parser.add_argument("--json", default=None,
                        help="write the result record to this path")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero unless fast/reference >= this")
    parser.add_argument("--skip-equality", action="store_true",
                        help="timing only (the gate costs several replays)")
    args = parser.parse_args(argv)

    root = tempfile.mkdtemp(prefix="bench-corpus-")
    corpus = TraceCorpus(os.path.join(root, "traces"))
    try:
        if not args.skip_equality:
            entries = check_equality(corpus, args.packets, args.seed)
            print(f"equality gate: both pipelines identical at sensitivities "
                  f"{GATE_SENSITIVITIES} ({entries} transcript entries "
                  f"replayed, corpus cold+warm)")

        best = time_pipelines(corpus, args.packets, args.seed, args.passes,
                              args.reps)
        total = args.passes * args.packets
        ref_pps = total / best["reference"]
        fast_pps = total / best["fast"]
        speedup = best["reference"] / best["fast"]
        print(f"reference: {ref_pps:10.0f} packets/s "
              f"(regenerate + loop codec + scheduled + baseline)")
        print(f"fast     : {fast_pps:10.0f} packets/s "
              f"(corpus + batched codec/replay + fast anomaly)")
        print(f"speedup  : {speedup:.2f}x end-to-end over {args.passes} "
              f"passes (best of {args.reps} interleaved reps)")
        print(f"corpus   : {corpus.stats.hits} hit(s), "
              f"{corpus.stats.misses} miss(es), "
              f"{corpus.stats.stores} store(s)")

        if args.json:
            record = {
                "benchmark": "trace_dataplane",
                "packets": args.packets,
                "passes": args.passes,
                "seed": args.seed,
                "reps": args.reps,
                "gate_sensitivities": list(GATE_SENSITIVITIES),
                "reference_pps": round(ref_pps),
                "fast_pps": round(fast_pps),
                "speedup": round(speedup, 2),
                "corpus_hits": corpus.stats.hits,
                "corpus_misses": corpus.stats.misses,
                "corpus_stores": corpus.stats.stores,
            }
            with open(args.json, "w") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[saved to {args.json}]")

        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x below required "
                  f"{args.min_speedup:.2f}x")
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# pytest smoke lane (the CI standalone run does the full measurement)
# ----------------------------------------------------------------------
def test_dataplane_equality_and_speed_smoke(benchmark, tmp_path):
    corpus = TraceCorpus(str(tmp_path / "traces"))
    assert check_equality(corpus, 5000, seed=0) > 0

    def one_warm_pass():
        fast_pass(corpus, 5000, seed=0)

    benchmark.pedantic(one_warm_pass, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
