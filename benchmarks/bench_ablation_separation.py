"""A2 -- ablation: combined vs separated sensing/analysis.

Section 2.2: "Separating sensing from analysis may allow better throughput
by offloading the analysis burden, but separation adds network overhead."

Same sensor, same detection-heavy traffic, two wirings: the combined engine
charges analysis to the sensor budget (lower sensing capacity, zero network
bytes); the separated engine ships detections to a dedicated analyzer
(extra bytes, extra hop latency, full sensing capacity).
"""

import numpy as np

from repro.attacks import TelnetBruteForce
from repro.ids.analyzer import Analyzer
from repro.ids.monitor import Monitor
from repro.ids.pipeline import IdsPipeline
from repro.ids.sensor import Sensor, SignatureDetector
from repro.net.address import IPv4Address
from repro.report.render import text_table
from repro.sim.engine import Engine

from conftest import emit

ATT = IPv4Address("198.18.0.1")
TGT = IPv4Address("10.0.0.5")


def run_wiring(separated: bool, rate_per_s: float = 400.0,
               duration: float = 2.0, seed: int = 2):
    eng = Engine()
    sensor = Sensor(eng, "s0", SignatureDetector(sensitivity=0.6),
                    ops_rate=3e6, header_ops=500.0, per_byte_ops=15.0,
                    max_queue_delay_s=0.02, lethal_drop_rate=None)
    pipeline = IdsPipeline(
        eng, "a2", [sensor], [Analyzer(eng, "a0", analysis_delay_s=0.0)],
        Monitor(eng, "m0"), separated=separated,
        analysis_ops=60_000.0,  # analysis is the expensive stage here
    ).wire()
    # detection-heavy load: a long brute force generating constant hits
    attack = TelnetBruteForce(ATT, TGT, attempts=int(rate_per_s * duration),
                              rate_per_s=rate_per_s)
    trace, _ = attack.generate(0.0, np.random.default_rng(seed))
    trace.replay(eng, pipeline.ingest)
    eng.run(until=duration + 2.0)
    return {
        "processed": pipeline.packets_processed,
        "dropped": pipeline.packets_dropped,
        "overhead_bytes": pipeline.network_overhead_bytes,
        "alerts": pipeline.monitor.alert_count,
    }


def test_a2_separation_ablation(benchmark):
    combined = run_wiring(separated=False)
    separated = run_wiring(separated=True)
    rows = [
        ("combined", combined["processed"], combined["dropped"],
         combined["overhead_bytes"]),
        ("separated", separated["processed"], separated["dropped"],
         separated["overhead_bytes"]),
    ]
    emit("a2_ablation_separation",
         text_table(("Wiring", "Processed", "Dropped", "Net overhead (B)"),
                    rows,
                    title="A2: sensing/analysis separation under "
                          "detection-heavy load"))

    # separation offloads analysis: better sensing throughput...
    assert separated["dropped"] < combined["dropped"]
    assert separated["processed"] > combined["processed"]
    # ...at the cost of network overhead the combined engine never pays
    assert separated["overhead_bytes"] > 0
    assert combined["overhead_bytes"] == 0
    # both wirings still detect the attack
    assert combined["alerts"] >= 1 and separated["alerts"] >= 1

    benchmark.pedantic(run_wiring, args=(True,),
                       kwargs={"rate_per_s": 200.0, "duration": 1.0},
                       rounds=1, iterations=1)
