"""Shared fixtures for the benchmark harness.

The expensive artifact -- the full field evaluation of all four products --
is computed once per session and shared by every table/figure bench that
reads from it.  Each bench writes its regenerated table/figure to
``benchmarks/out/<name>.txt`` (and prints it), so the artifacts survive the
run for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from repro.core.profiles import realtime_cluster_requirements
from repro.eval.corpus import corpus_stats, use_corpus
from repro.eval.runner import EvaluationOptions, evaluate_field
from repro.products import (
    AafidProduct,
    ManhuntProduct,
    NidProduct,
    RealSecureProduct,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Options used for the shared full evaluation (the E1 configuration).
E1_OPTIONS = EvaluationOptions(
    seed=0,
    n_hosts=6,
    scenario_duration_s=70.0,
    train_duration_s=30.0,
    include_dos=True,
    flood_rate_pps=1500.0,
    throughput_rates_pps=(500, 1000, 2000, 4000, 8000, 16000, 32000, 64000),
    throughput_probe_s=1.0,
)

PRODUCT_FACTORIES = (NidProduct, RealSecureProduct, ManhuntProduct,
                     AafidProduct)


@pytest.fixture(scope="session")
def field_eval():
    """The full section-3.2 evaluation, shared across benches.

    Runs under an ambient trace corpus so the four products share one
    generation of every scenario/warmup/load trace; the corpus hit/miss
    counters are persisted to ``out/trace_corpus.txt`` alongside the
    other artifacts.
    """
    root = tempfile.mkdtemp(prefix="bench-trace-corpus-")
    before = corpus_stats().as_tuple()
    try:
        with use_corpus(os.path.join(root, "traces")):
            result = evaluate_field(list(PRODUCT_FACTORIES),
                                    realtime_cluster_requirements(),
                                    E1_OPTIONS)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    hits, misses, stores = (a - b for a, b in
                            zip(corpus_stats().as_tuple(), before))
    emit("trace_corpus",
         f"trace corpus (E1 field evaluation, {len(PRODUCT_FACTORIES)} "
         f"products): {hits} hit(s), {misses} miss(es), {stores} store(s)")
    return result


def emit(name: str, text: str) -> str:
    """Persist a regenerated artifact and echo it to stdout."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
