"""repro — metrics-based IDS evaluation for distributed real-time systems.

A from-scratch reproduction of Fink, Chappell, Turner & O'Donoghue,
"A Metrics-Based Approach to Intrusion Detection System Evaluation for
Distributed Real-Time Systems" (WPDRTS / IPPS 2002).

Top-level layout
----------------
``repro.core``
    The paper's contribution: the metric catalog, discrete 0-4 scoring,
    requirement-to-weight mapping, and the weighted scorecard.
``repro.sim`` / ``repro.net`` / ``repro.traffic`` / ``repro.attacks``
    The simulated testbed substrate: event kernel, network, workloads and
    labeled attack library.
``repro.ids``
    The generalized network-IDS architecture (Figure 1/2): load balancer,
    sensors, analyzers, monitor, management console, response devices.
``repro.products``
    Simulated stand-ins for the products the paper evaluated.
``repro.eval``
    Measurement procedures for the observable metrics and the full runner.
``repro.report``
    Regeneration of every table and figure in the paper.
"""

from .errors import (
    CardinalityError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    ScorecardError,
    ScoreValueError,
    SimulationError,
    UnknownMetricError,
    WeightingError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "ConfigurationError",
    "CardinalityError",
    "ScorecardError",
    "UnknownMetricError",
    "ScoreValueError",
    "WeightingError",
    "MeasurementError",
]
