"""Product model: facts, deployment, and the product registry base.

The paper evaluated three commercial products (NFR NID 5.0, ISS RealSecure
5.0, Recourse ManHunt 1.2) and one research system (AAFID).  Those products
are closed/proprietary, so this reproduction substitutes *parameterized
simulated products* that instantiate the paper's own general architecture
with capability profiles spanning the same design space: network-signature,
hybrid host+network, anomaly/flow-based with dynamic load balancing, and
autonomous host agents.  The profiles are derived from the paper's
classification discussion, not from the vendors' implementations.

Two artifacts per product:

* :class:`ProductFacts` -- the "open source material" (section 3.1): the
  qualitative facts a procurer reads off data sheets.  The scorecard's
  open-source-scored metrics are derived from these.
* :class:`Deployment` -- the live simulated system under test on the
  testbed.  The analysis-scored metrics are *measured* against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..ids.console import ManagementConsole
from ..ids.host import HostAgent
from ..ids.monitor import Monitor
from ..ids.pipeline import IdsPipeline
from ..ids.policy import ResponseAction
from ..ids.response import Firewall, Honeypot, RouterInterface, SnmpTrapReceiver
from ..ids.sensor import FailureMode, Sensor
from ..net.packet import Packet
from ..net.topology import LanTestbed
from ..net.trace import Trace
from ..sim.engine import Engine

__all__ = ["ProductFacts", "Deployment", "DeploymentSnapshot", "Product"]


@dataclass(frozen=True)
class ProductFacts:
    """Data-sheet facts of a product (inputs to open-source scoring)."""

    name: str
    vendor: str
    version: str
    detection: str               # "signature" | "anomaly" | "hybrid"
    scope: str                   # "network" | "host" | "both"

    # ----- logistics -----
    remote_management: str       # "none" | "limited" | "full-secure"
    install_complexity: str      # "turnkey" | "guided" | "manual"
    policy_maintenance: str      # "central-live" | "central-restart" | "per-sensor"
    license: str                 # "enterprise" | "per-site" | "per-sensor"
    outsourced: str              # "in-house" | "optional" | "required-scans"
    monitored_host_cpu_fraction: float
    dedicated_hosts: int
    docs: str                    # "poor" | "fair" | "good"
    filter_generation: str       # "none" | "manual" | "guided" | "automatic"
    eval_copy: bool
    admin_effort: str            # "high" | "medium" | "low"
    product_lifetime_years: float
    support: str                 # "none" | "business-hours" | "24x7"
    cost_3yr_usd: float
    training: str                # "none" | "docs-only" | "vendor-courses"

    # ----- architecture -----
    adjustable_sensitivity: str  # "none" | "coarse" | "continuous"
    data_pool_select: str        # "none" | "static" | "runtime"
    host_based_fraction: float   # share of input from host data
    multi_sensor: str            # "single" | "several" | "integrated"
    load_balancing: str          # "none" | "static" | "dynamic"
    autonomous_learning: bool
    interoperability: str        # "none" | "limited" | "standards"
    session_recording: bool
    trend_analysis: bool

    @property
    def network_based_fraction(self) -> float:
        return 1.0 - self.host_based_fraction


@dataclass(frozen=True)
class DeploymentSnapshot:
    """Process-portable summary of a :class:`Deployment` after a run.

    A live deployment holds the simulation engine, rule closures, and the
    full component graph, none of which pickle.  The snapshot captures
    exactly the state the scoring layer (``repro.eval.observer``) reads, in
    plain-data form, so measurement work units can cross process boundaries
    and be memoized on disk.  Collections are stored sorted so two
    snapshots of equivalent runs compare (and serialize) identically
    regardless of in-process set ordering.
    """

    facts: ProductFacts
    inline_latency_s: float
    #: distinct sensor failure modes, sorted by enum value
    sensor_failure_modes: Tuple[FailureMode, ...]
    console_present: bool
    #: interaction channels ("firewall"/"router"/"snmp"/"honeypot")
    capabilities: Dict[str, bool]
    #: distinct automated response actions fired, sorted by enum value
    fired_actions: Tuple[ResponseAction, ...]
    #: any analyzer performs secondary (correlation) analysis
    correlating: bool
    notification_channels: int
    notifications_total: int
    #: a firewall or router is present to receive generated filters
    has_filter_path: bool
    #: blocked source addresses (int values), firewall requests then router
    filter_blocked_sources: Tuple[int, ...]

    @property
    def name(self) -> str:
        return self.facts.name

    @classmethod
    def of(cls, dep: "Deployment") -> "DeploymentSnapshot":
        """Snapshot a live deployment (typically right after a scenario)."""
        responses = dep.console.responses if dep.console else []
        capabilities = dict(dep.console.capabilities) if dep.console else {
            "firewall": False, "router": False, "snmp": False,
            "honeypot": False}
        blocked: List[int] = []
        if dep.firewall is not None:
            blocked += [addr.value for _, addr in dep.firewall.block_requests]
        if dep.router is not None:
            blocked += [addr.value for _, addr in dep.router.block_requests]
        return cls(
            facts=dep.facts,
            inline_latency_s=dep.inline_latency_s,
            sensor_failure_modes=tuple(sorted(
                {s.failure_mode for s in dep.sensors},
                key=lambda m: m.value)),
            console_present=dep.console is not None,
            capabilities=capabilities,
            fired_actions=tuple(sorted({r.action for r in responses},
                                       key=lambda a: a.value)),
            correlating=any(getattr(a, "correlation", False)
                            for a in dep.analyzers),
            notification_channels=len(dep.monitor.channels),
            notifications_total=len(dep.monitor.notifications),
            has_filter_path=(dep.firewall is not None
                             or dep.router is not None),
            filter_blocked_sources=tuple(blocked),
        )


class Deployment:
    """A product deployed on the testbed, ready to receive traffic.

    The harness feeds every monitored packet through :meth:`ingest`; the
    deployment routes it to its network pipeline (tap semantics) and/or to
    the destination host's agents (host-delivery semantics).
    """

    def __init__(
        self,
        engine: Engine,
        facts: ProductFacts,
        monitor: Monitor,
        pipeline: Optional[IdsPipeline] = None,
        host_agents: Optional[List[HostAgent]] = None,
        console: Optional[ManagementConsole] = None,
        inline_latency_s: float = 0.0,
        testbed: Optional[LanTestbed] = None,
        analyzers: Optional[list] = None,
    ) -> None:
        if pipeline is None and not host_agents:
            raise ConfigurationError("deployment needs a pipeline or host agents")
        self.engine = engine
        self.facts = facts
        self.monitor = monitor
        self.pipeline = pipeline
        self.analyzers = (list(analyzers) if analyzers is not None
                          else (list(pipeline.analyzers) if pipeline else []))
        self.host_agents = list(host_agents or [])
        self.console = console
        self.inline_latency_s = float(inline_latency_s)
        self.testbed = testbed
        self._agent_hosts: Dict[int, HostAgent] = {
            agent.host.address.value: agent for agent in self.host_agents}
        self.ingested = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.facts.name

    @property
    def sensors(self) -> List[Sensor]:
        return self.pipeline.sensors if self.pipeline is not None else []

    @property
    def firewall(self) -> Optional[Firewall]:
        return self.console.firewall if self.console else None

    @property
    def router(self) -> Optional[RouterInterface]:
        return self.console.router if self.console else None

    @property
    def snmp(self) -> Optional[SnmpTrapReceiver]:
        return self.console.snmp if self.console else None

    @property
    def honeypot(self) -> Optional[Honeypot]:
        return self.console.honeypot if self.console else None

    # ------------------------------------------------------------------
    def ingest(self, pkt: Packet) -> None:
        """One monitored packet crosses the protected network."""
        self.ingested += 1
        if self.pipeline is not None:
            self.pipeline.ingest(pkt)
        if self._agent_hosts:
            agent = self._agent_hosts.get(pkt.dst.value)
            if agent is not None and not agent.migrated:
                agent.host.receive(pkt)

    def train_on(self, trace: Trace) -> None:
        if self.pipeline is not None:
            self.pipeline.train_on(trace)

    def freeze(self) -> None:
        if self.pipeline is not None:
            self.pipeline.freeze()

    def set_sensitivity(self, sensitivity: float) -> bool:
        """Retune if the product supports it; returns whether it applied."""
        if self.facts.adjustable_sensitivity == "none" or self.pipeline is None:
            return False
        self.pipeline.set_sensitivity(sensitivity)
        return True

    def reset_detection_state(self) -> None:
        if self.pipeline is not None:
            self.pipeline.reset_detection_state()

    # ------------------------------------------------------------------
    @property
    def packets_dropped(self) -> int:
        return self.pipeline.packets_dropped if self.pipeline else 0

    @property
    def packets_processed(self) -> int:
        return self.pipeline.packets_processed if self.pipeline else 0

    @property
    def crashed(self) -> bool:
        return self.pipeline.any_sensor_down if self.pipeline else False

    @property
    def crash_count(self) -> int:
        return self.pipeline.crash_count if self.pipeline else 0

    def snapshot(self) -> DeploymentSnapshot:
        """Picklable summary of everything the scoring layer reads."""
        return DeploymentSnapshot.of(self)

    def host_cpu_impact(self) -> float:
        """Average fraction of monitored-host CPU consumed by the agents."""
        if not self.host_agents:
            return 0.0
        return sum(a.cpu_fraction for a in self.host_agents) / len(self.host_agents)


class Product:
    """Base for product definitions: facts plus a deployment factory."""

    facts: ProductFacts

    def deploy(self, engine: Engine, testbed: LanTestbed) -> Deployment:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return self.facts.name
