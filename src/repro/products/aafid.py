"""Simulated autonomous-agents research IDS ("AAFID"-like).

Profile: the research prototype: autonomous host agents on every protected
host feeding a shared analysis engine -- fully host-based monitoring with
DoD-C2-depth audit (the ~20 % host-CPU case of section 2.1), excellent
insider/masquerade visibility, but no network sensing (scans and floods
against unmonitored paths are invisible), no management console, no
automated response, research-grade logistics, and hang-on-failure
robustness.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..ids.analyzer import Analyzer
from ..ids.component import validate_wiring
from ..ids.host import HostAgent, LoggingLevel
from ..ids.monitor import Monitor
from ..net.topology import LanTestbed
from ..sim.engine import Engine
from .base import Deployment, Product, ProductFacts

__all__ = ["AafidProduct"]


class AafidProduct(Product):
    """Autonomous host agents reporting to one analysis engine."""

    facts = ProductFacts(
        name="sim-aafid",
        vendor="simulated (research autonomous-agents class)",
        version="0.10",
        detection="hybrid",
        scope="host",
        remote_management="none",
        install_complexity="manual",
        policy_maintenance="per-sensor",
        license="enterprise",     # research code: freely licensed
        outsourced="in-house",
        monitored_host_cpu_fraction=0.20,  # C2-level audit
        dedicated_hosts=1,
        docs="poor",
        filter_generation="manual",
        eval_copy=True,
        admin_effort="high",
        product_lifetime_years=1.0,
        support="none",
        cost_3yr_usd=15_000,      # staff time only
        training="none",
        adjustable_sensitivity="none",
        data_pool_select="none",
        host_based_fraction=1.0,
        multi_sensor="several",
        load_balancing="none",
        autonomous_learning=True,
        interoperability="none",
        session_recording=False,
        trend_analysis=False,
    )

    def __init__(self, logging_level: LoggingLevel = LoggingLevel.C2,
                 engine: Optional[str] = None,
                 anomaly_path: Optional[str] = None) -> None:
        self.logging_level = logging_level
        # ``engine`` (the signature-kernel knob) and ``anomaly_path`` are
        # accepted for a uniform product constructor signature; AAFID is
        # host-based and runs neither network engine
        del engine, anomaly_path

    def deploy(self, engine: Engine, testbed: LanTestbed) -> Deployment:
        if not testbed.hosts:
            raise ConfigurationError("AAFID needs monitored hosts")
        analyzer = Analyzer(engine, "aafid-analyzer", analysis_delay_s=0.1,
                            correlation=True)
        monitor = Monitor(engine, "aafid-monitor", notify_delay_s=0.5,
                          channels=("console",))
        agents: List[HostAgent] = [
            HostAgent(engine, host, logging_level=self.logging_level,
                      failed_login_threshold=8)
            for host in testbed.hosts
        ]
        for agent in agents:
            agent.add_sink(analyzer.receive)
        analyzer.set_sink(monitor.receive)
        # Host agents are the sensing subprocess; check the Figure-2 rules.
        links = [(agent, analyzer) for agent in agents]
        links.append((analyzer, monitor))
        validate_wiring([*agents, analyzer, monitor], links)
        return Deployment(engine, self.facts, monitor, pipeline=None,
                          host_agents=agents, console=None,
                          inline_latency_s=0.0, testbed=testbed,
                          analyzers=[analyzer])
