"""Simulated anomaly/flow-based IDS ("ManHunt-1.2"-like).

Profile: the scalable traffic-analysis system: behaviour/anomaly detection
over flow features (light payload touch), an intelligent dynamic load
balancer feeding a sensor farm, and aggressive automated response including
router blocking and honeypot redirection.  Highest throughput and lethal
dose of the field; catches novel attacks; pays for it with a higher false
positive ratio and an in-line balancer latency.
"""

from __future__ import annotations

from typing import Optional

from ..ids.analyzer import Analyzer
from ..ids.console import ManagementConsole
from ..ids.loadbalancer import DynamicBalancer
from ..ids.monitor import Monitor
from ..ids.pipeline import IdsPipeline
from ..ids.response import Honeypot, RouterInterface, SnmpTrapReceiver
from ..ids.sensor import AnomalyDetector, FailureMode, Sensor
from ..net.address import IPv4Address
from ..net.topology import LanTestbed
from ..sim.engine import Engine
from .base import Deployment, Product, ProductFacts

__all__ = ["ManhuntProduct"]


class ManhuntProduct(Product):
    """Anomaly/flow-based sensor farm with dynamic load balancing."""

    facts = ProductFacts(
        name="sim-manhunt",
        vendor="simulated (traffic-analysis class)",
        version="1.2",
        detection="anomaly",
        scope="network",
        remote_management="full-secure",
        install_complexity="manual",
        policy_maintenance="central-live",
        license="per-site",
        outsourced="in-house",
        monitored_host_cpu_fraction=0.0,
        dedicated_hosts=5,
        docs="fair",
        filter_generation="automatic",
        eval_copy=False,
        admin_effort="high",
        product_lifetime_years=3.0,
        support="business-hours",
        cost_3yr_usd=120_000,
        training="docs-only",
        adjustable_sensitivity="continuous",
        data_pool_select="runtime",
        host_based_fraction=0.0,
        multi_sensor="integrated",
        load_balancing="dynamic",
        autonomous_learning=True,
        interoperability="limited",
        session_recording=False,
        trend_analysis=True,
    )

    def __init__(self, sensitivity: float = 0.5, n_sensors: int = 4,
                 engine: Optional[str] = None,
                 anomaly_path: Optional[str] = None) -> None:
        self.sensitivity = sensitivity
        self.n_sensors = n_sensors
        self.anomaly_path = anomaly_path
        # ``engine`` (the signature-kernel knob) is accepted for a uniform
        # product constructor signature; ManHunt's sensors are anomaly
        # detectors, so the knob has nothing to select
        del engine

    def deploy(self, engine: Engine, testbed: LanTestbed) -> Deployment:
        sensors = [
            Sensor(
                engine, f"mh-sensor{i}",
                AnomalyDetector(sensitivity=self.sensitivity,
                                path=self.anomaly_path),
                ops_rate=80e6,
                header_ops=400.0,
                per_byte_ops=6.0,    # flow-level analysis: light payload touch
                parse_ops=800.0,
                max_queue_delay_s=0.05,
                lethal_drop_rate=6000.0,
                failure_mode=FailureMode.RESTART,
                restart_time_s=1.0,
            )
            for i in range(self.n_sensors)
        ]
        balancer = DynamicBalancer(engine, "mh-balancer", sensors,
                                   capacity_pps=120_000,
                                   induced_latency_s=200e-6)  # in-line
        analyzer = Analyzer(engine, "mh-analyzer", analysis_delay_s=0.02,
                            correlation=True)
        monitor = Monitor(engine, "mh-monitor", notify_delay_s=0.1,
                          channels=("console", "email"))
        honeypot = Honeypot(engine, IPv4Address("10.0.0.250"))
        console = ManagementConsole(
            engine, "mh-console",
            router=RouterInterface(engine, testbed.router,
                                   update_latency_s=0.4),
            snmp=SnmpTrapReceiver(engine),
            honeypot=honeypot,
            secure_remote=True,
        )
        pipeline = IdsPipeline(
            engine, self.facts.name, sensors, [analyzer], monitor,
            balancer=balancer, console=console,
            separated=True,
        ).wire()
        return Deployment(engine, self.facts, monitor, pipeline=pipeline,
                          console=console, inline_latency_s=200e-6,
                          testbed=testbed)
