"""Simulated products under evaluation (stand-ins for the paper's four)."""

from .aafid import AafidProduct
from .base import Deployment, Product, ProductFacts
from .manhunt import ManhuntProduct
from .nid import NidProduct
from .realsecure import RealSecureProduct

__all__ = [
    "Product",
    "ProductFacts",
    "Deployment",
    "NidProduct",
    "RealSecureProduct",
    "ManhuntProduct",
    "AafidProduct",
    "all_products",
]


def all_products() -> list:
    """The standard evaluation field: one instance of each product."""
    return [NidProduct(), RealSecureProduct(), ManhuntProduct(), AafidProduct()]
