"""Simulated network-signature IDS ("NID-5"-like).

Profile: the classic single-box passive network IDS with deep payload
inspection and a powerful filter-authoring language.  Strong on known
attacks and automated filter generation; a single sensor with no load
balancing, cold-reboot failure behaviour, and limited remote management.
"""

from __future__ import annotations

from typing import Optional

from ..ids.analyzer import Analyzer
from ..ids.console import ManagementConsole
from ..ids.loadbalancer import NoBalancer
from ..ids.monitor import Monitor
from ..ids.pipeline import IdsPipeline
from ..ids.response import Firewall
from ..ids.sensor import FailureMode, Sensor, SignatureDetector
from ..net.topology import LanTestbed
from ..sim.engine import Engine
from .base import Deployment, Product, ProductFacts

__all__ = ["NidProduct"]


class NidProduct(Product):
    """Single-sensor deep-inspection signature IDS."""

    facts = ProductFacts(
        name="sim-nid",
        vendor="simulated (network-flight-recorder class)",
        version="5.0",
        detection="signature",
        scope="network",
        remote_management="limited",
        install_complexity="guided",
        policy_maintenance="central-restart",
        license="per-site",
        outsourced="in-house",
        monitored_host_cpu_fraction=0.0,
        dedicated_hosts=1,
        docs="good",
        filter_generation="automatic",
        eval_copy=True,
        admin_effort="medium",
        product_lifetime_years=5.0,
        support="business-hours",
        cost_3yr_usd=60_000,
        training="vendor-courses",
        adjustable_sensitivity="coarse",
        data_pool_select="runtime",
        host_based_fraction=0.0,
        multi_sensor="single",
        load_balancing="none",
        autonomous_learning=False,
        interoperability="limited",
        session_recording=True,
        trend_analysis=False,
    )

    def __init__(self, sensitivity: float = 0.5,
                 engine: Optional[str] = None,
                 anomaly_path: Optional[str] = None) -> None:
        self.sensitivity = sensitivity
        #: signature matching kernel ("indexed" | "linear"; None = ambient
        #: default), forwarded to every deployed SignatureDetector
        self.engine_kind = engine
        # ``anomaly_path`` is accepted for a uniform product constructor
        # signature; this product deploys no anomaly engine
        del anomaly_path

    def deploy(self, engine: Engine, testbed: LanTestbed) -> Deployment:
        sensor = Sensor(
            engine, "nid-sensor",
            SignatureDetector(sensitivity=self.sensitivity,
                              engine_kind=self.engine_kind),
            ops_rate=60e6,
            header_ops=500.0,
            per_byte_ops=25.0,
            parse_ops=5000.0,
            max_queue_delay_s=0.05,
            lethal_drop_rate=1500.0,
            failure_mode=FailureMode.REBOOT,
            reboot_time_s=60.0,
        )
        balancer = NoBalancer(engine, "nid-tap", [sensor],
                              induced_latency_s=0.0)
        analyzer = Analyzer(engine, "nid-analyzer", analysis_delay_s=0.05,
                            correlation=False)
        monitor = Monitor(engine, "nid-monitor", notify_delay_s=0.2,
                          channels=("console", "email"))
        console = ManagementConsole(
            engine, "nid-console",
            firewall=Firewall(engine, update_latency_s=0.3),
            secure_remote=False,
        )
        pipeline = IdsPipeline(
            engine, self.facts.name, [sensor], [analyzer], monitor,
            balancer=balancer, console=console,
            separated=False,  # combined sensor/analyzer box
        ).wire()
        return Deployment(engine, self.facts, monitor, pipeline=pipeline,
                          console=console, inline_latency_s=0.0,
                          testbed=testbed)
