"""Simulated hybrid host+network IDS ("RealSecure-5"-like).

Profile: the console-centric enterprise suite: network signature sensors
behind a flow-hash spreader *plus* host agents with nominal event logging on
every protected host, all managed from one secure console with firewall and
SNMP response.  Service-restart failure behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..ids.analyzer import Analyzer
from ..ids.console import ManagementConsole
from ..ids.host import HostAgent, LoggingLevel
from ..ids.loadbalancer import HashBalancer
from ..ids.monitor import Monitor
from ..ids.pipeline import IdsPipeline
from ..ids.response import Firewall, SnmpTrapReceiver
from ..ids.sensor import FailureMode, Sensor, SignatureDetector
from ..net.topology import LanTestbed
from ..sim.engine import Engine
from .base import Deployment, Product, ProductFacts

__all__ = ["RealSecureProduct"]


class RealSecureProduct(Product):
    """Hybrid host+network signature suite with central secure console."""

    facts = ProductFacts(
        name="sim-realsecure",
        vendor="simulated (enterprise hybrid class)",
        version="5.0",
        detection="signature",
        scope="both",
        remote_management="full-secure",
        install_complexity="guided",
        policy_maintenance="central-live",
        license="per-sensor",
        outsourced="optional",
        monitored_host_cpu_fraction=0.04,
        dedicated_hosts=2,
        docs="good",
        filter_generation="guided",
        eval_copy=True,
        admin_effort="medium",
        product_lifetime_years=6.0,
        support="24x7",
        cost_3yr_usd=90_000,
        training="vendor-courses",
        adjustable_sensitivity="coarse",
        data_pool_select="static",
        host_based_fraction=0.3,
        multi_sensor="integrated",
        load_balancing="static",
        autonomous_learning=False,
        interoperability="standards",
        session_recording=True,
        trend_analysis=True,
    )

    def __init__(self, sensitivity: float = 0.5, n_sensors: int = 2,
                 engine: Optional[str] = None,
                 anomaly_path: Optional[str] = None) -> None:
        self.sensitivity = sensitivity
        self.n_sensors = n_sensors
        #: signature matching kernel ("indexed" | "linear"; None = ambient
        #: default), forwarded to every deployed SignatureDetector
        self.engine_kind = engine
        # ``anomaly_path`` is accepted for a uniform product constructor
        # signature; this product deploys no anomaly engine
        del anomaly_path

    def deploy(self, engine: Engine, testbed: LanTestbed) -> Deployment:
        sensors = [
            Sensor(
                engine, f"rs-sensor{i}",
                SignatureDetector(sensitivity=self.sensitivity,
                                  engine_kind=self.engine_kind),
                ops_rate=45e6,
                header_ops=600.0,
                per_byte_ops=20.0,
                parse_ops=4000.0,
                max_queue_delay_s=0.05,
                lethal_drop_rate=2500.0,
                failure_mode=FailureMode.RESTART,
                restart_time_s=2.0,
            )
            for i in range(self.n_sensors)
        ]
        balancer = HashBalancer(engine, "rs-balancer", sensors,
                                capacity_pps=40_000,
                                induced_latency_s=50e-6)
        analyzer = Analyzer(engine, "rs-analyzer", analysis_delay_s=0.05,
                            correlation=True)
        monitor = Monitor(engine, "rs-monitor", notify_delay_s=0.15,
                          channels=("console", "email", "pager"))
        console = ManagementConsole(
            engine, "rs-console",
            firewall=Firewall(engine, update_latency_s=0.2),
            snmp=SnmpTrapReceiver(engine),
            secure_remote=True,
        )
        pipeline = IdsPipeline(
            engine, self.facts.name, sensors, [analyzer], monitor,
            balancer=balancer, console=console,
            separated=True,  # dedicated analysis/console host
        ).wire()
        agents = [
            HostAgent(engine, host, logging_level=LoggingLevel.NOMINAL)
            for host in testbed.hosts
        ]
        for agent in agents:
            agent.add_sink(analyzer.receive)
            console.manage(agent)
        return Deployment(engine, self.facts, monitor, pipeline=pipeline,
                          host_agents=agents, console=console,
                          inline_latency_s=50e-6, testbed=testbed)
