"""Site traffic profiles.

Section 4 of the paper: "Distributed systems with high levels of inter-host
trust on a high-speed LAN will have distinctive traffic compared to that of a
web server in an e-commerce shop."  These two profiles are exactly those two
sites; the evaluation harness runs both because commercial IDSs are "often
geared toward the latter and not perform well in the former situation".

Profiles are *trace factories*: they generate labeled, reproducible
:class:`~repro.net.trace.Trace` objects of benign background traffic that the
mixer combines with attack traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address, Subnet
from ..net.packet import Packet, Protocol
from ..net.tcp import build_session
from ..net.trace import Trace
from . import payload as pl
from .generators import constant_rate_arrivals, onoff_arrivals, poisson_arrivals

__all__ = ["TrafficProfile", "ClusterProfile", "EcommerceProfile"]

_EPHEMERAL_LO, _EPHEMERAL_HI = 1024, 65535


def _session_trace(
    trace_records: list,
    t0: float,
    pkts: Sequence[Packet],
    gap: float,
) -> None:
    """Append a session's packets spaced ``gap`` seconds apart."""
    for i, pkt in enumerate(pkts):
        trace_records.append((t0 + i * gap, pkt))


def _dematerialize(pkts: Sequence[Packet]) -> None:
    """Strip payload bytes, keeping logical sizes (cheap load-only packets)."""
    for p in pkts:
        if p.payload is not None:
            p.payload = None  # _payload_len already covers the bytes
            p._h256 = None    # drop any derived-feature memo with the bytes
            p._tok = False


class TrafficProfile:
    """Base class: a named generator of benign background traces."""

    name = "base"

    def generate(self, duration_s: float, rng: np.random.Generator) -> Trace:
        raise NotImplementedError

    @staticmethod
    def _finish(name: str, records: list) -> Trace:
        records.sort(key=lambda r: r[0])
        trace = Trace(name)
        trace.extend(records)
        return trace


class ClusterProfile(TrafficProfile):
    """Distributed real-time cluster traffic.

    Structure:

    * every node streams fixed-format UDP telemetry to the master at a
      clocked rate with small jitter (hard real-time flavour);
    * trusted node pairs exchange short TCP control sessions
      (``cluster_command`` request, telemetry-style ack);
    * a sparse heartbeat ICMP mesh.

    Parameters
    ----------
    nodes:
        Addresses of the cluster nodes; ``nodes[0]`` acts as master.
    telemetry_hz:
        Per-node telemetry message rate.
    control_rate_per_s:
        Cluster-wide TCP control-session start rate.
    materialize:
        When ``False``, payload bytes are dropped (logical sizes kept) for
        pure load experiments.
    """

    name = "cluster-rt"

    def __init__(
        self,
        nodes: Sequence[IPv4Address],
        telemetry_hz: float = 20.0,
        control_rate_per_s: float = 2.0,
        heartbeat_hz: float = 1.0,
        materialize: bool = True,
        rate_scale: float = 1.0,
    ) -> None:
        if len(nodes) < 2:
            raise ConfigurationError("cluster profile needs >= 2 nodes")
        if rate_scale <= 0:
            raise ConfigurationError("rate_scale must be positive")
        self.nodes = list(nodes)
        self.telemetry_hz = telemetry_hz * rate_scale
        self.control_rate_per_s = control_rate_per_s * rate_scale
        self.heartbeat_hz = heartbeat_hz
        self.materialize = materialize

    def generate(self, duration_s: float, rng: np.random.Generator) -> Trace:
        records: list = []
        master = self.nodes[0]

        # Telemetry: node -> master, clocked UDP.
        for node_id, node in enumerate(self.nodes[1:], start=1):
            times = constant_rate_arrivals(
                self.telemetry_hz, duration_s,
                jitter_rng=rng, jitter_frac=0.05,
            )
            for t in times:
                body = pl.cluster_telemetry(rng, node_id)
                pkt = Packet(src=node, dst=master, sport=7100 + node_id,
                             dport=7000, proto=Protocol.UDP, payload=body)
                if not self.materialize:
                    _dematerialize([pkt])
                records.append((float(t), pkt))

        # Control sessions between trusted pairs.
        starts = poisson_arrivals(rng, self.control_rate_per_s, duration_s)
        for t in starts:
            i, j = rng.choice(len(self.nodes), size=2, replace=False)
            src, dst = self.nodes[int(i)], self.nodes[int(j)]
            sport = int(rng.integers(_EPHEMERAL_LO, _EPHEMERAL_HI))
            cmd = ["sync", "rebalance", "status", "checkpoint"][int(rng.integers(0, 4))]
            req = pl.cluster_command(int(i), cmd, float(rng.random()))
            resp = pl.cluster_telemetry(rng, int(j), n_samples=4)
            pkts = build_session(src, dst, sport, 7001, request=req, response=resp,
                                 isn_client=int(rng.integers(1, 2**31)),
                                 isn_server=int(rng.integers(1, 2**31)))
            if not self.materialize:
                _dematerialize(pkts)
            _session_trace(records, float(t), pkts, gap=0.2e-3)

        # Heartbeats: ICMP master -> each node.
        if self.heartbeat_hz > 0:
            for node in self.nodes[1:]:
                times = constant_rate_arrivals(self.heartbeat_hz, duration_s)
                for t in times:
                    records.append((float(t), Packet(
                        src=master, dst=node, proto=Protocol.ICMP,
                        payload_len=16)))

        return self._finish(self.name, records)


class EcommerceProfile(TrafficProfile):
    """E-commerce web-server traffic: the commercial-IDS home turf.

    External clients open HTTP sessions against the server following a
    Poisson arrival process; responses have heavy-tailed sizes.  A slower
    SMTP trickle and bursty bulk transfers round out the mix.
    """

    name = "ecommerce-web"

    def __init__(
        self,
        server: IPv4Address,
        client_subnet: str = "198.51.100.0/24",
        session_rate_per_s: float = 5.0,
        smtp_rate_per_s: float = 0.2,
        bulk_rate_per_s: float = 0.5,
        materialize: bool = True,
        rate_scale: float = 1.0,
    ) -> None:
        if rate_scale <= 0:
            raise ConfigurationError("rate_scale must be positive")
        self.server = server
        self.client_subnet = Subnet(client_subnet)
        self.session_rate_per_s = session_rate_per_s * rate_scale
        self.smtp_rate_per_s = smtp_rate_per_s * rate_scale
        self.bulk_rate_per_s = bulk_rate_per_s * rate_scale
        self.materialize = materialize
        self._clients: List[IPv4Address] = [
            self.client_subnet.network + (1 + k) for k in range(200)
        ]

    def _client(self, rng: np.random.Generator) -> IPv4Address:
        return self._clients[int(rng.integers(0, len(self._clients)))]

    def generate(self, duration_s: float, rng: np.random.Generator) -> Trace:
        records: list = []

        # HTTP sessions.
        for t in poisson_arrivals(rng, self.session_rate_per_s, duration_s):
            client = self._client(rng)
            sport = int(rng.integers(_EPHEMERAL_LO, _EPHEMERAL_HI))
            req = pl.http_request(rng)
            resp = pl.http_response(rng)
            pkts = build_session(client, self.server, sport, 80,
                                 request=req, response=resp,
                                 isn_client=int(rng.integers(1, 2**31)),
                                 isn_server=int(rng.integers(1, 2**31)))
            if not self.materialize:
                _dematerialize(pkts)
            _session_trace(records, float(t), pkts, gap=2e-3)

        # SMTP trickle.
        for t in poisson_arrivals(rng, self.smtp_rate_per_s, duration_s):
            client = self._client(rng)
            sport = int(rng.integers(_EPHEMERAL_LO, _EPHEMERAL_HI))
            pkts = build_session(client, self.server, sport, 25,
                                 request=pl.smtp_exchange(rng),
                                 response=b"250 OK\r\n",
                                 isn_client=int(rng.integers(1, 2**31)),
                                 isn_server=int(rng.integers(1, 2**31)))
            if not self.materialize:
                _dematerialize(pkts)
            _session_trace(records, float(t), pkts, gap=5e-3)

        # Bursty bulk UDP transfers (content-distribution-ish).
        for t in onoff_arrivals(rng, self.bulk_rate_per_s * 50, duration_s,
                                mean_on_s=0.5, mean_off_s=8.0):
            client = self._client(rng)
            records.append((float(t), Packet(
                src=self.server, dst=client, sport=8000,
                dport=int(rng.integers(_EPHEMERAL_LO, _EPHEMERAL_HI)),
                proto=Protocol.UDP, payload_len=1200)))

        return self._finish(self.name, records)
