"""Scenario assembly: background traffic + labeled attacks -> canned trace.

:class:`ScenarioBuilder` produces a :class:`Scenario`: one merged,
time-ordered trace plus the ground-truth attack records -- the "canned data
with known attack content" the paper replays to observe false-negative
ratios (lesson 2, section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.base import Attack, AttackRecord
from ..errors import ConfigurationError
from ..net.trace import Trace
from ..sim.rng import RngRegistry
from .profiles import TrafficProfile

__all__ = ["Scenario", "ScenarioBuilder"]


@dataclass
class Scenario:
    """A fully assembled, ground-truth-labeled evaluation scenario."""

    name: str
    trace: Trace
    attacks: List[AttackRecord]
    duration_s: float
    seed: int

    @property
    def attack_ids(self) -> set:
        return {a.attack_id for a in self.attacks}

    @property
    def benign_packets(self) -> int:
        return len(self.trace) - self.trace.attack_packet_count()

    def summary(self) -> str:
        lines = [
            f"Scenario {self.name!r}: {len(self.trace)} packets over "
            f"{self.duration_s:.1f}s ({self.trace.total_bytes / 1e6:.2f} MB), "
            f"{len(self.attacks)} attack instances, seed={self.seed}",
        ]
        for rec in self.attacks:
            novel = " [novel]" if rec.novel else ""
            lines.append(
                f"  {rec.attack_id:28s} {rec.kind.value:12s} "
                f"t={rec.start:6.1f}..{rec.end:6.1f}  {rec.packets:6d} pkts"
                f"{novel}  {rec.description}")
        return "\n".join(lines)


class ScenarioBuilder:
    """Compose background profiles and attacks into one scenario.

    Examples
    --------
    >>> from repro.net.address import Subnet
    >>> from repro.traffic.profiles import ClusterProfile
    >>> from repro.attacks.scans import PortScan
    >>> from repro.net.address import IPv4Address
    >>> sub = Subnet("10.0.0.0/24")
    >>> nodes = list(sub.hosts(4))
    >>> b = ScenarioBuilder("demo", duration_s=10.0, seed=7)
    >>> _ = b.add_background(ClusterProfile(nodes))
    >>> _ = b.add_attack(2.0, PortScan(IPv4Address("198.18.0.9"), nodes[0],
    ...                                ports=range(1, 50)))
    >>> sc = b.build()
    >>> len(sc.attacks)
    1
    """

    def __init__(self, name: str, duration_s: float, seed: int = 0) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self.name = name
        self.duration_s = float(duration_s)
        self.seed = int(seed)
        self._rng = RngRegistry(seed)
        self._backgrounds: List[TrafficProfile] = []
        self._attacks: List[Tuple[float, Attack]] = []
        self._extra_traces: List[Trace] = []

    def add_background(self, profile: TrafficProfile) -> "ScenarioBuilder":
        self._backgrounds.append(profile)
        return self

    def add_attack(self, start_s: float, attack: Attack) -> "ScenarioBuilder":
        if start_s < 0:
            raise ConfigurationError("attack start must be >= 0")
        if start_s > self.duration_s:
            raise ConfigurationError(
                f"attack start {start_s} beyond scenario duration {self.duration_s}")
        self._attacks.append((float(start_s), attack))
        return self

    def add_attacks(self, suite: Sequence[Tuple[float, Attack]]) -> "ScenarioBuilder":
        for start, attack in suite:
            self.add_attack(start, attack)
        return self

    def add_trace(self, trace: Trace) -> "ScenarioBuilder":
        """Inject a pre-built trace (e.g. recorded site traffic)."""
        self._extra_traces.append(trace)
        return self

    def build(self) -> Scenario:
        traces: List[Trace] = list(self._extra_traces)
        for i, profile in enumerate(self._backgrounds):
            rng = self._rng.stream(f"background.{i}.{profile.name}")
            traces.append(profile.generate(self.duration_s, rng))
        # Renumber attack ids scenario-locally (first portscan added is
        # always "portscan-1", ...).  The instance-counter default id is
        # process-global, which would make otherwise-identical scenarios
        # built in different processes (or after unrelated scenarios in the
        # same process) label their ground truth differently -- breaking
        # the bit-identical guarantee of the parallel/cached harness.
        tag_counts: dict = {}
        for _, attack in self._attacks:
            tag = type(attack).__name__.lower()
            tag_counts[tag] = tag_counts.get(tag, 0) + 1
            attack.attack_id = f"{tag}-{tag_counts[tag]}"
        records: List[AttackRecord] = []
        for j, (start, attack) in enumerate(self._attacks):
            rng = self._rng.stream(f"attack.{j}.{type(attack).__name__}")
            trace, record = attack.generate(start, rng)
            traces.append(trace)
            records.append(record)
        merged = Trace.merge(traces, name=self.name)
        records.sort(key=lambda r: r.start)
        return Scenario(
            name=self.name,
            trace=merged,
            attacks=records,
            duration_s=self.duration_s,
            seed=self.seed,
        )
