"""Arrival-process generators.

Session and packet arrival times for the background-traffic profiles.
Each generator is a thin, seeded wrapper that produces arrival time arrays;
profiles turn arrivals into concrete packets.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ..errors import ConfigurationError

__all__ = ["poisson_arrivals", "constant_rate_arrivals", "onoff_arrivals"]


def poisson_arrivals(
    rng: np.random.Generator,
    rate_per_s: float,
    duration_s: float,
    start: float = 0.0,
) -> np.ndarray:
    """Poisson-process arrival times on ``[start, start + duration)``.

    Classic model for independent session starts (e.g. web clients).
    """
    if rate_per_s < 0:
        raise ConfigurationError("rate_per_s must be non-negative")
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    if rate_per_s == 0:
        return np.empty(0)
    n = rng.poisson(rate_per_s * duration_s)
    times = np.sort(rng.uniform(start, start + duration_s, size=n))
    return times


def constant_rate_arrivals(
    rate_per_s: float,
    duration_s: float,
    start: float = 0.0,
    jitter_rng: np.random.Generator | None = None,
    jitter_frac: float = 0.0,
) -> np.ndarray:
    """Deterministic constant-rate arrivals with optional bounded jitter.

    The natural model for the periodic telemetry of a real-time cluster:
    messages are clocked, with tiny scheduling jitter.
    """
    if rate_per_s <= 0:
        raise ConfigurationError("rate_per_s must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    if not 0.0 <= jitter_frac < 1.0:
        raise ConfigurationError("jitter_frac must be in [0, 1)")
    period = 1.0 / rate_per_s
    n = int(duration_s * rate_per_s)
    times = start + np.arange(n) * period
    if jitter_frac > 0.0 and jitter_rng is not None and n > 0:
        jitter = jitter_rng.uniform(0, jitter_frac * period, size=n)
        times = times + jitter
    return times


def onoff_arrivals(
    rng: np.random.Generator,
    on_rate_per_s: float,
    duration_s: float,
    mean_on_s: float = 1.0,
    mean_off_s: float = 4.0,
    start: float = 0.0,
) -> np.ndarray:
    """Bursty on-off arrivals: exponential ON/OFF periods, Poisson inside ON.

    Models interactive/bulk mixtures (file transfers, bursts of RPC calls).
    """
    if on_rate_per_s < 0:
        raise ConfigurationError("on_rate_per_s must be non-negative")
    if duration_s <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
        raise ConfigurationError("durations must be positive")
    out: List[np.ndarray] = []
    t = start
    end = start + duration_s
    on = bool(rng.random() < mean_on_s / (mean_on_s + mean_off_s))
    while t < end:
        span = float(rng.exponential(mean_on_s if on else mean_off_s))
        span = min(span, end - t)
        if on and span > 0:
            out.append(poisson_arrivals(rng, on_rate_per_s, span, start=t))
        t += span
        on = not on
    if not out:
        return np.empty(0)
    return np.concatenate(out)
