"""Protocol-realistic payload builders.

The paper's first lesson learned (section 4): flooding an IDS with random
data is *not* a valid load test, because IDSs that inspect the data portion
of packets behave differently on realistic content.  These builders emit
plausible application-layer bytes -- HTTP, SMTP, telnet logins, and the
fixed-format binary messages of a distributed real-time cluster -- alongside
a :func:`random_payload` for the contrast experiment (bench E3).

Content is deterministic given the RNG stream, so traces are reproducible.
"""

from __future__ import annotations

import math
import struct
from typing import Optional

import numpy as np

__all__ = [
    "http_request",
    "http_response",
    "smtp_exchange",
    "telnet_login",
    "cluster_telemetry",
    "cluster_command",
    "random_payload",
    "shannon_entropy",
    "shannon_entropy_prefix",
]

_PATHS = [
    "/", "/index.html", "/images/logo.gif", "/cart", "/checkout",
    "/search", "/products/widget-17", "/api/status", "/login", "/css/site.css",
]
_AGENTS = [
    "Mozilla/4.0 (compatible; MSIE 5.5; Windows NT 5.0)",
    "Mozilla/4.76 [en] (X11; U; Linux 2.4.2 i686)",
    "Lynx/2.8.4rel.1 libwww-FM/2.14",
]
_WORDS = (
    "the order status page cart item widget total price ship confirm "
    "account user session token data value result list detail query"
).split()


def http_request(
    rng: np.random.Generator,
    host: str = "www.example.mil",
    path: Optional[str] = None,
    method: str = "GET",
    body: bytes = b"",
) -> bytes:
    """A plausible HTTP/1.0 request."""
    if path is None:
        path = _PATHS[int(rng.integers(0, len(_PATHS)))]
    agent = _AGENTS[int(rng.integers(0, len(_AGENTS)))]
    head = (
        f"{method} {path} HTTP/1.0\r\n"
        f"Host: {host}\r\n"
        f"User-Agent: {agent}\r\n"
        f"Accept: */*\r\n"
    )
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    return head.encode("ascii") + b"\r\n" + body


def http_response(
    rng: np.random.Generator,
    status: int = 200,
    body_size: Optional[int] = None,
) -> bytes:
    """A plausible HTTP/1.0 response with text-like body.

    Body sizes default to a heavy-tailed (lognormal) draw, matching web
    content size distributions.
    """
    if body_size is None:
        body_size = int(min(rng.lognormal(mean=6.5, sigma=1.2), 200_000))
    words = rng.choice(_WORDS, size=max(body_size // 6, 1))
    body = (" ".join(words).encode("ascii") + b" " * body_size)[:body_size]
    reason = {200: "OK", 404: "Not Found", 500: "Server Error"}.get(status, "OK")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Server: Apache/1.3.19 (Unix)\r\n"
        f"Content-Type: text/html\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    return head.encode("ascii") + b"\r\n" + body


def smtp_exchange(rng: np.random.Generator, sender: str = "ops", size: int = 400) -> bytes:
    """A condensed SMTP conversation transcript (client side)."""
    words = rng.choice(_WORDS, size=max(size // 6, 1))
    body = " ".join(words)[:size]
    return (
        f"HELO relay.example.mil\r\n"
        f"MAIL FROM:<{sender}@example.mil>\r\n"
        f"RCPT TO:<watch@example.mil>\r\n"
        f"DATA\r\nSubject: status\r\n\r\n{body}\r\n.\r\n"
    ).encode("ascii")


def telnet_login(username: str, password: str, success: bool = True) -> bytes:
    """A telnet login exchange as seen on the wire (client keystrokes and
    server prompts interleaved); brute-force attacks replay this with many
    candidate passwords."""
    outcome = "Last login: today\r\n$ " if success else "Login incorrect\r\nlogin: "
    return (
        f"login: {username}\r\npassword: {password}\r\n{outcome}"
    ).encode("ascii")


_CLUSTER_MAGIC = 0x52_54_4D_53  # "RTMS": real-time messaging system


def cluster_telemetry(rng: np.random.Generator, node_id: int, n_samples: int = 16) -> bytes:
    """Fixed-format binary telemetry of the distributed real-time cluster.

    Header (magic, type=1, node, sequence) followed by float32 sensor
    samples.  Tightly structured, low-entropy headers + physical-looking
    values: the "distinctive traffic" of a tuned cluster (section 4).
    """
    header = struct.pack("<IHHI", _CLUSTER_MAGIC, 1, node_id & 0xFFFF,
                         int(rng.integers(0, 2**32)))
    base = rng.normal(100.0, 5.0)
    samples = (base + rng.normal(0, 0.5, size=n_samples)).astype("<f4")
    return header + samples.tobytes()


def cluster_command(node_id: int, command: str, arg: float = 0.0) -> bytes:
    """A cluster control command message (type=2)."""
    cmd = command.encode("ascii")[:16].ljust(16, b"\x00")
    return struct.pack("<IHHI", _CLUSTER_MAGIC, 2, node_id & 0xFFFF, 0) + cmd + struct.pack("<d", arg)


def random_payload(rng: np.random.Generator, size: int) -> bytes:
    """Uniform random bytes -- the *unrealistic* flood content of lesson 1."""
    if size <= 0:
        return b""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def shannon_entropy(data: bytes) -> float:
    """Byte-level Shannon entropy in bits (0..8).

    Used by the anomaly engine: random/encrypted payloads approach 8 bits,
    ASCII protocol text sits near 4-5, cluster telemetry lower still.
    """
    if not data:
        return 0.0
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    probs = counts[counts > 0] / len(data)
    return float(-(probs * np.log2(probs)).sum())


def shannon_entropy_prefix(data: bytes, limit: int) -> float:
    """``shannon_entropy(data[:limit])`` without materializing the slice.

    Bit-identical to the sliced form: ``np.frombuffer(..., count=n)`` reads
    the same first ``n`` bytes the slice would copy, and every subsequent
    operation (bincount, division by ``n``, ``log2``, pairwise sum) is the
    same expression over the same values.  The anomaly fast path relies on
    this exactness to stay score-for-score identical to the baseline.
    """
    n = min(len(data), limit)
    if n == 0:
        return 0.0
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8, count=n),
                         minlength=256)
    probs = counts[counts > 0] / n
    return float(-(probs * np.log2(probs)).sum())
