"""Workload generation: payloads, arrival processes, site profiles, mixer."""

from .generators import constant_rate_arrivals, onoff_arrivals, poisson_arrivals
from .mixer import Scenario, ScenarioBuilder
from .payload import (
    cluster_command,
    cluster_telemetry,
    http_request,
    http_response,
    random_payload,
    shannon_entropy,
    smtp_exchange,
    telnet_login,
)
from .profiles import ClusterProfile, EcommerceProfile, TrafficProfile

__all__ = [
    "poisson_arrivals",
    "constant_rate_arrivals",
    "onoff_arrivals",
    "Scenario",
    "ScenarioBuilder",
    "http_request",
    "http_response",
    "smtp_exchange",
    "telnet_login",
    "cluster_telemetry",
    "cluster_command",
    "random_payload",
    "shannon_entropy",
    "TrafficProfile",
    "ClusterProfile",
    "EcommerceProfile",
]
