"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while the
subclasses keep failure modes distinguishable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleError",
    "NetworkError",
    "AddressError",
    "TcpStateError",
    "TraceFormatError",
    "ConfigurationError",
    "CardinalityError",
    "ScorecardError",
    "UnknownMetricError",
    "ScoreValueError",
    "WeightingError",
    "MeasurementError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class ScheduleError(SimulationError):
    """Raised when an event is scheduled in the past or on a stopped engine."""


class NetworkError(ReproError):
    """Base class for errors in the network substrate."""


class AddressError(NetworkError):
    """Raised for malformed IPv4 addresses or exhausted subnets."""


class TcpStateError(NetworkError):
    """Raised on an illegal TCP state-machine transition."""


class TraceFormatError(NetworkError):
    """Raised when a serialized packet trace cannot be parsed."""


class ConfigurationError(ReproError):
    """Raised when a component is assembled with invalid options."""


class CardinalityError(ConfigurationError):
    """Raised when IDS subprocess wiring violates the Figure-2 cardinalities."""


class ScorecardError(ReproError):
    """Base class for scorecard-methodology errors."""


class UnknownMetricError(ScorecardError):
    """Raised when a metric name is not present in the catalog in use."""


class ScoreValueError(ScorecardError):
    """Raised when a metric score is outside the discrete 0..4 range."""


class WeightingError(ScorecardError):
    """Raised for invalid requirement sets or weight derivations."""


class MeasurementError(ReproError):
    """Raised when an evaluation experiment cannot produce an observation."""
