"""Deterministic named random-number streams.

Every stochastic component in the testbed draws from its own named stream so
that adding a new traffic source does not perturb the draws of existing ones.
Streams are derived from a single root seed with :class:`numpy.random.SeedSequence`
spawned per name, which gives independence guarantees without bookkeeping.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, reproducible :class:`numpy.random.Generator` s.

    Parameters
    ----------
    seed:
        Root seed.  Two registries built with the same seed hand out
        bit-identical streams for the same names, regardless of the order
        in which the names are first requested.

    Examples
    --------
    >>> a = RngRegistry(42).stream("traffic.web")
    >>> b = RngRegistry(42).stream("traffic.web")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-name key is derived by hashing the name, so stream identity
        depends only on ``(seed, name)`` -- never on creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.Philox(seq))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. per evaluation trial)."""
        return RngRegistry(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
