"""Coroutine-style processes on top of the callback engine.

A :class:`Process` wraps a generator that yields either a ``float`` delay
(sleep for that many simulated seconds) or a :class:`Signal` (wait until it is
triggered).  This mirrors the familiar SimPy style while keeping the hot
packet path on plain callbacks.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> out = []
>>> def worker():
...     out.append(("start", eng.now))
...     yield 2.0
...     out.append(("done", eng.now))
>>> _ = Process(eng, worker())
>>> _ = eng.run()
>>> out
[('start', 0.0), ('done', 2.0)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import SimulationError
from .engine import Engine

__all__ = ["Signal", "Process"]


class Signal:
    """A one-shot event that processes can wait on.

    A signal is *triggered* at most once with an optional value; every
    waiter registered before or after triggering observes the same value.
    """

    __slots__ = ("_engine", "_triggered", "_value", "_waiters", "name")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self._triggered = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"signal {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters at the current sim time."""
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            # Wake on a fresh event so waiters run after the trigger's caller.
            self._engine.schedule(0.0, cb, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self._triggered:
            self._engine.schedule(0.0, callback, self._value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover
        state = "triggered" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class Process:
    """Run a generator as a simulated process.

    The generator may yield:

    * a non-negative ``float``/``int`` -- sleep that many simulated seconds;
    * a :class:`Signal` -- suspend until the signal triggers; the signal's
      value is sent back into the generator.

    When the generator returns, :attr:`done` becomes a triggered signal
    carrying the generator's return value.
    """

    __slots__ = ("_engine", "_gen", "done", "name", "_alive")

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._engine = engine
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Signal(engine, name=f"{self.name}.done")
        self._alive = True
        engine.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self) -> None:
        """Stop the process; its ``done`` signal triggers with ``None``."""
        if not self._alive:
            return
        self._alive = False
        self._gen.close()
        if not self.done.triggered:
            self.done.trigger(None)

    def _resume(self, send_value: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.done.trigger(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded.add_waiter(self._resume)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._alive = False
                self._gen.close()
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded!r}"
                )
            self._engine.schedule(float(yielded), self._resume, None)
        else:
            self._alive = False
            self._gen.close()
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )


def start(engine: Engine, generator: Generator[Any, Any, Any], name: str = "") -> Process:
    """Convenience wrapper: ``start(eng, gen())`` reads better inline."""
    return Process(engine, generator, name=name)
