"""Deterministic fault injection for the Figure-1 pipeline.

The paper's Architectural/Performance metrics (dynamic adaptability,
induced latency, capacity, timeliness) presume an IDS that keeps working
while parts of it fail or saturate.  This module supplies the *fault
side* of that contract: a declarative, seedable :class:`FaultPlan`
(component crash/recover at scheduled times, link loss and latency
spikes, sensor overload, analyzer stall/backpressure, manager partition)
and a :class:`FaultInjector` that applies a plan to any deployment
through ordinary engine-scheduled events.

Design rules:

* **Deterministic.**  Fault times are fractions of the scenario duration
  resolved against the engine clock at :meth:`FaultInjector.arm` time;
  the only randomness (link loss sampling) comes from a generator seeded
  by the plan, so two runs of the same (plan, seed, scenario) are
  identical.
* **Dormant when empty.**  An empty plan schedules nothing, arms no
  degradation hook, and leaves the packet path untouched -- a no-fault
  run through the injector is byte-identical to a run without it.
* **Duck-typed.**  The injector only relies on the degradation hooks
  (``force_fail``/``force_restore``, ``set_slowdown``, ``stall``/
  ``resume``, ``partition``/``heal``) and the ``Deployment`` attribute
  shape (``sensors``/``analyzers``/``monitor``/``pipeline``), so it
  works with every product -- including host-agent-only deployments,
  where faults against absent components are skipped *with accounting*
  rather than failing the run.

Availability bookkeeping is analytic: every resolved fault contributes a
weighted downtime window per component (full weight for crash/stall/
partition, the lost service fraction ``1 - 1/slowdown`` for overload,
the loss fraction for link loss, zero for pure added latency), each
component's total is clamped to the scenario duration, and availability
is ``1 - sum(downtime) / (components * duration)``.  This makes
availability exactly reproducible, always in ``[0, 1]``, and monotone in
fault severity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .engine import Engine

__all__ = [
    "FaultKind",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "named_plan",
    "plan_names",
]


class FaultKind(enum.Enum):
    """What goes wrong (section-2.2 components, failure-mode side)."""

    CRASH = "crash"                # component hard-down, later restored
    OVERLOAD = "overload"          # sensor slowdown (magnitude = factor)
    STALL = "stall"                # analyzer backpressure: queue, then drain
    PARTITION = "partition"        # monitor cut off from manager/operator
    LINK_LOSS = "link-loss"        # monitored link drops a packet fraction
    LINK_LATENCY = "link-latency"  # monitored link adds per-packet delay


#: target prefixes each kind may name
_ALLOWED_TARGETS: Dict[FaultKind, Tuple[str, ...]] = {
    FaultKind.CRASH: ("sensor", "analyzer", "balancer"),
    FaultKind.OVERLOAD: ("sensor",),
    FaultKind.STALL: ("analyzer",),
    FaultKind.PARTITION: ("monitor",),
    FaultKind.LINK_LOSS: ("link",),
    FaultKind.LINK_LATENCY: ("link",),
}


@dataclass(frozen=True)
class Fault:
    """One scheduled fault window.

    Parameters
    ----------
    kind:
        What goes wrong.
    target:
        ``"sensor:0"`` / ``"sensor:*"`` / ``"analyzer:1"`` /
        ``"analyzer:*"`` / ``"balancer"`` / ``"monitor"`` / ``"link"``.
    start_frac / duration_frac:
        Window expressed as fractions of the scenario duration, so one
        plan adapts to quick and full runs alike.
    magnitude:
        Kind-specific intensity: slowdown factor (>= 1) for OVERLOAD,
        drop fraction in [0, 1] for LINK_LOSS, added seconds for
        LINK_LATENCY; ignored for CRASH/STALL/PARTITION.
    """

    kind: FaultKind
    target: str
    start_frac: float
    duration_frac: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        prefix = self.target.split(":", 1)[0]
        if prefix not in _ALLOWED_TARGETS[self.kind]:
            raise ConfigurationError(
                f"{self.kind.value} fault cannot target {self.target!r}")
        if not 0.0 <= self.start_frac <= 1.0:
            raise ConfigurationError("start_frac must be in [0, 1]")
        if self.duration_frac < 0.0:
            raise ConfigurationError("duration_frac must be >= 0")
        if self.kind is FaultKind.OVERLOAD and self.magnitude < 1.0:
            raise ConfigurationError("overload magnitude is a slowdown "
                                     "factor and must be >= 1")
        if self.kind is FaultKind.LINK_LOSS and not 0.0 <= self.magnitude <= 1.0:
            raise ConfigurationError("link-loss magnitude is a drop "
                                     "fraction and must be in [0, 1]")
        if self.magnitude < 0.0:
            raise ConfigurationError("magnitude must be >= 0")

    # ------------------------------------------------------------------
    def scaled(self, severity: float) -> "Fault":
        """This fault at ``severity`` (0 = no fault, 1 = as declared).

        Durations scale linearly and clamp at the end of the scenario
        window; intensity magnitudes scale so that severity 0 is exactly
        a no-op and every contribution grows monotonically in severity.
        """
        if severity < 0.0:
            raise ConfigurationError("severity must be >= 0")
        end = min(self.start_frac + self.duration_frac * severity, 1.0)
        magnitude = self.magnitude
        if self.kind is FaultKind.OVERLOAD:
            magnitude = 1.0 + (self.magnitude - 1.0) * severity
        elif self.kind is FaultKind.LINK_LOSS:
            magnitude = min(self.magnitude * severity, 1.0)
        elif self.kind is FaultKind.LINK_LATENCY:
            magnitude = self.magnitude * severity
        return replace(self, duration_frac=end - self.start_frac,
                       magnitude=magnitude)

    def downtime_weight(self) -> float:
        """Service-loss fraction while this fault is active."""
        if self.kind in (FaultKind.CRASH, FaultKind.STALL,
                         FaultKind.PARTITION):
            return 1.0
        if self.kind is FaultKind.OVERLOAD:
            return 1.0 - 1.0 / max(self.magnitude, 1.0)
        if self.kind is FaultKind.LINK_LOSS:
            return min(self.magnitude, 1.0)
        return 0.0  # LINK_LATENCY: degraded, but still delivering

    def token(self) -> Tuple:
        """Stable, hashable identity (cache-key participation)."""
        return (self.kind.value, self.target, float(self.start_frac),
                float(self.duration_frac), float(self.magnitude))


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered set of fault windows plus the loss-sampling seed."""

    name: str
    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def scaled(self, severity: float) -> "FaultPlan":
        """The same plan with every fault scaled to ``severity``."""
        if severity == 1.0:
            return self
        return replace(self, faults=tuple(f.scaled(severity)
                                          for f in self.faults))

    def token(self) -> Tuple:
        """Stable identity of the plan's *content* (cache-key input)."""
        return (self.name, self.seed,
                tuple(f.token() for f in self.faults))


# ----------------------------------------------------------------------
# the named-plan registry (CLI ``--faults`` vocabulary)
# ----------------------------------------------------------------------
def _reference_faults() -> Tuple[Fault, ...]:
    # The reference crash/recover plan.  Composed so every product --
    # including host-agent-only deployments with no network sensors --
    # loses some component time: the analyzer-crash and monitor-partition
    # windows apply to all four products.
    return (
        Fault(FaultKind.CRASH, "sensor:0", 0.25, 0.30),
        Fault(FaultKind.CRASH, "analyzer:0", 0.35, 0.15),
        Fault(FaultKind.PARTITION, "monitor", 0.45, 0.20),
    )


_PLANS: Dict[str, Callable[[], Tuple[Fault, ...]]] = {
    "none": tuple,
    "crash-recover": _reference_faults,
    "sensor-overload": lambda: (
        Fault(FaultKind.OVERLOAD, "sensor:*", 0.20, 0.50, magnitude=6.0),),
    "analyzer-stall": lambda: (
        Fault(FaultKind.STALL, "analyzer:*", 0.25, 0.35),),
    "manager-partition": lambda: (
        Fault(FaultKind.PARTITION, "monitor", 0.30, 0.40),),
    "link-degraded": lambda: (
        Fault(FaultKind.LINK_LOSS, "link", 0.20, 0.30, magnitude=0.30),
        Fault(FaultKind.LINK_LATENCY, "link", 0.55, 0.25, magnitude=0.02),),
    "cascade": lambda: (
        Fault(FaultKind.LINK_LOSS, "link", 0.15, 0.20, magnitude=0.15),
        Fault(FaultKind.CRASH, "sensor:*", 0.30, 0.25),
        Fault(FaultKind.STALL, "analyzer:*", 0.35, 0.25),
        Fault(FaultKind.PARTITION, "monitor", 0.50, 0.25),
        Fault(FaultKind.CRASH, "balancer", 0.60, 0.10),),
}


def plan_names() -> Tuple[str, ...]:
    """Names accepted by :func:`named_plan` (and CLI ``--faults``)."""
    return tuple(_PLANS)


def named_plan(name: str, seed: int = 0) -> FaultPlan:
    """Instantiate one of the canned fault plans."""
    try:
        faults = _PLANS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; known plans: "
            f"{', '.join(plan_names())}") from None
    return FaultPlan(name=name, faults=faults, seed=seed)


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Apply a :class:`FaultPlan` to a deployment over one scenario.

    Construct one injector per run, call :meth:`arm` once at (or before)
    scenario start, and route scenario traffic through :meth:`ingest`
    instead of ``deployment.ingest`` so the link faults can act on it.
    """

    def __init__(self, engine: Engine, deployment, plan: FaultPlan,
                 duration_s: float) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self.engine = engine
        self.deployment = deployment
        self.plan = plan
        self.duration_s = float(duration_s)
        self._rng = np.random.default_rng(plan.seed)
        self._armed = False

        # accounting
        self.applied: List[Tuple[Fault, str]] = []   # (fault, component)
        self.skipped: List[Tuple[Fault, str]] = []   # (fault, reason)
        self.packets_lost = 0
        self.packets_delayed = 0
        self._downtime: Dict[str, float] = {}

        # live link state (driven by scheduled events)
        self._loss_frac = 0.0
        self._latency_s = 0.0

    # ------------------------------------------------------------------
    # deployment shape (duck-typed)
    # ------------------------------------------------------------------
    @property
    def _sensors(self) -> list:
        return list(getattr(self.deployment, "sensors", []) or [])

    @property
    def _analyzers(self) -> list:
        return list(getattr(self.deployment, "analyzers", []) or [])

    @property
    def _balancer(self):
        return getattr(getattr(self.deployment, "pipeline", None),
                       "balancer", None)

    @property
    def _monitor(self):
        return getattr(self.deployment, "monitor", None)

    def component_count(self) -> int:
        """Components whose uptime the availability figure averages over:
        every sensor and analyzer, the monitor, the balancer (if any) and
        the monitored link itself."""
        n = len(self._sensors) + len(self._analyzers) + 1  # link
        if self._monitor is not None:
            n += 1
        if self._balancer is not None:
            n += 1
        return n

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, start_at: Optional[float] = None) -> None:
        """Resolve targets and schedule every fault window's events."""
        if self._armed:
            raise ConfigurationError("injector already armed")
        self._armed = True
        if self.plan.is_empty:
            return
        t0 = self.engine.now if start_at is None else float(start_at)
        balancer = self._balancer
        if balancer is not None:
            # graceful degradation: re-select around down sensors for the
            # whole faulted run (the hook stays dormant in clean runs)
            balancer.failover = True
        for fault in self.plan.faults:
            for label, on, off in self._resolve(fault):
                start = t0 + fault.start_frac * self.duration_s
                window = fault.duration_frac * self.duration_s
                self.applied.append((fault, label))
                self._downtime[label] = (
                    self._downtime.get(label, 0.0)
                    + fault.downtime_weight() * window)
                if window > 0.0:
                    self.engine.schedule_at(start, on)
                    self.engine.schedule_at(start + window, off)

    def _resolve(self, fault: Fault):
        """Yield ``(component label, apply, revert)`` for one fault."""
        prefix, _, index = fault.target.partition(":")
        if prefix in ("sensor", "analyzer"):
            pool = self._sensors if prefix == "sensor" else self._analyzers
            if not pool:
                self.skipped.append((fault, f"no {prefix}s in deployment"))
                return
            if index == "*":
                members = list(enumerate(pool))
            else:
                i = int(index)
                if i >= len(pool):
                    self.skipped.append(
                        (fault, f"{prefix}:{i} absent "
                                f"({len(pool)} present)"))
                    return
                members = [(i, pool[i])]
            for i, comp in members:
                yield (f"{prefix}:{i}",
                       *self._component_hooks(fault, comp))
            return
        if prefix == "balancer":
            balancer = self._balancer
            if balancer is None:
                self.skipped.append((fault, "no balancer in deployment"))
                return
            yield "balancer", *self._component_hooks(fault, balancer)
            return
        if prefix == "monitor":
            monitor = self._monitor
            if monitor is None:
                self.skipped.append((fault, "no monitor in deployment"))
                return
            yield "monitor", monitor.partition, monitor.heal
            return
        # the monitored link: handled by this injector's ingest wrapper
        if fault.kind is FaultKind.LINK_LOSS:
            frac = min(fault.magnitude, 1.0)
            yield ("link", lambda: self._shift_loss(frac),
                   lambda: self._shift_loss(-frac))
        else:
            delay = fault.magnitude
            yield ("link", lambda: self._shift_latency(delay),
                   lambda: self._shift_latency(-delay))

    def _component_hooks(self, fault: Fault, comp):
        """(apply, revert) callbacks for a sensor/analyzer/balancer."""
        if fault.kind is FaultKind.OVERLOAD:
            factor = max(fault.magnitude, 1.0)
            return (lambda: comp.set_slowdown(factor), comp.clear_slowdown)
        if fault.kind is FaultKind.STALL:
            # analyzer backpressure: queue detections, drain on resume
            return comp.stall, comp.resume
        balancer = self._balancer
        if (balancer is not None and comp in self._sensors
                and comp is not balancer):
            def restore(sensor=comp):
                sensor.force_restore()
                # recovery re-registration: the balancer learns the sensor
                # is back and may route to it again
                balancer.notify_recovered(sensor)
            return comp.force_fail, restore
        return comp.force_fail, comp.force_restore

    def _shift_loss(self, delta: float) -> None:
        self._loss_frac = min(max(self._loss_frac + delta, 0.0), 1.0)

    def _shift_latency(self, delta: float) -> None:
        self._latency_s = max(self._latency_s + delta, 0.0)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def ingest(self, pkt) -> None:
        """Offer one scenario packet, subject to the link faults."""
        if self._loss_frac > 0.0 and self._rng.random() < self._loss_frac:
            self.packets_lost += 1
            return
        if self._latency_s > 0.0:
            self.packets_delayed += 1
            self.engine.schedule(self._latency_s, self.deployment.ingest,
                                 pkt)
            return
        self.deployment.ingest(pkt)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def availability(self) -> float:
        """Time-and-component-averaged service availability in [0, 1]."""
        if not self._armed:
            raise ConfigurationError("arm() the injector before reading "
                                     "availability")
        total = self.component_count() * self.duration_s
        down = sum(min(d, self.duration_s) for d in self._downtime.values())
        return 1.0 - down / total

    def degradation_counters(self) -> Dict[str, int]:
        """Graceful-degradation accounting gathered from the hooks."""
        counters: Dict[str, int] = {
            "faults_applied": len(self.applied),
            "faults_skipped": len(self.skipped),
            "link_packets_lost": self.packets_lost,
            "link_packets_delayed": self.packets_delayed,
        }
        sensors = self._sensors
        counters["sensor_injected_failures"] = sum(
            getattr(s, "injected_failures", 0) for s in sensors)
        counters["sensor_dropped_down"] = sum(
            getattr(s, "dropped_down", 0) for s in sensors)
        analyzers = self._analyzers
        counters["analyzer_dropped_down"] = sum(
            getattr(a, "dropped_down", 0) for a in analyzers)
        counters["analyzer_stalled"] = sum(
            getattr(a, "stalled_detections", 0) for a in analyzers)
        counters["analyzer_shed"] = sum(
            getattr(a, "shed_detections", 0) for a in analyzers)
        balancer = self._balancer
        if balancer is not None:
            counters["balancer_failovers"] = getattr(balancer, "failovers", 0)
            counters["balancer_dropped_down"] = getattr(
                balancer, "dropped_down", 0)
            counters["balancer_shed_no_sensor"] = getattr(
                balancer, "shed_no_sensor", 0)
            counters["balancer_recoveries"] = getattr(
                balancer, "recoveries", 0)
        monitor = self._monitor
        if monitor is not None:
            counters["monitor_deferred_notifications"] = getattr(
                monitor, "deferred_notifications", 0)
            counters["monitor_suppressed_responses"] = getattr(
                monitor, "suppressed_responses", 0)
        return counters
