"""Discrete-event simulation kernel: engine, processes, RNG, resources, stats."""

from .engine import Engine, EventHandle
from .faults import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    named_plan,
    plan_names,
)
from .process import Process, Signal, start
from .resources import HostCpu, LoadHandle
from .rng import RngRegistry
from .stats import Counter, RateMeter, Reservoir, Series, TimeWeighted, Welford

__all__ = [
    "Engine",
    "EventHandle",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "named_plan",
    "plan_names",
    "Process",
    "Signal",
    "start",
    "HostCpu",
    "LoadHandle",
    "RngRegistry",
    "Counter",
    "RateMeter",
    "Reservoir",
    "Series",
    "TimeWeighted",
    "Welford",
]
