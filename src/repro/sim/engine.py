"""Discrete-event simulation engine.

The engine is a classic event-heap kernel: callbacks are scheduled at
absolute simulated times and executed in non-decreasing time order.  Ties are
broken first by an explicit integer *priority* (lower runs first) and then by
insertion order, so runs are fully deterministic.

The engine is deliberately callback-based for speed -- the IDS testbed pushes
hundreds of thousands of packet events through it.  A coroutine-style process
layer is provided on top in :mod:`repro.sim.process` for components that read
more naturally as sequential code.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import ScheduleError, SimulationError

__all__ = ["Engine", "EventHandle"]


def _noop() -> None:  # placeholder callback while a stream cursor is built
    return None


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps :meth:`Engine.cancel` O(1).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} prio={self.priority} {state}>"


class Engine:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in simulated seconds.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> _ = eng.schedule(1.0, seen.append, "a")
    >>> _ = eng.schedule(0.5, seen.append, "b")
    >>> eng.run()
    1.0
    >>> seen
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of heap entries, including lazily cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at t={time!r}; clock already at {self._now!r}"
            )
        if not callable(fn):
            raise ScheduleError(f"callback {fn!r} is not callable")
        handle = EventHandle(float(time), priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a previously scheduled event."""
        handle.cancel()

    def schedule_stream(
        self,
        records,
        sink: Callable[..., Any],
        start_at: float = 0.0,
        speedup: float = 1.0,
        priority: int = 0,
    ) -> EventHandle:
        """Deliver a time-sorted record stream through one reusable cursor.

        ``records`` is a non-empty sequence of ``(time, payload)`` pairs in
        non-decreasing time order; record ``i`` is delivered as
        ``sink(payload_i)`` at ``start_at + (time_i - time_0) / speedup`` --
        the exact expression per-record scheduling would use.  Only one heap
        entry exists at a time instead of ``len(records)``.

        Event ordering is *identical* to eager per-record ``schedule_at``
        calls: the cursor reserves the contiguous sequence-number block
        those calls would have consumed and stamps record ``i``'s number
        before each re-push, so ties against unrelated events (same time,
        same priority) break exactly the same way.

        Cancelling the returned cursor stops the not-yet-delivered
        remainder of the stream.
        """
        n = len(records)
        if n == 0:
            raise ScheduleError("schedule_stream needs at least one record")
        if speedup <= 0:
            raise ScheduleError(f"non-positive speedup {speedup!r}")
        if not callable(sink):
            raise ScheduleError(f"sink {sink!r} is not callable")
        t0 = records[0][0]
        first_at = start_at + (records[0][0] - t0) / speedup
        if first_at < self._now:
            raise ScheduleError(
                f"cannot schedule at t={first_at!r}; "
                f"clock already at {self._now!r}")
        base = self._seq
        self._seq += n  # reserve the block eager scheduling would have used
        cursor = EventHandle(float(first_at), priority, base, _noop, ())
        idx = 0

        def fire() -> None:
            nonlocal idx
            record = records[idx]
            idx += 1
            if idx < n and not cursor.cancelled:
                cursor.time = start_at + (records[idx][0] - t0) / speedup
                cursor.seq = base + idx
                cursor.fn = fire
                cursor.args = ()
                heapq.heappush(self._heap, cursor)
            sink(record[1])

        cursor.fn = fire
        heapq.heappush(self._heap, cursor)
        return cursor

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap was empty.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self._now:  # pragma: no cover - internal guard
                raise SimulationError("event heap yielded an event in the past")
            self._now = handle.time
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()  # break cycles
            assert fn is not None
            fn(*args)
            self.events_executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        compose like wall-clock intervals.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                if until is not None and self._heap[0].time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if self.step():
                    executed += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = float(until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop a run in progress after the current callback returns."""
        self._stopped = True

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` periodically every ``interval`` seconds.

        Returns the handle of the *next* occurrence; cancelling it stops the
        series.  The returned handle object is reused for every tick so the
        caller can keep a single reference.
        """
        if interval <= 0:
            raise ScheduleError(f"non-positive interval {interval!r}")
        first = interval if start_delay is None else start_delay

        def tick(handle_box: list) -> None:
            fn(*args)
            prev = handle_box[0]
            if prev.cancelled:
                return
            nxt = self.schedule(interval, tick, handle_box, priority=priority)
            # Re-point the box and mirror cancellation state onto the caller's
            # original handle so `.cancel()` on it keeps working.
            handle_box[0] = nxt

        box: list = []
        outer = _PeriodicHandle(self, box)
        inner = self.schedule(first, tick, box, priority=priority)
        box.append(inner)
        outer._box = box
        return outer  # type: ignore[return-value]


class _PeriodicHandle(EventHandle):
    """Handle wrapping a periodic series; cancelling stops future ticks."""

    __slots__ = ("_engine", "_box")

    def __init__(self, engine: Engine, box: list) -> None:
        super().__init__(0.0, 0, -1, lambda: None, ())
        self._engine = engine
        self._box = box

    def cancel(self) -> None:
        self.cancelled = True
        if self._box:
            self._box[0].cancel()
