"""Host CPU resource accounting.

The paper's real-time focus makes *resource overhead* a first-class metric:
host-based sensing consumes 3-5 % of a monitored host's CPU for nominal event
logging and up to ~20 % for DoD C2-level audit (section 2.1), and the
Operational Performance Impact metric (Table 3) is "expressed as a percentage
of processing power".

:class:`HostCpu` models a host's processing capacity in abstract
operations/second.  Consumers register either a *continuous load* (a fraction
of capacity held for an interval, e.g. an audit daemon) or *work items*
(operations that take ``ops / effective_rate`` seconds, e.g. analyzing one
packet).  Utilization is tracked time-weighted so experiments can report the
average and peak impact of an IDS component on its host.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError
from .engine import Engine
from .stats import TimeWeighted

__all__ = ["HostCpu", "LoadHandle"]


class LoadHandle:
    """Token returned by :meth:`HostCpu.add_load`; release to remove it."""

    __slots__ = ("cpu", "name", "fraction", "released")

    def __init__(self, cpu: "HostCpu", name: str, fraction: float) -> None:
        self.cpu = cpu
        self.name = name
        self.fraction = fraction
        self.released = False

    def release(self) -> None:
        if not self.released:
            self.cpu._remove_load(self)
            self.released = True


class HostCpu:
    """Time-weighted CPU utilization model for one host.

    Parameters
    ----------
    engine:
        Simulation engine supplying the clock.
    capacity_ops:
        Abstract operations per second at 100 % utilization.
    name:
        Host label used in reports.
    """

    def __init__(self, engine: Engine, capacity_ops: float = 1e9, name: str = "host") -> None:
        if capacity_ops <= 0:
            raise ConfigurationError("capacity_ops must be positive")
        self.engine = engine
        self.capacity_ops = float(capacity_ops)
        self.name = name
        self._loads: Dict[int, LoadHandle] = {}
        self._load_total = 0.0
        self._util = TimeWeighted(t0=engine.now, value=0.0)
        # per-consumer attribution of continuous load
        self._by_consumer: Dict[str, TimeWeighted] = {}

    # ------------------------------------------------------------------
    # continuous loads
    # ------------------------------------------------------------------
    def add_load(self, name: str, fraction: float) -> LoadHandle:
        """Register a continuous load of ``fraction`` of this CPU.

        Total registered load may exceed 1.0 (the host is then saturated);
        :attr:`utilization` is capped at 1.0 while :attr:`demand` reports the
        uncapped sum.
        """
        if fraction < 0:
            raise ConfigurationError(f"negative load fraction {fraction!r}")
        handle = LoadHandle(self, name, float(fraction))
        self._loads[id(handle)] = handle
        self._load_total += handle.fraction
        self._touch(name)
        return handle

    def _remove_load(self, handle: LoadHandle) -> None:
        if id(handle) in self._loads:
            del self._loads[id(handle)]
            self._load_total -= handle.fraction
            if abs(self._load_total) < 1e-15:
                self._load_total = 0.0
            self._touch(handle.name)

    def _touch(self, consumer: str) -> None:
        now = self.engine.now
        self._util.update(now, self.utilization)
        meter = self._by_consumer.setdefault(consumer, TimeWeighted(t0=now))
        meter.update(now, self._consumer_fraction(consumer))

    def _consumer_fraction(self, consumer: str) -> float:
        return sum(h.fraction for h in self._loads.values() if h.name == consumer)

    # ------------------------------------------------------------------
    # work items
    # ------------------------------------------------------------------
    def service_time(self, ops: float) -> float:
        """Seconds to complete ``ops`` operations at the current residual rate.

        Work items run in the capacity left over by continuous loads; on a
        saturated host the residual rate floors at 1 % of capacity rather
        than zero, modelling a starved-but-not-dead process.
        """
        if ops < 0:
            raise ConfigurationError(f"negative ops {ops!r}")
        residual = max(1.0 - self._load_total, 0.01)
        return ops / (self.capacity_ops * residual)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def demand(self) -> float:
        """Sum of registered load fractions (may exceed 1.0)."""
        return self._load_total

    @property
    def utilization(self) -> float:
        """Instantaneous utilization, capped at 1.0."""
        return min(self._load_total, 1.0)

    @property
    def saturated(self) -> bool:
        return self._load_total > 1.0 + 1e-12

    def average_utilization(self, until: Optional[float] = None) -> float:
        self._util.update(self.engine.now, self.utilization)
        return self._util.average(until)

    def consumer_average(self, consumer: str, until: Optional[float] = None) -> float:
        """Time-weighted average fraction attributed to one consumer."""
        meter = self._by_consumer.get(consumer)
        if meter is None:
            return 0.0
        meter.update(self.engine.now, self._consumer_fraction(consumer))
        return meter.average(until)

    def __repr__(self) -> str:  # pragma: no cover
        return f"HostCpu({self.name!r}, demand={self._load_total:.3f})"
