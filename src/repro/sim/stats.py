"""Online statistics accumulators used throughout the testbed.

All accumulators are single-pass and O(1) memory except
:class:`Reservoir`, which keeps a bounded sample for quantiles.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Welford",
    "Counter",
    "TimeWeighted",
    "Reservoir",
    "RateMeter",
    "Series",
]


class Welford:
    """Streaming mean/variance via Welford's algorithm."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.n < 2:
            return float("nan")
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")

    def merge(self, other: "Welford") -> "Welford":
        """Return a new accumulator equivalent to seeing both inputs."""
        out = Welford()
        if self.n == 0:
            out.n, out._mean, out._m2 = other.n, other._mean, other._m2
            out.min, out.max = other.min, other.max
            return out
        if other.n == 0:
            out.n, out._mean, out._m2 = self.n, self._mean, self._m2
            out.min, out.max = self.min, self.max
            return out
        n = self.n + other.n
        delta = other._mean - self._mean
        out.n = n
        out._mean = self._mean + delta * other.n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Welford(n={self.n}, mean={self.mean:.6g}, stdev={self.stdev:.6g})"


class Counter:
    """A named bag of integer counters with dict-like access."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def inc(self, name: str, by: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self._counts!r})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Feed ``update(t, value)`` whenever the signal changes; the average over
    ``[t0, t_last]`` weights each value by how long it was held.
    """

    __slots__ = ("_t0", "_t_last", "_value", "_area", "_max")

    def __init__(self, t0: float = 0.0, value: float = 0.0) -> None:
        self._t0 = float(t0)
        self._t_last = float(t0)
        self._value = float(value)
        self._area = 0.0
        self._max = float(value)

    def update(self, t: float, value: float) -> None:
        if t < self._t_last:
            raise ValueError(f"time went backwards: {t} < {self._t_last}")
        self._area += self._value * (t - self._t_last)
        self._t_last = float(t)
        self._value = float(value)
        if value > self._max:
            self._max = float(value)

    @property
    def current(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    def average(self, until: Optional[float] = None) -> float:
        """Average over ``[t0, until]`` (defaults to the last update time)."""
        t_end = self._t_last if until is None else float(until)
        if t_end < self._t_last:
            raise ValueError("until precedes last update")
        area = self._area + self._value * (t_end - self._t_last)
        span = t_end - self._t0
        return area / span if span > 0 else self._value


class Reservoir:
    """Fixed-size uniform reservoir sample for quantile estimation."""

    def __init__(self, capacity: int = 4096, rng: Optional[np.random.Generator] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._rng = rng or np.random.default_rng(0)
        self._sample: List[float] = []
        self.n = 0

    def add(self, x: float) -> None:
        self.n += 1
        if len(self._sample) < self.capacity:
            self._sample.append(float(x))
        else:
            j = int(self._rng.integers(0, self.n))
            if j < self.capacity:
                self._sample[j] = float(x)

    def quantile(self, q: float) -> float:
        if not self._sample:
            return float("nan")
        return float(np.quantile(np.asarray(self._sample), q))

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        if not self._sample:
            return [float("nan")] * len(qs)
        arr = np.asarray(self._sample)
        return [float(v) for v in np.quantile(arr, qs)]


class RateMeter:
    """Event rate estimation over a sliding history of fixed-width bins."""

    def __init__(self, bin_width: float = 1.0, history: int = 64) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self.history = int(history)
        self._bins: List[Tuple[int, int]] = []  # (bin index, count)

    def add(self, t: float, count: int = 1) -> None:
        idx = int(t // self.bin_width)
        if self._bins and self._bins[-1][0] == idx:
            self._bins[-1] = (idx, self._bins[-1][1] + count)
        else:
            if self._bins and idx < self._bins[-1][0]:
                raise ValueError("events must arrive in time order")
            self._bins.append((idx, count))
            if len(self._bins) > self.history:
                del self._bins[0]

    def rate(self, t: float, window: float) -> float:
        """Events per second over ``[t - window, t]``."""
        if window <= 0:
            raise ValueError("window must be positive")
        lo = (t - window) / self.bin_width
        total = sum(c for i, c in self._bins if i >= lo - 1e-12)
        return total / window

    @property
    def peak_bin_rate(self) -> float:
        if not self._bins:
            return 0.0
        return max(c for _, c in self._bins) / self.bin_width


class Series:
    """Append-only (t, value) series with numpy export; used for figures."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def add(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError("series times must be non-decreasing")
        self._t.append(float(t))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def last(self) -> Tuple[float, float]:
        if not self._t:
            raise IndexError("empty series")
        return self._t[-1], self._v[-1]
