"""Regeneration of the paper's tables and figures."""

from .figures import (
    figure1_architecture,
    figure2_cardinality,
    figure3_error_ratios,
    figure4_error_curves,
    figure5_weighted_scores,
    figure6_weight_mapping,
)
from .render import ascii_chart, text_table
from .tables import metric_table, scorecard_table, table1, table2, table3

__all__ = [
    "figure1_architecture",
    "figure2_cardinality",
    "figure3_error_ratios",
    "figure4_error_curves",
    "figure5_weighted_scores",
    "figure6_weight_mapping",
    "ascii_chart",
    "text_table",
    "metric_table",
    "scorecard_table",
    "table1",
    "table2",
    "table3",
]
