"""Plain-text rendering primitives: tables and line charts.

Everything the benchmark harness prints goes through these helpers so the
regenerated tables and figures have one consistent look.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["text_table", "ascii_chart", "series_to_csv"]


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_right: bool = True,
) -> str:
    """Render rows as a boxed monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    n_cols = max(len(r) for r in cells)
    widths = [0] * n_cols
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str], pad: str = " ") -> str:
        out = []
        for i in range(n_cols):
            cell = row[i] if i < len(row) else ""
            out.append(cell.rjust(widths[i]) if (align_right and i > 0)
                       else cell.ljust(widths[i]))
        return "| " + " | ".join(out) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt(cells[0]))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(fmt(row))
    lines.append(sep)
    return "\n".join(lines)


def series_to_csv(
    x: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Sequence[str],
    x_label: str = "x",
) -> str:
    """Render aligned series as CSV text (for external plotting tools)."""
    if len(series) != len(labels):
        raise ValueError("need one label per series")
    for s in series:
        if len(s) != len(x):
            raise ValueError("every series must match the x axis length")
    lines = [",".join([x_label, *labels])]
    for i, xv in enumerate(x):
        row = [repr(float(xv))] + [repr(float(s[i])) for s in series]
        lines.append(",".join(row))
    return "\n".join(lines)


def ascii_chart(
    x: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Sequence[str],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more line series as an ASCII chart.

    Each series gets a marker (``*``, ``o``, ``+`` ...); overlapping points
    print ``#``.
    """
    markers = "*o+x@%"
    xs = np.asarray(x, dtype=float)
    data = [np.asarray(s, dtype=float) for s in series]
    if not len(xs) or not data:
        return "(empty chart)"
    y_all = np.concatenate(data)
    y_min, y_max = float(np.nanmin(y_all)), float(np.nanmax(y_all))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, ys in enumerate(data):
        marker = markers[si % len(markers)]
        for xv, yv in zip(xs, ys):
            if np.isnan(yv):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            row = height - 1 - row
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "#"

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{markers[i % len(markers)]} {label}"
                        for i, label in enumerate(labels))
    lines.append(legend)
    lines.append(f"{y_max:10.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4g} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.4g}" +
                 " " * max(width - 20, 0) + f"{x_max:>10.4g}")
    if x_label or y_label:
        lines.append(" " * 12 + f"x: {x_label}   y: {y_label}")
    return "\n".join(lines)
