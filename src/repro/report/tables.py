"""Regeneration of the paper's tables.

* Tables 1-3 -- the metric-definition tables, straight from the catalog.
* The section-3.2 product scorecards -- our measured/derived scores for the
  four simulated products, rendered per class.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.catalog import MetricCatalog, default_catalog
from ..core.metric import MetricClass
from ..core.scorecard import Scorecard
from .render import text_table

if TYPE_CHECKING:  # pragma: no cover
    from ..eval.dependability import DependabilityReport

__all__ = ["table1", "table2", "table3", "metric_table", "scorecard_table",
           "dependability_table"]


def metric_table(metric_class: MetricClass,
                 catalog: Optional[MetricCatalog] = None,
                 table_only: bool = True,
                 definition_width: int = 60) -> str:
    """Render the definition table for one metric class."""
    catalog = catalog or default_catalog()
    titles = {
        MetricClass.LOGISTICAL: "Table 1: Selected Logistical Metrics",
        MetricClass.ARCHITECTURAL: "Table 2: Selected Architectural Metrics",
        MetricClass.PERFORMANCE: "Table 3: Selected Performance Metrics",
    }
    rows = []
    for metric in catalog.by_class(metric_class, table_only=table_only):
        definition = metric.definition
        if len(definition) > definition_width:
            definition = definition[: definition_width - 3] + "..."
        rows.append((metric.name, definition))
    return text_table(("Metric", "Definition"), rows,
                      title=titles[metric_class], align_right=False)


def table1(catalog: Optional[MetricCatalog] = None) -> str:
    """Table 1: selected logistical metrics."""
    return metric_table(MetricClass.LOGISTICAL, catalog)


def table2(catalog: Optional[MetricCatalog] = None) -> str:
    """Table 2: selected architectural metrics."""
    return metric_table(MetricClass.ARCHITECTURAL, catalog)


def table3(catalog: Optional[MetricCatalog] = None) -> str:
    """Table 3: selected performance metrics."""
    return metric_table(MetricClass.PERFORMANCE, catalog)


def scorecard_table(scorecard: Scorecard,
                    metric_class: Optional[MetricClass] = None,
                    table_only: bool = True,
                    with_evidence: bool = False) -> str:
    """Render the evaluated product scores (section 3.2 prototype run)."""
    products = scorecard.products
    metrics = [m for m in scorecard.catalog
               if (metric_class is None or m.metric_class is metric_class)
               and (m.in_paper_table or not table_only)]
    headers = ["Metric", *products]
    rows = []
    for metric in metrics:
        row = [metric.name]
        for product in products:
            entry = scorecard.get(product, metric.name)
            row.append("-" if entry is None else entry.score)
        rows.append(row)
        if with_evidence:
            for product in products:
                entry = scorecard.get(product, metric.name)
                if entry is not None and entry.evidence:
                    rows.append([f"    [{product}] {entry.evidence}"] +
                                [""] * len(products))
    title = ("Product scorecard"
             if metric_class is None
             else f"Product scorecard -- {metric_class.name.lower()} metrics")
    return text_table(headers, rows, title=title, align_right=True)


def _delta_cell(delta: float) -> str:
    if math.isinf(delta):
        return "silenced"
    return f"{delta:+.2f}s"


def dependability_table(reports: Sequence["DependabilityReport"]) -> str:
    """Render the dependability experiment (clean vs faulted runs)."""
    rows = []
    for report in reports:
        rows.append((
            report.product,
            report.plan,
            f"{report.availability:.3f}",
            f"{report.baseline_detection_ratio:.2f}",
            f"{report.runs[-1].detection_ratio:.2f}" if report.runs else "-",
            _delta_cell(report.timeliness_delta_s),
            f"{report.degradation_slope:.3f}",
        ))
    title = "Dependability under injected faults"
    return text_table(
        ("Product", "Plan", "Avail", "Det(clean)", "Det(fault)",
         "Notify delta", "Slope"), rows, title=title, align_right=True)
