"""Regeneration of the paper's figures as data + text renderings.

Each ``figureN_*`` function returns a printable string; the underlying data
series are available from the corresponding eval APIs for programmatic use.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.requirements import RequirementSet
from ..core.scorecard import Scorecard
from ..core.scoring import WeightedResult
from ..eval.accuracy import SensitivitySweep
from ..eval.ground_truth import AccuracyResult
from ..ids.component import Subprocess
from ..ids.pipeline import IdsPipeline
from .render import ascii_chart, text_table

__all__ = [
    "figure1_architecture",
    "figure2_cardinality",
    "figure3_error_ratios",
    "figure4_error_curves",
    "figure5_weighted_scores",
    "figure6_weight_mapping",
]


def figure1_architecture(pipeline: IdsPipeline) -> str:
    """Figure 1: the generalized network IDS architecture, as deployed."""
    lines = [
        "Figure 1: Generalized network IDS architecture",
        "",
        "  Internet --> Border Router --> [Load Balancer] --> Sensors",
        "               --> Analyzers --> Monitoring Console",
        "               [--> Management Console --> Traffic Control]",
        "",
        f"Deployment {pipeline.name!r}:",
    ]
    if pipeline.balancer is not None:
        lines.append(f"  load balancer : {pipeline.balancer.name} "
                     f"(strategy={pipeline.balancer.strategy})")
    else:
        lines.append("  load balancer : (none -- optional subprocess)")
    for sensor in pipeline.sensors:
        kind = "deep-inspection" if sensor.deep_inspection else "header-only"
        lines.append(f"  sensor        : {sensor.name} ({kind}, "
                     f"{sensor.ops_rate / 1e6:.0f} Mops/s)")
    for analyzer in pipeline.analyzers:
        lines.append(f"  analyzer      : {analyzer.name} "
                     f"(correlation={'on' if analyzer.correlation else 'off'})")
    lines.append(f"  monitor       : {pipeline.monitor.name} "
                 f"(channels={', '.join(pipeline.monitor.channels)})")
    if pipeline.console is not None:
        caps = [k for k, v in pipeline.console.capabilities.items() if v]
        lines.append(f"  manager       : {pipeline.console.name} "
                     f"(responses: {', '.join(caps) or 'none'})")
    else:
        lines.append("  manager       : (none -- optional subprocess)")
    lines.append(f"  analysis path : "
                 f"{'separated' if pipeline.separated else 'combined'}")
    return "\n".join(lines)


def figure2_cardinality() -> str:
    """Figure 2: relational cardinality of the IDS subprocesses."""
    rows = [
        ("Load Balancer", "Sensor", "1c : M",
         "optional; each sensor has at most one balancer"),
        ("Sensor", "Analyzer", "M : M",
         "free association; often combined 1:1"),
        ("Analyzer", "Monitor", "M : 1",
         "every analyzer reports to exactly one monitor"),
        ("Monitor", "Manager", "1 : 1c",
         "at most one (optional) management console"),
        ("Manager", "LB/Sensor/Analyzer/Monitor", "1c : M",
         "central configuration of any number of components"),
    ]
    return text_table(
        ("Upstream", "Downstream", "Cardinality", "Meaning"), rows,
        title="Figure 2: Relational cardinality of IDS subprocesses",
        align_right=False)


def figure3_error_ratios(result: AccuracyResult) -> str:
    """Figure 3: the FP/FN definitions instantiated on one run."""
    a = len(result.actual)
    d_true = len(result.detected)
    d_false = result.false_alarms
    rows = [
        ("Transactions |T|", result.transactions, ""),
        ("Actual intrusions |A|", a, ""),
        ("Detected intrusions (true)", d_true, "A ∩ D"),
        ("False positives |D - A|", d_false, "Type I"),
        ("False negatives |A - D|", len(result.missed), "Type II"),
        ("False Positive Ratio", f"{result.false_positive_ratio:.4f}",
         "|D - A| / |T|"),
        ("False Negative Ratio", f"{result.false_negative_ratio:.4f}",
         "|A - D| / |T|"),
    ]
    return text_table(("Quantity", "Value", "Definition"), rows,
                      title=f"Figure 3: error quantities for "
                            f"{result.product!r}")


def figure4_error_curves(sweep: SensitivitySweep) -> str:
    """Figure 4: Type-I/Type-II error-rate curves and the EER."""
    chart = ascii_chart(
        sweep.sensitivities,
        [sweep.fpr, sweep.fnr],
        labels=["Type I (false positive)", "Type II (false negative)"],
        title=f"Figure 4: error-rate curves for {sweep.product!r}",
        x_label="sensitivity", y_label="% error (ratio)")
    eer = sweep.eer()
    if eer is None:
        footer = "Equal Error Rate: not reached in the swept range"
    else:
        footer = (f"Equal Error Rate: rate={eer[1]:.4f} at "
                  f"sensitivity={eer[0]:.3f}")
    rows = [(f"{p.sensitivity:.2f}", f"{p.false_positive_ratio:.4f}",
             f"{p.false_negative_ratio:.4f}") for p in sweep.points]
    table = text_table(("sensitivity", "FPR", "FNR"), rows)
    return f"{chart}\n{footer}\n{table}"


def figure5_weighted_scores(results: Sequence[WeightedResult],
                            weights: Mapping[str, float]) -> str:
    """Figure 5: S_j = sum_i U_ij * W_ij, evaluated."""
    from ..core.metric import MetricClass

    rows = []
    for r in results:
        rows.append((r.product,
                     f"{r.class_scores[MetricClass.LOGISTICAL]:.2f}",
                     f"{r.class_scores[MetricClass.ARCHITECTURAL]:.2f}",
                     f"{r.class_scores[MetricClass.PERFORMANCE]:.2f}",
                     f"{r.total:.2f}"))
    n_weighted = sum(1 for w in weights.values() if w != 0.0)
    header = (f"Figure 5: weighted scores  S_j = sum_i U_ij * W_ij   "
              f"({n_weighted} weighted metrics)")
    return text_table(
        ("product", "S_1 (logistical)", "S_2 (architectural)",
         "S_3 (performance)", "total"),
        rows, title=header)


def figure6_weight_mapping(requirements: RequirementSet,
                           weights: Mapping[str, float]) -> str:
    """Figure 6: requirement-to-metric weight mapping, rendered."""
    lines = [f"Figure 6: requirement-to-metric weighting "
             f"({requirements.name!r})", "", "Requirements (least to most "
             "important):"]
    for req in requirements:
        targets = ", ".join(sorted(req.contributes_to)) or "(none)"
        lines.append(f"  w={req.weight:<5g} {req.name:<28s} -> {targets}")
    lines.append("")
    rows = [(metric, f"{weight:g}")
            for metric, weight in sorted(weights.items(),
                                         key=lambda kv: (-kv[1], kv[0]))]
    lines.append(text_table(("Metric", "Derived weight"), rows))
    return "\n".join(lines)
