"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print the metric-definition tables (Tables 1-3).
``catalog``
    List the full metric catalog, with definitions and anchors.
``scenario``
    Generate a canned, ground-truth-labeled evaluation scenario and save
    it as a binary trace.
``evaluate``
    Run the full product-field evaluation and print the weighted ranking.
    ``--workers N`` shards the measurement battery across a process pool;
    ``--cache-dir [DIR]`` memoizes completed work units on disk.  Both are
    execution knobs only: the rendered output is bit-identical for any
    worker count and cache state.
``sweep``
    Run a Figure-4 sensitivity sweep for one product.
``clear-cache``
    Delete the memoized evaluation work units (default ``.repro-cache/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]

_PROFILES = ("realtime", "distributed", "ecommerce")
_PRODUCTS = ("nid", "realsecure", "manhunt", "aafid")


def _fault_plan_names():
    from .sim.faults import plan_names

    return plan_names()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Metrics-based IDS evaluation for distributed "
                    "real-time systems (Fink et al., WPDRTS 2002)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1-3 (metric definitions)")

    p_cat = sub.add_parser("catalog", help="list the metric catalog")
    p_cat.add_argument("--all", action="store_true",
                       help="include the defined-but-not-in-table metrics")
    p_cat.add_argument("--human-factors", action="store_true",
                       help="include the human-dimension extension")

    p_tmpl = sub.add_parser(
        "template",
        help="export a blank scorecard (the paper: 'the current complete "
             "scorecard is available from the authors')")
    p_tmpl.add_argument("--out", required=True, help="output .json path")
    p_tmpl.add_argument("--products", nargs="+", default=["candidate-ids"])
    p_tmpl.add_argument("--human-factors", action="store_true")

    p_scn = sub.add_parser("scenario",
                           help="generate a labeled evaluation scenario")
    p_scn.add_argument("--out", required=True, help="output .rtrc path")
    p_scn.add_argument("--profile", choices=("cluster", "ecommerce"),
                       default="cluster")
    p_scn.add_argument("--duration", type=float, default=70.0)
    p_scn.add_argument("--seed", type=int, default=0)
    p_scn.add_argument("--no-dos", action="store_true",
                       help="omit the flood attacks")

    p_eval = sub.add_parser("evaluate", help="run the field evaluation")
    p_eval.add_argument("--profile", choices=_PROFILES, default="realtime")
    p_eval.add_argument("--quick", action="store_true")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--products", nargs="+", choices=_PRODUCTS,
                        default=list(_PRODUCTS))
    p_eval.add_argument("--engine", choices=("indexed", "linear"),
                        default="indexed",
                        help="signature matching kernel (results are "
                             "identical; linear is the reference path)")
    p_eval.add_argument("--anomaly-path", choices=("fast", "baseline"),
                        default="fast",
                        help="anomaly scoring path (scores are identical; "
                             "baseline is the reference path)")
    p_eval.add_argument("--workers", type=int, default=1,
                        help="process-pool width (1=serial, 0=one per CPU); "
                             "results are bit-identical for any value")
    p_eval.add_argument("--cache-dir", nargs="?", const=".repro-cache",
                        default=None, metavar="DIR",
                        help="memoize completed work units on disk and "
                             "share generated traces via DIR/traces/ "
                             "(default dir .repro-cache/ when the flag is "
                             "given without a path)")
    p_eval.add_argument("--faults", choices=_fault_plan_names(),
                        default="none", metavar="PLAN",
                        help="run the dependability experiment under this "
                             "named fault plan and score the two extension "
                             "metrics ('none' skips it; plans: "
                             f"{', '.join(_fault_plan_names())})")

    p_cc = sub.add_parser("clear-cache",
                          help="delete memoized evaluation work units and "
                               "the shared trace corpus")
    p_cc.add_argument("--cache-dir", default=".repro-cache", metavar="DIR")

    p_sweep = sub.add_parser("sweep", help="Figure-4 sensitivity sweep")
    p_sweep.add_argument("--product", choices=("nid", "realsecure", "manhunt"),
                         default="manhunt")
    p_sweep.add_argument("--points", type=int, default=6,
                         help="number of sensitivity points")
    p_sweep.add_argument("--duration", type=float, default=50.0)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--engine", choices=("indexed", "linear"),
                         default="indexed",
                         help="signature matching kernel (results are "
                              "identical; linear is the reference path)")
    p_sweep.add_argument("--anomaly-path", choices=("fast", "baseline"),
                         default="fast",
                         help="anomaly scoring path (scores are identical; "
                              "baseline is the reference path)")
    p_sweep.add_argument("--faults", choices=_fault_plan_names(),
                         default="none", metavar="PLAN",
                         help="sweep every sensitivity point under this "
                              "named fault plan (degraded Figure-4 curves)")
    return parser


def _product_factory(name: str):
    from .products import (
        AafidProduct,
        ManhuntProduct,
        NidProduct,
        RealSecureProduct,
    )
    return {"nid": NidProduct, "realsecure": RealSecureProduct,
            "manhunt": ManhuntProduct, "aafid": AafidProduct}[name]


def _requirements(name: str):
    from .core.profiles import (
        distributed_requirements,
        ecommerce_requirements,
        realtime_cluster_requirements,
    )
    return {"realtime": realtime_cluster_requirements,
            "distributed": distributed_requirements,
            "ecommerce": ecommerce_requirements}[name]()


def _cmd_tables(args, out) -> int:
    from .report.tables import table1, table2, table3

    print(table1(), file=out)
    print("", file=out)
    print(table2(), file=out)
    print("", file=out)
    print(table3(), file=out)
    return 0


def _cmd_catalog(args, out) -> int:
    from .core.catalog import default_catalog
    from .core.extensions import extend_catalog

    catalog = default_catalog()
    if args.human_factors:
        catalog = extend_catalog(catalog)
    for metric in catalog:
        if not args.all and not metric.in_paper_table and not args.human_factors:
            continue
        methods = ", ".join(sorted(m.value for m in metric.methods))
        print(f"[class {metric.metric_class.value}] {metric.name} "
              f"({methods})", file=out)
        print(f"    {metric.definition}", file=out)
        if metric.anchors:
            print(f"    low(0): {metric.anchors.low}", file=out)
            print(f"    avg(2): {metric.anchors.average}", file=out)
            print(f"    high(4): {metric.anchors.high}", file=out)
    return 0


def _cmd_template(args, out) -> int:
    from .core.catalog import default_catalog
    from .core.extensions import extend_catalog
    from .core.io import save_scorecard
    from .core.scorecard import Scorecard

    catalog = default_catalog()
    if args.human_factors:
        catalog = extend_catalog(catalog)
    card = Scorecard(catalog)
    for product in args.products:
        card.add_product(product)
    save_scorecard(card, args.out)
    print(f"blank scorecard for {len(card.products)} product(s) over "
          f"{len(catalog)} metrics written to {args.out}", file=out)
    print("score each metric 0-4 per the anchors "
          "(python -m repro catalog --all) and reload with "
          "repro.core.load_scorecard", file=out)
    return 0


def _cmd_scenario(args, out) -> int:
    from .net.address import Subnet
    from .eval.testbed import cluster_scenario, ecommerce_scenario

    nodes = list(Subnet("10.0.0.0/24").hosts(6))
    if args.profile == "cluster":
        scenario = cluster_scenario(nodes, duration_s=args.duration,
                                    seed=args.seed,
                                    include_dos=not args.no_dos)
    else:
        scenario = ecommerce_scenario(nodes[0], nodes,
                                      duration_s=args.duration,
                                      seed=args.seed,
                                      include_dos=not args.no_dos)
    scenario.trace.save(args.out)
    print(scenario.summary(), file=out)
    print(f"\nsaved {len(scenario.trace)} packets to {args.out}", file=out)
    return 0


def _cmd_evaluate(args, out) -> int:
    from .core.report import format_weighted_results
    from .eval.runner import EvaluationOptions, evaluate_field
    from .report.tables import scorecard_table

    if args.quick:
        options = EvaluationOptions(
            seed=args.seed, n_hosts=4, scenario_duration_s=40.0,
            train_duration_s=15.0,
            throughput_rates_pps=(500, 4000, 32000), throughput_probe_s=0.4,
            workers=args.workers, cache_dir=args.cache_dir,
            engine=args.engine, anomaly_path=args.anomaly_path,
            faults=args.faults)
    else:
        options = EvaluationOptions(seed=args.seed, workers=args.workers,
                                    cache_dir=args.cache_dir,
                                    engine=args.engine,
                                    anomaly_path=args.anomaly_path,
                                    faults=args.faults)
    factories = [_product_factory(p) for p in args.products]
    requirements = _requirements(args.profile)
    catalog = None
    if args.faults != "none":
        from .core.catalog import default_catalog
        from .core.extensions import (
            dependability_metrics,
            dependability_requirement,
            extend_catalog,
        )

        catalog = extend_catalog(default_catalog(), dependability_metrics())
        requirements.add(dependability_requirement())
    field = evaluate_field(factories, requirements, options, catalog)
    print(scorecard_table(field.scorecard), file=out)
    print("", file=out)
    print(format_weighted_results(field.results), file=out)
    print(f"\nranking ({args.profile}): {' > '.join(field.ranking())}",
          file=out)
    if args.faults != "none":
        from .report.tables import dependability_table

        reports = [ev.bundle.dependability
                   for ev in field.evaluations.values()
                   if ev.bundle.dependability is not None]
        print("", file=out)
        print(dependability_table(reports), file=out)
    if args.cache_dir is not None:
        from .eval.parallel import last_cache_stats, last_corpus_stats

        stats = last_cache_stats()
        if stats is not None:
            print(f"result cache: {stats.hits} hit(s), "
                  f"{stats.misses} miss(es)", file=out)
        corpus = last_corpus_stats()
        if corpus is not None:
            print(f"trace corpus: {corpus.hits} hit(s), "
                  f"{corpus.misses} miss(es)", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    from .eval.accuracy import sensitivity_sweep
    from .ids.anomaly import use_anomaly_path
    from .ids.signature import use_engine
    from .report.figures import figure4_error_curves

    factory_cls = _product_factory(args.product)
    points = [i / max(args.points - 1, 1) for i in range(args.points)]
    points = [max(p, 0.05) for p in points]
    fault_plan = None
    if args.faults != "none":
        from .sim.faults import named_plan

        fault_plan = named_plan(args.faults, seed=args.seed)
    with use_engine(args.engine), use_anomaly_path(args.anomaly_path):
        sweep = sensitivity_sweep(
            lambda s: factory_cls(sensitivity=s), f"sim-{args.product}",
            tuple(points), seed=args.seed, duration_s=args.duration,
            fault_plan=fault_plan)
    print(figure4_error_curves(sweep), file=out)
    return 0


def _cmd_clear_cache(args, out) -> int:
    from .eval.parallel import clear_cache

    removed = clear_cache(args.cache_dir)
    print(f"removed {removed} cached entr(ies) -- work units and corpus "
          f"traces -- from {args.cache_dir}", file=out)
    return 0


_COMMANDS = {
    "tables": _cmd_tables,
    "catalog": _cmd_catalog,
    "template": _cmd_template,
    "scenario": _cmd_scenario,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "clear-cache": _cmd_clear_cache,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)
