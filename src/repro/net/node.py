"""Network nodes: hosts, switches with port mirroring, border router.

The testbed follows Figure 1 of the paper: traffic enters from the
"Internet" through a border router onto the protected LAN; the IDS either
sits *in-line* (all traffic passes through it, adding latency) or receives a
*mirrored* copy from a switch SPAN port (no added latency, but the mirror
port itself is a finite link that can drop under load).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, NetworkError
from ..sim.engine import Engine
from ..sim.resources import HostCpu
from .address import IPv4Address
from .link import Link
from .packet import Packet

__all__ = ["Node", "Host", "Switch", "BorderRouter"]

PacketHandler = Callable[[Packet], None]


class Node:
    """Base network node: receives packets and forwards to attached links."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self.received_packets = 0
        self.received_bytes = 0

    def receive(self, pkt: Packet) -> None:
        self.received_packets += 1
        self.received_bytes += pkt.wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class Host(Node):
    """An end host with an address, a CPU, and pluggable packet handlers.

    Handlers registered with :meth:`on_packet` run for every packet delivered
    to this host (e.g. a server application, or a host-based IDS agent).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        address: IPv4Address,
        cpu_capacity_ops: float = 1e9,
    ) -> None:
        super().__init__(engine, name)
        self.address = address
        self.cpu = HostCpu(engine, capacity_ops=cpu_capacity_ops, name=name)
        self._handlers: List[PacketHandler] = []
        self.uplink: Optional[Link] = None

    def on_packet(self, handler: PacketHandler) -> None:
        self._handlers.append(handler)

    def receive(self, pkt: Packet) -> None:
        super().receive(pkt)
        for handler in self._handlers:
            handler(pkt)

    def send(self, pkt: Packet) -> bool:
        """Transmit via the host's uplink (must be attached first)."""
        if self.uplink is None:
            raise NetworkError(f"host {self.name!r} has no uplink attached")
        return self.uplink.send(pkt)


class Switch(Node):
    """A learning-free switch: forwards by destination address table and can
    mirror every forwarded packet to SPAN ports.

    Mirroring copies the packet (fresh pid, same ground truth) onto the SPAN
    link; if the SPAN link saturates, the copies are dropped there -- exactly
    the visibility loss a passive sensor suffers at high load.
    """

    def __init__(self, engine: Engine, name: str = "switch") -> None:
        super().__init__(engine, name)
        self._table: Dict[int, Link] = {}
        self._span: List[Link] = []
        self.default_route: Optional[Link] = None
        self.forwarded = 0
        self.unroutable = 0
        self.mirrored = 0

    def attach(self, address: IPv4Address, link: Link) -> None:
        """Bind a destination address to an egress link."""
        self._table[address.value] = link

    def add_span(self, link: Link) -> None:
        """Add a SPAN (mirror) port."""
        self._span.append(link)

    def receive(self, pkt: Packet) -> None:
        super().receive(pkt)
        egress = self._table.get(pkt.dst.value, self.default_route)
        for span in self._span:
            span.send(pkt.copy())
            self.mirrored += 1
        if egress is None:
            self.unroutable += 1
            return
        egress.send(pkt)
        self.forwarded += 1


class BorderRouter(Node):
    """Boundary device between the Internet side and the protected LAN.

    Supports a *block list* of source addresses (populated by the management
    console's response actions, section 2.2 / Table 3 "Router Interaction").
    Blocked packets are counted and discarded before reaching the LAN.
    """

    def __init__(self, engine: Engine, name: str = "border") -> None:
        super().__init__(engine, name)
        self.lan_side: Optional[Link] = None
        self.wan_side: Optional[Link] = None
        self._blocked: set[int] = set()
        self.blocked_packets = 0

    def block(self, address: IPv4Address) -> None:
        self._blocked.add(address.value)

    def unblock(self, address: IPv4Address) -> None:
        self._blocked.discard(address.value)

    @property
    def block_list_size(self) -> int:
        return len(self._blocked)

    def is_blocked(self, address: IPv4Address) -> bool:
        return address.value in self._blocked

    def receive_from_wan(self, pkt: Packet) -> None:
        """Inbound packet from the Internet side."""
        self.receive(pkt)
        if pkt.src.value in self._blocked:
            self.blocked_packets += 1
            return
        if self.lan_side is None:
            raise ConfigurationError(f"router {self.name!r} has no LAN link")
        self.lan_side.send(pkt)

    def receive_from_lan(self, pkt: Packet) -> None:
        """Outbound packet toward the Internet."""
        self.receive(pkt)
        if self.wan_side is None:
            raise ConfigurationError(f"router {self.name!r} has no WAN link")
        self.wan_side.send(pkt)
