"""Topology construction for the evaluation testbed.

:class:`LanTestbed` assembles the Figure-1 deployment: an Internet ingress,
a border router, a switch fronting a protected subnet of hosts, and an
optional SPAN mirror point where a passive IDS can tap the traffic.  The
graph structure is also exported as a :mod:`networkx` graph for structural
queries (used by tests and the architecture figure).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import networkx as nx

from ..errors import ConfigurationError
from ..sim.engine import Engine
from .address import IPv4Address, Subnet
from .link import Link
from .node import BorderRouter, Host, Switch
from .packet import Packet

__all__ = ["LanTestbed"]


class LanTestbed:
    """The simulated protected network of Figure 1.

    Parameters
    ----------
    engine:
        Simulation engine.
    subnet:
        CIDR of the protected LAN.
    n_hosts:
        Number of protected hosts to instantiate.
    lan_bandwidth_bps / wan_bandwidth_bps:
        Link speeds.  The paper's cluster scenario is a tuned high-speed
        LAN; the defaults reflect 2002-era gigabit LAN / fast-Ethernet WAN.
    span_bandwidth_bps:
        Capacity of the mirror port feeding a passive sensor.
    """

    def __init__(
        self,
        engine: Engine,
        subnet: str = "10.0.0.0/24",
        n_hosts: int = 8,
        lan_bandwidth_bps: float = 1e9,
        wan_bandwidth_bps: float = 100e6,
        span_bandwidth_bps: float = 1e9,
        queue_bytes: int = 512 * 1024,
    ) -> None:
        if n_hosts < 1:
            raise ConfigurationError("n_hosts must be >= 1")
        self.engine = engine
        self.subnet = Subnet(subnet)
        self.router = BorderRouter(engine)
        self.switch = Switch(engine)
        self.hosts: List[Host] = []
        self._by_address: Dict[int, Host] = {}

        # Internet -> router (WAN ingress handled directly via router API).
        # Router -> switch.
        self.router_switch = Link(
            engine, lan_bandwidth_bps, 20e-6, queue_bytes,
            sink=self.switch.receive, name="router->switch",
        )
        self.router.lan_side = self.router_switch

        # Switch -> router (outbound traffic leaving the LAN).
        self.switch_router = Link(
            engine, lan_bandwidth_bps, 20e-6, queue_bytes,
            sink=self.router.receive_from_lan, name="switch->router",
        )
        self.switch.default_route = self.switch_router

        # WAN egress: discard packets (the Internet absorbs them) by default.
        self.wan_egress = Link(
            engine, wan_bandwidth_bps, 5e-3, queue_bytes,
            sink=lambda pkt: None, name="router->wan",
        )
        self.router.wan_side = self.wan_egress

        for i in range(n_hosts):
            addr = self.subnet.allocate()
            host = Host(engine, f"host{i}", addr)
            down = Link(engine, lan_bandwidth_bps, 10e-6, queue_bytes,
                        sink=host.receive, name=f"switch->{host.name}")
            up = Link(engine, lan_bandwidth_bps, 10e-6, queue_bytes,
                      sink=self.switch.receive, name=f"{host.name}->switch")
            host.uplink = up
            self.switch.attach(addr, down)
            self.hosts.append(host)
            self._by_address[addr.value] = host

        self.span_bandwidth_bps = span_bandwidth_bps
        self.queue_bytes = queue_bytes
        self._span_links: List[Link] = []

    # ------------------------------------------------------------------
    def host_by_address(self, address: IPv4Address) -> Optional[Host]:
        return self._by_address.get(IPv4Address(address).value)

    def add_span_tap(self, sink: Callable[[Packet], None], name: str = "span") -> Link:
        """Mirror all switched traffic to ``sink`` over a finite SPAN link."""
        link = Link(
            self.engine, self.span_bandwidth_bps, 10e-6, self.queue_bytes,
            sink=sink, name=name,
        )
        self.switch.add_span(link)
        self._span_links.append(link)
        return link

    def inject_from_wan(self, pkt: Packet) -> None:
        """Deliver a packet arriving from the Internet to the border router."""
        self.router.receive_from_wan(pkt)

    def inject_on_lan(self, pkt: Packet) -> None:
        """Deliver a packet originating inside the LAN to the switch."""
        self.switch.receive(pkt)

    # ------------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """Structural graph of the testbed (nodes + directed links)."""
        g = nx.DiGraph()
        g.add_node("internet", kind="internet")
        g.add_node(self.router.name, kind="router")
        g.add_node(self.switch.name, kind="switch")
        g.add_edge("internet", self.router.name)
        g.add_edge(self.router.name, self.switch.name,
                   bandwidth=self.router_switch.bandwidth_bps)
        g.add_edge(self.switch.name, self.router.name,
                   bandwidth=self.switch_router.bandwidth_bps)
        g.add_edge(self.router.name, "internet",
                   bandwidth=self.wan_egress.bandwidth_bps)
        for host in self.hosts:
            g.add_node(host.name, kind="host", address=str(host.address))
            g.add_edge(self.switch.name, host.name)
            g.add_edge(host.name, self.switch.name)
        for i, span in enumerate(self._span_links):
            tap = f"span{i}"
            g.add_node(tap, kind="span")
            g.add_edge(self.switch.name, tap, bandwidth=span.bandwidth_bps)
        return g

    @property
    def total_dropped_packets(self) -> int:
        links = [self.router_switch, self.switch_router, self.wan_egress, *self._span_links]
        for host in self.hosts:
            if host.uplink is not None:
                links.append(host.uplink)
        return sum(l.dropped_packets for l in links)
