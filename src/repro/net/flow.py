"""Flow identification and tracking.

A *flow* is the bidirectional conversation identified by the canonicalized
five-tuple.  :class:`FlowTracker` maintains per-flow counters with idle
eviction; it backs the session-aware load balancer (which must keep a TCP
session on one sensor, section 2.2) and the anomaly engine's rate baselines.
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional, Tuple

from .address import IPv4Address
from .packet import Packet, Protocol

__all__ = ["FlowKey", "FlowStats", "FlowTracker"]


class FlowKey(NamedTuple):
    """Canonical bidirectional flow key: endpoints sorted so that both
    directions of a conversation map to the same key."""

    addr_lo: IPv4Address
    port_lo: int
    addr_hi: IPv4Address
    port_hi: int
    proto: Protocol

    @classmethod
    def of(cls, pkt: Packet) -> "FlowKey":
        a = (pkt.src.value, pkt.sport)
        b = (pkt.dst.value, pkt.dport)
        if a <= b:
            return cls(pkt.src, pkt.sport, pkt.dst, pkt.dport, pkt.proto)
        return cls(pkt.dst, pkt.dport, pkt.src, pkt.sport, pkt.proto)


class FlowStats:
    """Mutable per-flow counters."""

    __slots__ = ("key", "first_seen", "last_seen", "packets", "bytes", "forward_packets")

    def __init__(self, key: FlowKey, now: float) -> None:
        self.key = key
        self.first_seen = now
        self.last_seen = now
        self.packets = 0
        self.bytes = 0
        # packets travelling lo -> hi, to expose direction asymmetry
        self.forward_packets = 0

    def update(self, pkt: Packet, now: float) -> None:
        self.last_seen = now
        self.packets += 1
        self.bytes += pkt.wire_size
        if (pkt.src.value, pkt.sport) == (self.key.addr_lo.value, self.key.port_lo):
            self.forward_packets += 1

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen


class FlowTracker:
    """Track active flows with idle-timeout eviction.

    Parameters
    ----------
    idle_timeout:
        Flows unseen for this many simulated seconds are evicted on the next
        :meth:`expire` sweep.
    max_flows:
        Hard cap; when exceeded the oldest (least recently seen) flow is
        evicted immediately.  This models the bounded session tables of real
        sensors -- an IDS under SYN-flood pressure loses old state.
    """

    def __init__(self, idle_timeout: float = 60.0, max_flows: int = 100_000) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if max_flows <= 0:
            raise ValueError("max_flows must be positive")
        self.idle_timeout = float(idle_timeout)
        self.max_flows = int(max_flows)
        self._flows: Dict[FlowKey, FlowStats] = {}
        self.evicted = 0

    def observe(self, pkt: Packet, now: float) -> FlowStats:
        """Record a packet; returns the (possibly new) flow record."""
        key = FlowKey.of(pkt)
        stats = self._flows.get(key)
        if stats is None:
            if len(self._flows) >= self.max_flows:
                self._evict_oldest()
            stats = FlowStats(key, now)
            self._flows[key] = stats
        stats.update(pkt, now)
        return stats

    def _evict_oldest(self) -> None:
        oldest_key = min(self._flows, key=lambda k: self._flows[k].last_seen)
        del self._flows[oldest_key]
        self.evicted += 1

    def get(self, pkt_or_key: "Packet | FlowKey") -> Optional[FlowStats]:
        key = pkt_or_key if isinstance(pkt_or_key, FlowKey) else FlowKey.of(pkt_or_key)
        return self._flows.get(key)

    def expire(self, now: float) -> int:
        """Evict idle flows; returns how many were removed."""
        cutoff = now - self.idle_timeout
        dead = [k for k, s in self._flows.items() if s.last_seen < cutoff]
        for k in dead:
            del self._flows[k]
        self.evicted += len(dead)
        return len(dead)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowStats]:
        return iter(self._flows.values())

    def top_talkers(self, n: int = 10) -> Tuple[FlowStats, ...]:
        """The ``n`` flows with the most bytes."""
        return tuple(sorted(self._flows.values(), key=lambda s: -s.bytes)[:n])
