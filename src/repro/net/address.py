"""IPv4 addresses and subnets.

A tiny, dependency-free address model: addresses are immutable wrappers
around a 32-bit integer; subnets are CIDR blocks that can parse, test
membership, and hand out host addresses sequentially (for topology
construction).
"""

from __future__ import annotations

from typing import Iterator

from ..errors import AddressError

__all__ = ["IPv4Address", "Subnet"]


class IPv4Address:
    """An immutable IPv4 address.

    Accepts either a dotted-quad string or a 32-bit integer.

    >>> IPv4Address("10.0.0.1").value == (10 << 24) + 1
    True
    >>> str(IPv4Address(0x0A000001))
    '10.0.0.1'
    """

    # ``value`` is a plain slot, not a property: address ints are read in
    # per-packet rule lambdas, where a property's python-level getter call
    # is measurable.  Immutability is by convention (nothing assigns to it
    # after construction).
    __slots__ = ("value",)

    def __init__(self, value: "int | str | IPv4Address") -> None:
        if isinstance(value, IPv4Address):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise AddressError(f"address integer out of range: {value!r}")
            self.value = value
        elif isinstance(value, str):
            self.value = self._parse(value)
        else:
            raise AddressError(f"cannot build address from {value!r}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return value

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + int(offset))


class Subnet:
    """A CIDR block, e.g. ``Subnet("10.0.0.0/24")``.

    Supports membership tests and sequential host allocation.  The network
    and broadcast addresses are never allocated.
    """

    __slots__ = ("network", "prefix", "_next_host")

    def __init__(self, cidr: str) -> None:
        try:
            net_text, prefix_text = cidr.strip().split("/")
        except ValueError:
            raise AddressError(f"malformed CIDR {cidr!r}") from None
        self.prefix = int(prefix_text)
        if not 0 <= self.prefix <= 32:
            raise AddressError(f"prefix out of range in {cidr!r}")
        base = IPv4Address(net_text).value
        mask = self.mask_value
        if base & ~mask & 0xFFFFFFFF:
            raise AddressError(f"{cidr!r} has host bits set")
        self.network = IPv4Address(base)
        self._next_host = 1

    @property
    def mask_value(self) -> int:
        if self.prefix == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix)) & 0xFFFFFFFF

    @property
    def num_hosts(self) -> int:
        """Usable host addresses (excludes network & broadcast for /0../30)."""
        size = 1 << (32 - self.prefix)
        return max(size - 2, 0) if self.prefix <= 30 else (size if self.prefix == 32 else 2)

    @property
    def broadcast(self) -> IPv4Address:
        return IPv4Address(self.network.value | (~self.mask_value & 0xFFFFFFFF))

    def __contains__(self, addr: "IPv4Address | str") -> bool:
        a = IPv4Address(addr)
        return (a.value & self.mask_value) == self.network.value

    def allocate(self) -> IPv4Address:
        """Hand out the next unused host address."""
        if self.prefix > 30:
            raise AddressError(f"cannot allocate hosts from /{self.prefix}")
        if self._next_host > self.num_hosts:
            raise AddressError(f"subnet {self} exhausted")
        addr = IPv4Address(self.network.value + self._next_host)
        self._next_host += 1
        return addr

    def hosts(self, count: int) -> Iterator[IPv4Address]:
        """Allocate ``count`` host addresses."""
        for _ in range(count):
            yield self.allocate()

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix}"

    def __repr__(self) -> str:
        return f"Subnet('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Subnet):
            return self.network == other.network and self.prefix == other.prefix
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.network, self.prefix))
