"""Serializable packet traces ("canned data with known attack content").

The paper's second lesson learned: the observed false-negative ratio is only
measurable by replaying *canned data with known attack content*.  A
:class:`Trace` is an ordered sequence of ``(time, Packet)`` records carrying
ground-truth attack labels, serializable to a compact binary format so
scenarios can be generated once and replayed deterministically against every
product under test.

Binary layout (little-endian)::

    magic   4s   b"RTRC"
    version u16  (currently 1)
    count   u32
    records:
        time     f64
        src,dst  u32 u32
        sport    u16
        dport    u16
        proto    u8   (0=TCP 1=UDP 2=ICMP)
        flags    u8
        seq,ack  u32 u32
        plen     u32  logical payload length
        blen     u32  materialized byte count (<= plen)
        alen     u16  attack_id length (0 = benign)
        payload  blen bytes
        attack   alen bytes (utf-8)

Data plane
----------
The format has one codec but two implementations.  ``save``/``load``/
``to_bytes``/``from_bytes`` run the *batched* implementation: encode packs
every record into one joined buffer and issues a single write; decode maps
the whole file (``mmap`` when possible) and walks it with
``struct.unpack_from`` offsets, slicing payload bytes straight out of the
single buffer instead of issuing one ``read`` per field.  The original
per-record stream loop is kept verbatim as ``_write``/``_read`` -- the v1
reference the round-trip property tests compare against byte-for-byte.

Replay likewise has two modes (:data:`DEFAULT_REPLAY_MODE`,
:func:`use_replay_mode`): ``"scheduled"`` heap-inserts one event per record
up front (the reference), while ``"batched"`` drives the whole sorted
stream through a single reusable engine cursor
(:meth:`repro.sim.engine.Engine.schedule_stream`).  The cursor reserves the
same sequence-number block eager scheduling would have consumed, so event
ordering -- including ties against unrelated events -- is identical.
"""

from __future__ import annotations

import heapq
import io
import mmap
import os
import struct
from contextlib import contextmanager
from typing import (
    BinaryIO,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import TraceFormatError
from ..sim.engine import Engine, EventHandle
from .address import IPv4Address
from .packet import Packet, Protocol, TcpFlags

__all__ = [
    "TimedPacket",
    "Trace",
    "TraceRecorder",
    "REPLAY_MODES",
    "DEFAULT_REPLAY_MODE",
    "use_replay_mode",
]

_MAGIC = b"RTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")
_RECORD = struct.Struct("<dIIHHBBIIIIH")
_PROTO_CODE = {Protocol.TCP: 0, Protocol.UDP: 1, Protocol.ICMP: 2}
_CODE_PROTO = {v: k for k, v in _PROTO_CODE.items()}

#: The selectable replay modes (identical delivery order; see module doc).
REPLAY_MODES = ("batched", "scheduled")

#: Mode used when ``Trace.replay`` is called without an explicit ``mode=``.
DEFAULT_REPLAY_MODE = "batched"


def _check_replay_mode(mode: str) -> str:
    if mode not in REPLAY_MODES:
        raise TraceFormatError(
            f"unknown replay mode {mode!r}; expected one of {REPLAY_MODES}")
    return mode


@contextmanager
def use_replay_mode(mode: str) -> Iterator[None]:
    """Temporarily change the default replay mode (benchmarks/tests)."""
    global DEFAULT_REPLAY_MODE
    previous = DEFAULT_REPLAY_MODE
    DEFAULT_REPLAY_MODE = _check_replay_mode(mode)
    try:
        yield
    finally:
        DEFAULT_REPLAY_MODE = previous


class TimedPacket(Tuple[float, Packet]):
    """A ``(time, packet)`` record; plain tuple subclass for readability."""

    __slots__ = ()

    def __new__(cls, time: float, packet: Packet) -> "TimedPacket":
        return super().__new__(cls, (float(time), packet))

    @property
    def time(self) -> float:
        return self[0]

    @property
    def packet(self) -> Packet:
        return self[1]


class Trace:
    """An ordered, labeled packet trace.

    Records must be appended in non-decreasing time order (enforced), which
    keeps replay a single linear pass.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._records: List[TimedPacket] = []
        # cached aggregate sweeps; invalidated by append()
        self._total_bytes: Optional[int] = None
        self._attack_packets: Optional[int] = None

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def append(self, time: float, packet: Packet) -> None:
        if self._records and time < self._records[-1].time:
            raise TraceFormatError(
                f"record at t={time} precedes previous t={self._records[-1].time}"
            )
        self._records.append(TimedPacket(time, packet))
        self._total_bytes = None
        self._attack_packets = None

    def extend(self, records: Iterable[Tuple[float, Packet]]) -> None:
        for t, p in records:
            self.append(t, p)

    @staticmethod
    def merge(traces: Iterable["Trace"], name: str = "merged") -> "Trace":
        """Merge traces by time (stable across equal timestamps)."""
        merged = Trace(name)
        streams = [list(t) for t in traces]
        for rec in heapq.merge(*streams, key=lambda r: r.time):
            merged._records.append(rec)
        return merged

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TimedPacket]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TimedPacket:
        return self._records[idx]

    @property
    def duration(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    @property
    def total_bytes(self) -> int:
        if self._total_bytes is None:
            self._total_bytes = sum(
                r.packet.wire_size for r in self._records)
        return self._total_bytes

    def attack_ids(self) -> set:
        """Distinct ground-truth attack instances present in the trace."""
        return {r.packet.attack_id for r in self._records if r.packet.attack_id}

    def attack_packet_count(self) -> int:
        if self._attack_packets is None:
            self._attack_packets = sum(
                1 for r in self._records if r.packet.attack_id)
        return self._attack_packets

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def save(self, fileobj_or_path) -> None:
        """Write the trace; accepts a path (str/``os.PathLike``/bytes) or a
        writable binary file object."""
        if isinstance(fileobj_or_path, (str, bytes, os.PathLike)):
            with open(fileobj_or_path, "wb") as fh:
                fh.write(self._encode())
        else:
            fileobj_or_path.write(self._encode())

    def _encode(self) -> bytes:
        """Batched encoder: pack every record, join, one buffer out.

        Byte-identical to the v1 stream loop ``_write`` (same structs, same
        field order), proven by the round-trip property tests.
        """
        parts = [_HEADER.pack(_MAGIC, _VERSION, len(self._records))]
        pack = _RECORD.pack
        append = parts.append
        for t, p in self._records:
            payload = p.payload or b""
            attack = (p.attack_id or "").encode("utf-8")
            append(pack(
                t,
                p.src.value,
                p.dst.value,
                p.sport,
                p.dport,
                _PROTO_CODE[p.proto],
                int(p.flags),
                p.seq & 0xFFFFFFFF,
                p.ack & 0xFFFFFFFF,
                p.payload_len,
                len(payload),
                len(attack),
            ))
            if payload:
                append(payload)
            if attack:
                append(attack)
        return b"".join(parts)

    def _write(self, fh: BinaryIO) -> None:
        """v1 reference encoder: one ``write`` per field group per record.

        Kept unchanged as the differential baseline for ``_encode``.
        """
        fh.write(_HEADER.pack(_MAGIC, _VERSION, len(self._records)))
        for t, p in self._records:
            payload = p.payload or b""
            attack = (p.attack_id or "").encode("utf-8")
            fh.write(
                _RECORD.pack(
                    t,
                    p.src.value,
                    p.dst.value,
                    p.sport,
                    p.dport,
                    _PROTO_CODE[p.proto],
                    int(p.flags),
                    p.seq & 0xFFFFFFFF,
                    p.ack & 0xFFFFFFFF,
                    p.payload_len,
                    len(payload),
                    len(attack),
                )
            )
            fh.write(payload)
            fh.write(attack)

    @classmethod
    def load(cls, fileobj_or_path, name: Optional[str] = None) -> "Trace":
        """Read a trace from a path (str/``os.PathLike``/bytes path), or a
        readable binary file object.

        A ``bytes`` value that starts with the trace magic is raw trace
        *content*, not a path -- a mistake this method refuses loudly
        instead of surfacing a confusing filesystem error.
        """
        if isinstance(fileobj_or_path, bytes):
            if fileobj_or_path[:len(_MAGIC)] == _MAGIC:
                raise TraceFormatError(
                    "Trace.load was handed raw trace bytes, not a filesystem "
                    "path; decode in-memory trace data with Trace.from_bytes")
            fileobj_or_path = os.fsdecode(fileobj_or_path)
        if isinstance(fileobj_or_path, (str, os.PathLike)):
            path = os.fspath(fileobj_or_path)
            with open(path, "rb") as fh:
                try:
                    buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    # empty file or mmap-hostile filesystem
                    return cls._decode(fh.read(), name or str(path))
                with buf:
                    return cls._decode(buf, name or str(path))
        return cls._decode(fileobj_or_path.read(), name or "trace")

    @classmethod
    def _decode(cls, buf, name: str) -> "Trace":
        """Batched decoder over one ``bytes``/``mmap`` buffer.

        ``unpack_from`` walks fixed offsets with no per-record reads;
        payloads are sliced straight out of the buffer (an ``mmap`` slice
        materializes only the pages actually touched).  Decodes exactly the
        records -- and raises exactly the errors -- of the v1 stream loop
        ``_read``.
        """
        end = len(buf)
        if end < _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, count = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        trace = cls(name)
        records = trace._records
        unpack_from = _RECORD.unpack_from
        rsize = _RECORD.size
        off = _HEADER.size
        for _ in range(count):
            if off + rsize > end:
                raise TraceFormatError("truncated trace record")
            (t, src, dst, sport, dport, proto_code, flags,
             seq, ack, plen, blen, alen) = unpack_from(buf, off)
            off += rsize
            if blen:
                if off + blen > end:
                    raise TraceFormatError("truncated payload")
                payload = bytes(buf[off:off + blen])
                off += blen
            else:
                payload = None
            if alen:
                if off + alen > end:
                    raise TraceFormatError("truncated attack id")
                attack_id = bytes(buf[off:off + alen]).decode("utf-8")
                off += alen
            else:
                attack_id = None
            pkt = Packet(
                src=IPv4Address(src),
                dst=IPv4Address(dst),
                sport=sport,
                dport=dport,
                proto=_CODE_PROTO[proto_code],
                flags=TcpFlags(flags),
                seq=seq,
                ack=ack,
                payload=payload,
                payload_len=plen,
                attack_id=attack_id,
            )
            records.append(TimedPacket(t, pkt))
        return trace

    @classmethod
    def _read(cls, fh: BinaryIO, name: str) -> "Trace":
        """v1 reference decoder: one stream read per field group.

        Kept unchanged as the differential baseline for ``_decode``.
        """
        head = fh.read(_HEADER.size)
        if len(head) != _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, count = _HEADER.unpack(head)
        if magic != _MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        trace = cls(name)
        for _ in range(count):
            raw = fh.read(_RECORD.size)
            if len(raw) != _RECORD.size:
                raise TraceFormatError("truncated trace record")
            (t, src, dst, sport, dport, proto_code, flags,
             seq, ack, plen, blen, alen) = _RECORD.unpack(raw)
            payload = fh.read(blen) if blen else None
            if payload is not None and len(payload) != blen:
                raise TraceFormatError("truncated payload")
            attack_raw = fh.read(alen)
            if len(attack_raw) != alen:
                raise TraceFormatError("truncated attack id")
            pkt = Packet(
                src=IPv4Address(src),
                dst=IPv4Address(dst),
                sport=sport,
                dport=dport,
                proto=_CODE_PROTO[proto_code],
                flags=TcpFlags(flags),
                seq=seq,
                ack=ack,
                payload=payload,
                payload_len=plen,
                attack_id=attack_raw.decode("utf-8") if alen else None,
            )
            trace._records.append(TimedPacket(t, pkt))
        return trace

    def to_bytes(self) -> bytes:
        return self._encode()

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "trace") -> "Trace":
        return cls._decode(data, name)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @staticmethod
    def recorder(engine: Engine, name: str = "recorded") -> "TraceRecorder":
        """A packet sink that records everything it sees into a trace.

        Section 4: "The best way to evaluate any IDS is to use real traffic
        (live or recorded) from the site where the IDS is expected to be
        deployed."  Attach the recorder to a SPAN tap
        (``testbed.add_span_tap(rec)``), run the site's traffic, then
        ``rec.trace.save(...)`` and replay against every candidate.
        """
        return TraceRecorder(engine, name)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(
        self,
        engine: Engine,
        sink: Callable[[Packet], None],
        start_at: float = 0.0,
        speedup: float = 1.0,
        mode: Optional[str] = None,
    ) -> Optional[EventHandle]:
        """Feed every record to ``sink`` on ``engine``'s clock.

        ``speedup > 1`` compresses inter-packet gaps (a rate-scaling knob for
        throughput sweeps); packet *content* is unchanged.  ``mode`` selects
        the delivery mechanism (``None`` = :data:`DEFAULT_REPLAY_MODE`);
        both modes produce identical event ordering, and the returned handle
        (batched mode) cancels the not-yet-delivered remainder.
        """
        if speedup <= 0:
            raise TraceFormatError("speedup must be positive")
        mode = _check_replay_mode(
            DEFAULT_REPLAY_MODE if mode is None else mode)
        if not self._records:
            return None
        if mode == "batched":
            return engine.schedule_stream(
                self._records, sink, start_at=start_at, speedup=speedup)
        t0 = self._records[0].time
        for t, pkt in self._records:
            at = start_at + (t - t0) / speedup
            engine.schedule_at(at, sink, pkt)
        return None


class TraceRecorder:
    """Callable packet sink that appends every packet to a trace.

    The recorded packet is a copy, so later mutation of live packets never
    corrupts the recording; ground-truth labels are preserved.
    """

    def __init__(self, engine: Engine, name: str = "recorded") -> None:
        self.engine = engine
        self.trace = Trace(name)
        self.enabled = True

    def __call__(self, pkt: Packet) -> None:
        if self.enabled:
            self.trace.append(self.engine.now, pkt.copy())

    def stop(self) -> None:
        self.enabled = False

    def __len__(self) -> int:
        return len(self.trace)
