"""Serializable packet traces ("canned data with known attack content").

The paper's second lesson learned: the observed false-negative ratio is only
measurable by replaying *canned data with known attack content*.  A
:class:`Trace` is an ordered sequence of ``(time, Packet)`` records carrying
ground-truth attack labels, serializable to a compact binary format so
scenarios can be generated once and replayed deterministically against every
product under test.

Binary layout (little-endian)::

    magic   4s   b"RTRC"
    version u16  (currently 1)
    count   u32
    records:
        time     f64
        src,dst  u32 u32
        sport    u16
        dport    u16
        proto    u8   (0=TCP 1=UDP 2=ICMP)
        flags    u8
        seq,ack  u32 u32
        plen     u32  logical payload length
        blen     u32  materialized byte count (<= plen)
        alen     u16  attack_id length (0 = benign)
        payload  blen bytes
        attack   alen bytes (utf-8)
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Callable, Iterable, Iterator, List, Optional, Tuple

from ..errors import TraceFormatError
from ..sim.engine import Engine
from .address import IPv4Address
from .packet import Packet, Protocol, TcpFlags

__all__ = ["TimedPacket", "Trace", "TraceRecorder"]

_MAGIC = b"RTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")
_RECORD = struct.Struct("<dIIHHBBIIIIH")
_PROTO_CODE = {Protocol.TCP: 0, Protocol.UDP: 1, Protocol.ICMP: 2}
_CODE_PROTO = {v: k for k, v in _PROTO_CODE.items()}


class TimedPacket(Tuple[float, Packet]):
    """A ``(time, packet)`` record; plain tuple subclass for readability."""

    __slots__ = ()

    def __new__(cls, time: float, packet: Packet) -> "TimedPacket":
        return super().__new__(cls, (float(time), packet))

    @property
    def time(self) -> float:
        return self[0]

    @property
    def packet(self) -> Packet:
        return self[1]


class Trace:
    """An ordered, labeled packet trace.

    Records must be appended in non-decreasing time order (enforced), which
    keeps replay a single linear pass.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._records: List[TimedPacket] = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def append(self, time: float, packet: Packet) -> None:
        if self._records and time < self._records[-1].time:
            raise TraceFormatError(
                f"record at t={time} precedes previous t={self._records[-1].time}"
            )
        self._records.append(TimedPacket(time, packet))

    def extend(self, records: Iterable[Tuple[float, Packet]]) -> None:
        for t, p in records:
            self.append(t, p)

    @staticmethod
    def merge(traces: Iterable["Trace"], name: str = "merged") -> "Trace":
        """Merge traces by time (stable across equal timestamps)."""
        merged = Trace(name)
        streams = [list(t) for t in traces]
        import heapq

        for rec in heapq.merge(*streams, key=lambda r: r.time):
            merged._records.append(rec)
        return merged

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TimedPacket]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TimedPacket:
        return self._records[idx]

    @property
    def duration(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    @property
    def total_bytes(self) -> int:
        return sum(r.packet.wire_size for r in self._records)

    def attack_ids(self) -> set:
        """Distinct ground-truth attack instances present in the trace."""
        return {r.packet.attack_id for r in self._records if r.packet.attack_id}

    def attack_packet_count(self) -> int:
        return sum(1 for r in self._records if r.packet.attack_id)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def save(self, fileobj_or_path) -> None:
        if isinstance(fileobj_or_path, (str, bytes)):
            with open(fileobj_or_path, "wb") as fh:
                self._write(fh)
        else:
            self._write(fileobj_or_path)

    def _write(self, fh: BinaryIO) -> None:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, len(self._records)))
        for t, p in self._records:
            payload = p.payload or b""
            attack = (p.attack_id or "").encode("utf-8")
            fh.write(
                _RECORD.pack(
                    t,
                    p.src.value,
                    p.dst.value,
                    p.sport,
                    p.dport,
                    _PROTO_CODE[p.proto],
                    int(p.flags),
                    p.seq & 0xFFFFFFFF,
                    p.ack & 0xFFFFFFFF,
                    p.payload_len,
                    len(payload),
                    len(attack),
                )
            )
            fh.write(payload)
            fh.write(attack)

    @classmethod
    def load(cls, fileobj_or_path, name: Optional[str] = None) -> "Trace":
        if isinstance(fileobj_or_path, (str, bytes)):
            with open(fileobj_or_path, "rb") as fh:
                return cls._read(fh, name or str(fileobj_or_path))
        return cls._read(fileobj_or_path, name or "trace")

    @classmethod
    def _read(cls, fh: BinaryIO, name: str) -> "Trace":
        head = fh.read(_HEADER.size)
        if len(head) != _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, count = _HEADER.unpack(head)
        if magic != _MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        trace = cls(name)
        for _ in range(count):
            raw = fh.read(_RECORD.size)
            if len(raw) != _RECORD.size:
                raise TraceFormatError("truncated trace record")
            (t, src, dst, sport, dport, proto_code, flags,
             seq, ack, plen, blen, alen) = _RECORD.unpack(raw)
            payload = fh.read(blen) if blen else None
            if payload is not None and len(payload) != blen:
                raise TraceFormatError("truncated payload")
            attack_raw = fh.read(alen)
            if len(attack_raw) != alen:
                raise TraceFormatError("truncated attack id")
            pkt = Packet(
                src=IPv4Address(src),
                dst=IPv4Address(dst),
                sport=sport,
                dport=dport,
                proto=_CODE_PROTO[proto_code],
                flags=TcpFlags(flags),
                seq=seq,
                ack=ack,
                payload=payload,
                payload_len=plen,
                attack_id=attack_raw.decode("utf-8") if alen else None,
            )
            trace._records.append(TimedPacket(t, pkt))
        return trace

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        self._write(buf)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "trace") -> "Trace":
        return cls._read(io.BytesIO(data), name)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @staticmethod
    def recorder(engine: Engine, name: str = "recorded") -> "TraceRecorder":
        """A packet sink that records everything it sees into a trace.

        Section 4: "The best way to evaluate any IDS is to use real traffic
        (live or recorded) from the site where the IDS is expected to be
        deployed."  Attach the recorder to a SPAN tap
        (``testbed.add_span_tap(rec)``), run the site's traffic, then
        ``rec.trace.save(...)`` and replay against every candidate.
        """
        return TraceRecorder(engine, name)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(
        self,
        engine: Engine,
        sink: Callable[[Packet], None],
        start_at: float = 0.0,
        speedup: float = 1.0,
    ) -> None:
        """Schedule every record onto ``engine``, delivering to ``sink``.

        ``speedup > 1`` compresses inter-packet gaps (a rate-scaling knob for
        throughput sweeps); packet *content* is unchanged.
        """
        if speedup <= 0:
            raise TraceFormatError("speedup must be positive")
        if not self._records:
            return
        t0 = self._records[0].time
        for t, pkt in self._records:
            at = start_at + (t - t0) / speedup
            engine.schedule_at(at, sink, pkt)


class TraceRecorder:
    """Callable packet sink that appends every packet to a trace.

    The recorded packet is a copy, so later mutation of live packets never
    corrupts the recording; ground-truth labels are preserved.
    """

    def __init__(self, engine: Engine, name: str = "recorded") -> None:
        self.engine = engine
        self.trace = Trace(name)
        self.enabled = True

    def __call__(self, pkt: Packet) -> None:
        if self.enabled:
            self.trace.append(self.engine.now, pkt.copy())

    def stop(self) -> None:
        self.enabled = False

    def __len__(self) -> int:
        return len(self.trace)
