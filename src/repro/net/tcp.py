"""TCP session modelling.

Three cooperating pieces:

* :class:`TcpState` / :class:`TcpConnection` -- a passive connection tracker
  that watches both directions of a flow and walks the RFC-793 state machine.
  Load balancers and stateful sensors use it to know when a session exists,
  is half-open (SYN-flood symptom), or has closed.
* :class:`StreamReassembler` -- orders TCP segments by sequence number and
  exposes the contiguous application byte stream, which payload-signature
  engines scan across packet boundaries.
* :func:`build_session` -- generates a *valid* packet sequence (handshake,
  data segments, teardown) for the traffic generators, so that canned traces
  contain protocol-correct sessions rather than random datagrams.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..errors import TcpStateError
from .address import IPv4Address
from .packet import Packet, Protocol, TcpFlags

__all__ = [
    "TcpState",
    "TcpConnection",
    "SessionTable",
    "StreamReassembler",
    "build_session",
    "MSS",
]

MSS = 1460  # maximum segment size used by the generators


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    TIME_WAIT = "TIME_WAIT"
    RESET = "RESET"


# Terminal states from a tracker's point of view.
_TERMINAL = frozenset({TcpState.TIME_WAIT, TcpState.RESET, TcpState.CLOSED})


class TcpConnection:
    """Passive bidirectional TCP connection tracker.

    The tracker identifies the *initiator* as the sender of the first SYN.
    It is tolerant of retransmissions (repeated SYN/FIN do not error) but
    raises :class:`TcpStateError` in ``strict`` mode when it sees flags that
    are impossible in the current state (e.g. data before any SYN).
    """

    __slots__ = (
        "initiator",
        "responder",
        "state",
        "opened_at",
        "established_at",
        "closed_at",
        "bytes_to_responder",
        "bytes_to_initiator",
        "strict",
        "_fin_seen",
    )

    def __init__(self, strict: bool = False) -> None:
        self.initiator: Optional[Tuple[IPv4Address, int]] = None
        self.responder: Optional[Tuple[IPv4Address, int]] = None
        self.state = TcpState.CLOSED
        self.opened_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.bytes_to_responder = 0
        self.bytes_to_initiator = 0
        self.strict = strict
        self._fin_seen: set = set()  # which endpoints sent FIN

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def half_open(self) -> bool:
        """SYN seen but the three-way handshake never completed."""
        return self.state in (TcpState.SYN_SENT, TcpState.SYN_RECEIVED)

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL and self.opened_at is not None

    def feed(self, pkt: Packet, now: float) -> TcpState:
        """Observe one packet of this connection; returns the new state."""
        if pkt.proto is not Protocol.TCP:
            raise TcpStateError("TcpConnection fed a non-TCP packet")
        sender = (pkt.src, pkt.sport)

        if pkt.has_flag(TcpFlags.RST):
            if self.state is not TcpState.CLOSED or self.opened_at is not None:
                self.state = TcpState.RESET
                self.closed_at = now
            return self.state

        if pkt.has_flag(TcpFlags.SYN) and not pkt.has_flag(TcpFlags.ACK):
            # Initial SYN (or a retransmission of it).
            if self.state is TcpState.CLOSED:
                self.initiator = sender
                self.responder = (pkt.dst, pkt.dport)
                self.state = TcpState.SYN_SENT
                self.opened_at = now
            elif self.strict and self.state not in (TcpState.SYN_SENT,):
                raise TcpStateError(f"unexpected SYN in state {self.state}")
            return self.state

        if pkt.has_flag(TcpFlags.SYN) and pkt.has_flag(TcpFlags.ACK):
            if self.state is TcpState.SYN_SENT and sender == self.responder:
                self.state = TcpState.SYN_RECEIVED
            elif self.strict and self.state not in (
                TcpState.SYN_RECEIVED,
                TcpState.ESTABLISHED,
            ):
                raise TcpStateError(f"unexpected SYN/ACK in state {self.state}")
            return self.state

        if self.state is TcpState.CLOSED:
            if self.strict:
                raise TcpStateError("data/ACK on a connection with no SYN")
            return self.state

        if pkt.has_flag(TcpFlags.FIN):
            self._fin_seen.add(sender)
            self._count_payload(pkt, sender)
            if len(self._fin_seen) == 2:
                self.state = TcpState.TIME_WAIT
                self.closed_at = now
            elif self.state is TcpState.ESTABLISHED:
                self.state = TcpState.FIN_WAIT if sender == self.initiator else TcpState.CLOSE_WAIT
            return self.state

        if pkt.has_flag(TcpFlags.ACK):
            if self.state is TcpState.SYN_RECEIVED and sender == self.initiator:
                self.state = TcpState.ESTABLISHED
                self.established_at = now
            self._count_payload(pkt, sender)
            return self.state

        # Bare data segment (no ACK flag): tolerated unless strict.
        if self.strict:
            raise TcpStateError(f"segment without ACK in state {self.state}")
        self._count_payload(pkt, sender)
        return self.state

    def _count_payload(self, pkt: Packet, sender: Tuple[IPv4Address, int]) -> None:
        if pkt.payload_len:
            if sender == self.initiator:
                self.bytes_to_responder += pkt.payload_len
            else:
                self.bytes_to_initiator += pkt.payload_len


class SessionTable:
    """Bounded table of tracked TCP connections, keyed by canonical flow.

    Mirrors what a stateful sensor or TCP-aware load balancer keeps: when
    full, the oldest non-established session is dropped first (half-open
    SYN-flood entries), then the oldest established one.
    """

    def __init__(self, max_sessions: int = 65536, strict: bool = False) -> None:
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        self.max_sessions = int(max_sessions)
        self.strict = strict
        self._sessions: Dict[tuple, TcpConnection] = {}
        self._last_seen: Dict[tuple, float] = {}
        self.evicted = 0

    @staticmethod
    def _key(pkt: Packet) -> tuple:
        a = (pkt.src.value, pkt.sport)
        b = (pkt.dst.value, pkt.dport)
        return (a, b) if a <= b else (b, a)

    def feed(self, pkt: Packet, now: float) -> TcpConnection:
        key = self._key(pkt)
        conn = self._sessions.get(key)
        is_new_syn = pkt.has_flag(TcpFlags.SYN) and not pkt.has_flag(TcpFlags.ACK)
        if conn is None or (conn.finished and is_new_syn):
            if conn is None and len(self._sessions) >= self.max_sessions:
                self._evict()
            conn = TcpConnection(strict=self.strict)
            self._sessions[key] = conn
        conn.feed(pkt, now)
        self._last_seen[key] = now
        return conn

    def _evict(self) -> None:
        half_open = [k for k, c in self._sessions.items() if c.half_open]
        pool = half_open if half_open else list(self._sessions)
        victim = min(pool, key=lambda k: self._last_seen.get(k, 0.0))
        del self._sessions[victim]
        self._last_seen.pop(victim, None)
        self.evicted += 1

    def get(self, pkt: Packet) -> Optional[TcpConnection]:
        return self._sessions.get(self._key(pkt))

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def half_open_count(self) -> int:
        return sum(1 for c in self._sessions.values() if c.half_open)

    @property
    def established_count(self) -> int:
        return sum(1 for c in self._sessions.values() if c.established)


class StreamReassembler:
    """Reassemble one direction of a TCP byte stream.

    Segments may arrive out of order or duplicated; :meth:`contiguous`
    returns the longest in-order prefix from the initial sequence number.
    Overlapping retransmissions keep the first-seen bytes (the common
    "first wins" policy).
    """

    def __init__(self, isn: int, max_buffer: int = 1 << 20) -> None:
        self._next_seq = int(isn)
        self._base = int(isn)
        self._data = bytearray()
        self._pending: Dict[int, bytes] = {}
        self.max_buffer = int(max_buffer)
        self.dropped_bytes = 0

    def add(self, seq: int, payload: bytes) -> None:
        """Insert a segment starting at absolute sequence ``seq``."""
        if not payload:
            return
        end = seq + len(payload)
        if end <= self._next_seq:
            return  # pure retransmission
        if seq < self._next_seq:  # partial overlap: trim the head
            payload = payload[self._next_seq - seq:]
            seq = self._next_seq
        if seq == self._next_seq:
            self._data.extend(payload)
            self._next_seq += len(payload)
            self._drain_pending()
        else:
            if sum(map(len, self._pending.values())) + len(payload) > self.max_buffer:
                self.dropped_bytes += len(payload)
                return
            existing = self._pending.get(seq)
            if existing is None or len(existing) < len(payload):
                self._pending[seq] = bytes(payload)

    def _drain_pending(self) -> None:
        while True:
            seg = self._pending.pop(self._next_seq, None)
            if seg is None:
                # A buffered segment may start before next_seq due to overlap.
                candidates = [s for s in self._pending if s < self._next_seq]
                if not candidates:
                    return
                s = min(candidates)
                seg = self._pending.pop(s)
                if s + len(seg) <= self._next_seq:
                    continue
                seg = seg[self._next_seq - s:]
            self._data.extend(seg)
            self._next_seq += len(seg)

    def contiguous(self) -> bytes:
        """The in-order byte stream received so far."""
        return bytes(self._data)

    @property
    def contiguous_len(self) -> int:
        return len(self._data)

    @property
    def has_gap(self) -> bool:
        return bool(self._pending)


def build_session(
    src: IPv4Address,
    dst: IPv4Address,
    sport: int,
    dport: int,
    request: bytes = b"",
    response: bytes = b"",
    isn_client: int = 1000,
    isn_server: int = 5000,
    attack_id: Optional[str] = None,
    teardown: bool = True,
    mss: int = MSS,
) -> List[Packet]:
    """Generate the packet sequence of a complete, valid TCP session.

    Handshake, client request segments, server response segments, and
    (optionally) a FIN/ACK teardown.  All packets carry the same
    ``attack_id`` ground truth.
    """
    if mss <= 0:
        raise ValueError("mss must be positive")
    pkts: List[Packet] = []

    def p(**kw) -> Packet:
        kw.setdefault("proto", Protocol.TCP)
        kw.setdefault("attack_id", attack_id)
        pkt = Packet(**kw)
        pkts.append(pkt)
        return pkt

    # Three-way handshake.
    p(src=src, dst=dst, sport=sport, dport=dport, flags=TcpFlags.SYN, seq=isn_client)
    p(src=dst, dst=src, sport=dport, dport=sport,
      flags=TcpFlags.SYN | TcpFlags.ACK, seq=isn_server, ack=isn_client + 1)
    p(src=src, dst=dst, sport=sport, dport=dport,
      flags=TcpFlags.ACK, seq=isn_client + 1, ack=isn_server + 1)

    # Client request.
    cseq = isn_client + 1
    for off in range(0, len(request), mss):
        chunk = request[off:off + mss]
        p(src=src, dst=dst, sport=sport, dport=dport,
          flags=TcpFlags.ACK | TcpFlags.PSH, seq=cseq, ack=isn_server + 1,
          payload=chunk)
        cseq += len(chunk)

    # Server response.
    sseq = isn_server + 1
    for off in range(0, len(response), mss):
        chunk = response[off:off + mss]
        p(src=dst, dst=src, sport=dport, dport=sport,
          flags=TcpFlags.ACK | TcpFlags.PSH, seq=sseq, ack=cseq,
          payload=chunk)
        sseq += len(chunk)

    # Acknowledge the response.
    if response:
        p(src=src, dst=dst, sport=sport, dport=dport,
          flags=TcpFlags.ACK, seq=cseq, ack=sseq)

    if teardown:
        p(src=src, dst=dst, sport=sport, dport=dport,
          flags=TcpFlags.FIN | TcpFlags.ACK, seq=cseq, ack=sseq)
        p(src=dst, dst=src, sport=dport, dport=sport,
          flags=TcpFlags.FIN | TcpFlags.ACK, seq=sseq, ack=cseq + 1)
        p(src=src, dst=dst, sport=sport, dport=dport,
          flags=TcpFlags.ACK, seq=cseq + 1, ack=sseq + 1)

    return pkts
