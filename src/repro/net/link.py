"""Link model: bandwidth, propagation delay, finite queue, drops.

The link is the testbed's queueing element.  It matters for three paper
metrics: *Induced Traffic Latency* (an in-line IDS adds a store-and-forward
hop), *Maximal Throughput with Zero Loss* (the offered rate where queue drops
begin) and *Network Lethal Dose* (the rate at which a device collapses).

The implementation is callback-based and O(1) per packet: the transmitter
keeps a ``busy_until`` horizon; a packet arriving at ``t`` begins
serialization at ``max(t, busy_until)``, provided the backlog it would wait
behind fits the queue, and is delivered after serialization + propagation.
Conservation (offered = delivered + dropped + in-flight) holds exactly.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..sim.stats import TimeWeighted, Welford
from .packet import Packet

__all__ = ["Link"]

PacketSink = Callable[[Packet], None]


class Link:
    """A unidirectional link with finite buffering.

    Parameters
    ----------
    engine:
        Simulation engine.
    bandwidth_bps:
        Serialization rate in bits per second.
    propagation_delay:
        Constant per-packet propagation delay in seconds.
    queue_bytes:
        Transmit buffer size.  A packet is dropped when the bytes already
        queued (excluding the one currently serializing) would exceed this.
    sink:
        Callable invoked with each delivered packet.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth_bps: float = 100e6,
        propagation_delay: float = 50e-6,
        queue_bytes: int = 256 * 1024,
        sink: Optional[PacketSink] = None,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if propagation_delay < 0:
            raise ConfigurationError("propagation_delay must be non-negative")
        if queue_bytes < 0:
            raise ConfigurationError("queue_bytes must be non-negative")
        self.engine = engine
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue_bytes = int(queue_bytes)
        self.sink = sink
        self.name = name

        self._busy_until = 0.0
        self._queued_bytes = 0  # bytes accepted but not yet fully serialized

        # counters
        self.offered_packets = 0
        self.offered_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

        # instrumentation
        self.delay_stats = Welford()  # send->deliver latency of delivered pkts
        self._occupancy = TimeWeighted(t0=engine.now, value=0.0)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Offer a packet to the link.

        Returns ``True`` if the packet was accepted (it will be delivered),
        ``False`` if it was dropped at the queue.
        """
        now = self.engine.now
        size = pkt.wire_size
        self.offered_packets += 1
        self.offered_bytes += size

        # Backlog the packet would join (bytes not yet fully serialized).
        # The in-service packet does not consume buffer, so a fully idle
        # link accepts any packet even with queue_bytes == 0.
        if self._queued_bytes > 0 and self._queued_bytes + size > self.queue_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += size
            return False

        start = max(now, self._busy_until)
        tx_time = size * 8.0 / self.bandwidth_bps
        finish = start + tx_time
        self._busy_until = finish
        self._queued_bytes += size
        self._occupancy.update(now, self._queued_bytes)
        deliver_at = finish + self.propagation_delay
        self.engine.schedule_at(deliver_at, self._deliver, pkt, now, size)
        return True

    def _deliver(self, pkt: Packet, sent_at: float, size: int) -> None:
        self._queued_bytes -= size
        self._occupancy.update(self.engine.now, self._queued_bytes)
        self.delivered_packets += 1
        self.delivered_bytes += size
        self.delay_stats.add(self.engine.now - sent_at)
        if self.sink is not None:
            self.sink(pkt)

    # ------------------------------------------------------------------
    @property
    def in_flight_packets(self) -> int:
        return self.offered_packets - self.delivered_packets - self.dropped_packets

    @property
    def loss_ratio(self) -> float:
        if self.offered_packets == 0:
            return 0.0
        return self.dropped_packets / self.offered_packets

    def average_occupancy(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of queued bytes."""
        self._occupancy.update(self.engine.now, self._queued_bytes)
        return self._occupancy.average(until)

    def utilization(self, until: Optional[float] = None) -> float:
        """Fraction of capacity used so far (delivered bits / capacity)."""
        t_end = self.engine.now if until is None else until
        if t_end <= 0:
            return 0.0
        return (self.delivered_bytes * 8.0) / (self.bandwidth_bps * t_end)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.name!r} {self.bandwidth_bps/1e6:.0f}Mbps "
            f"q={self._queued_bytes}B drop={self.dropped_packets}>"
        )
