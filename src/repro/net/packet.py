"""Packet model.

Packets carry the fields the IDS architecture actually inspects -- the IP
five-tuple, TCP flags and sequence numbers, and an application payload --
plus *ground-truth annotations* (``attack_id``) that never influence the
systems under test but let the evaluation harness compute the Figure-3
false-positive/false-negative ratios.

Payloads may be *materialized* (real ``bytes``, for IDSs that inspect
content) or *logical* (a declared length with no bytes allocated, for pure
load experiments).  ``wire_size`` accounts headers + payload either way.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import NetworkError
from .address import IPv4Address

__all__ = ["Protocol", "TcpFlags", "Packet", "PROTO_IDS",
           "ETHERNET_HEADER", "IP_HEADER"]

ETHERNET_HEADER = 14
IP_HEADER = 20
_PROTO_HEADER = {  # transport header sizes
    "TCP": 20,
    "UDP": 8,
    "ICMP": 8,
}


class Protocol(enum.Enum):
    """Transport protocols the testbed models."""

    TCP = "TCP"
    UDP = "UDP"
    ICMP = "ICMP"

    @property
    def header_size(self) -> int:
        return _PROTO_HEADER[self.value]


#: Small-int protocol ids.  ``enum.Enum.__hash__`` is a python-level call
#: (it hashes the member name), too slow for per-packet dispatch keys;
#: packets carry the int mirror in ``Packet.proto_id``.
PROTO_IDS = {proto: index for index, proto in enumerate(Protocol)}


class TcpFlags(enum.IntFlag):
    """TCP control flags (subset relevant to session tracking)."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


_packet_counter = 0


def _next_pid() -> int:
    global _packet_counter
    _packet_counter += 1
    return _packet_counter


class Packet:
    """A single simulated network packet.

    Parameters
    ----------
    src, dst:
        Endpoint addresses.
    sport, dport:
        Transport ports (0 for ICMP).
    proto:
        :class:`Protocol` member.
    flags:
        TCP flags (ignored for non-TCP).
    seq, ack:
        TCP sequence / acknowledgment numbers.
    payload:
        Materialized application bytes, or ``None`` for a logical payload.
    payload_len:
        Logical payload length; defaults to ``len(payload)``.
    attack_id:
        Ground-truth label: identifier of the attack instance this packet
        belongs to, or ``None`` for benign traffic.  Invisible to IDS
        components by convention (enforced by the evaluation harness, which
        only passes packets -- never labels -- to products under test).
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "proto_id",
        "flags",
        "flag_bits",
        "seq",
        "ack",
        "payload",
        "_payload_len",
        "attack_id",
        "_h256",
        "_tok",
    )

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        sport: int = 0,
        dport: int = 0,
        proto: Protocol = Protocol.TCP,
        flags: TcpFlags = TcpFlags.NONE,
        seq: int = 0,
        ack: int = 0,
        payload: Optional[bytes] = None,
        payload_len: Optional[int] = None,
        attack_id: Optional[str] = None,
    ) -> None:
        if not isinstance(src, IPv4Address) or not isinstance(dst, IPv4Address):
            raise NetworkError("src and dst must be IPv4Address instances")
        if not (0 <= sport <= 65535 and 0 <= dport <= 65535):
            raise NetworkError(f"port out of range: {sport}, {dport}")
        self.pid = _next_pid()
        self.src = src
        self.dst = dst
        self.sport = int(sport)
        self.dport = int(dport)
        self.proto = proto
        self.proto_id = PROTO_IDS[proto]
        self.flags = flags
        # plain-int mirror of ``flags``: IntFlag operations construct new
        # members per call, too slow for per-packet rule dispatch
        self.flag_bits = int(flags)
        self.seq = int(seq)
        self.ack = int(ack)
        self.payload = payload
        if payload_len is None:
            self._payload_len = len(payload) if payload is not None else 0
        else:
            if payload_len < 0:
                raise NetworkError(f"negative payload_len {payload_len!r}")
            if payload is not None and payload_len < len(payload):
                raise NetworkError("payload_len smaller than materialized payload")
            self._payload_len = int(payload_len)
        self.attack_id = attack_id
        # Derived-feature memo slots (payload entropy over the first 256
        # bytes; extracted application token).  Pure functions of the
        # immutable payload, so they may be shared by every detector pass
        # over this packet; ``None``/``False`` mean "not computed yet"
        # (a computed token may legitimately be ``None``).
        self._h256 = None
        self._tok = False

    # ------------------------------------------------------------------
    @property
    def payload_len(self) -> int:
        return self._payload_len

    @property
    def wire_size(self) -> int:
        """Total on-the-wire bytes: Ethernet + IP + transport + payload."""
        return ETHERNET_HEADER + IP_HEADER + self.proto.header_size + self._payload_len

    @property
    def is_benign(self) -> bool:
        return self.attack_id is None

    def has_flag(self, flag: TcpFlags) -> bool:
        # int & IntFlag yields a plain int: no enum member construction
        return bool(self.flag_bits & flag)

    def five_tuple(self) -> tuple:
        return (self.src, self.sport, self.dst, self.dport, self.proto)

    def reply_template(self, **overrides) -> "Packet":
        """Build a packet in the reverse direction of this one.

        Ground-truth labels propagate: replies elicited by attack traffic
        belong to the same attack instance.
        """
        kwargs = dict(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            proto=self.proto,
            attack_id=self.attack_id,
        )
        kwargs.update(overrides)
        return Packet(**kwargs)

    def copy(self) -> "Packet":
        """Duplicate this packet (fresh pid), e.g. for port mirroring."""
        return Packet(
            src=self.src,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            proto=self.proto,
            flags=self.flags,
            seq=self.seq,
            ack=self.ack,
            payload=self.payload,
            payload_len=self._payload_len,
            attack_id=self.attack_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" attack={self.attack_id}" if self.attack_id else ""
        return (
            f"<Packet #{self.pid} {self.src}:{self.sport} -> {self.dst}:{self.dport}"
            f" {self.proto.value} len={self._payload_len}{label}>"
        )
