"""Network substrate: addresses, packets, flows, TCP, links, nodes, traces."""

from .address import IPv4Address, Subnet
from .flow import FlowKey, FlowStats, FlowTracker
from .link import Link
from .node import BorderRouter, Host, Node, Switch
from .packet import ETHERNET_HEADER, IP_HEADER, Packet, Protocol, TcpFlags
from .tcp import (
    MSS,
    SessionTable,
    StreamReassembler,
    TcpConnection,
    TcpState,
    build_session,
)
from .topology import LanTestbed
from .trace import TimedPacket, Trace

__all__ = [
    "IPv4Address",
    "Subnet",
    "FlowKey",
    "FlowStats",
    "FlowTracker",
    "Link",
    "Node",
    "Host",
    "Switch",
    "BorderRouter",
    "Packet",
    "Protocol",
    "TcpFlags",
    "ETHERNET_HEADER",
    "IP_HEADER",
    "MSS",
    "TcpState",
    "TcpConnection",
    "SessionTable",
    "StreamReassembler",
    "build_session",
    "LanTestbed",
    "TimedPacket",
    "Trace",
]
