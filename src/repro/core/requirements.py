"""User requirements and their partial ordering.

Section 3.3: "The user first lists his IDS requirements in a partial
ordering from least important to most.  Requirements should be stated in
positive form ... the first requirement (least important) should be assigned
the lowest weight (e.g., one).  Other requirements may then be assigned
increasing weights in proportion to their relative importance.  Since the
ordering of requirements is partial, it is acceptable to have duplicate
weights."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..errors import WeightingError

__all__ = ["Requirement", "RequirementSet"]


@dataclass(frozen=True)
class Requirement:
    """One positively-stated user requirement.

    Parameters
    ----------
    name / description:
        Identification; ``description`` should be the positive statement
        ("alerts reach the operator within one second").
    weight:
        Importance weight (>= 0 normally; negative weights are allowed for
        explicitly counterproductive features, section 3.1).
    contributes_to:
        Names of catalog metrics this requirement bears on.
    """

    name: str
    description: str
    weight: float
    contributes_to: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise WeightingError("requirement name must be non-empty")


class RequirementSet:
    """An ordered collection of weighted requirements."""

    def __init__(self, name: str, requirements: Sequence[Requirement] = ()) -> None:
        self.name = name
        self._requirements: List[Requirement] = []
        self._names: set = set()
        for req in requirements:
            self.add(req)

    def add(self, requirement: Requirement) -> "RequirementSet":
        if requirement.name in self._names:
            raise WeightingError(f"duplicate requirement {requirement.name!r}")
        self._requirements.append(requirement)
        self._names.add(requirement.name)
        return self

    def __len__(self) -> int:
        return len(self._requirements)

    def __iter__(self) -> Iterator[Requirement]:
        return iter(self._requirements)

    def get(self, name: str) -> Requirement:
        for req in self._requirements:
            if req.name == name:
                return req
        raise WeightingError(f"unknown requirement {name!r}")

    @classmethod
    def from_ordered(
        cls,
        name: str,
        ordered: Sequence[Tuple[str, str, Sequence[str]]],
        base_weight: float = 1.0,
        step: float = 1.0,
    ) -> "RequirementSet":
        """Build from a least-to-most-important list, assigning the
        section-3.3 increasing weights automatically.

        ``ordered`` entries are ``(name, description, metric_names)``;
        the first (least important) gets ``base_weight``, each subsequent
        entry ``step`` more.  Entries may share a position by nesting:
        pass a list of entries in place of a single entry to give them the
        same weight (partial ordering with duplicates).
        """
        reqs: List[Requirement] = []
        weight = base_weight
        for entry in ordered:
            group = entry if isinstance(entry, list) else [entry]
            for req_name, description, metrics in group:
                reqs.append(Requirement(
                    name=req_name, description=description, weight=weight,
                    contributes_to=frozenset(metrics)))
            weight += step
        return cls(name, reqs)

    def total_weight(self) -> float:
        return sum(r.weight for r in self._requirements)

    def contributions(self) -> Dict[str, List[Requirement]]:
        """Metric name -> requirements contributing to it."""
        out: Dict[str, List[Requirement]] = {}
        for req in self._requirements:
            for metric_name in req.contributes_to:
                out.setdefault(metric_name, []).append(req)
        return out
