"""Textual rendering of scorecards and weighted results."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .metric import MetricClass
from .scorecard import Scorecard
from .scoring import WeightedResult, rank_products

__all__ = ["format_metric_table", "format_score_matrix", "format_weighted_results"]

_CLASS_TITLES = {
    MetricClass.LOGISTICAL: "Logistical Metrics (class 1)",
    MetricClass.ARCHITECTURAL: "Architectural Metrics (class 2)",
    MetricClass.PERFORMANCE: "Performance Metrics (class 3)",
}


def format_metric_table(catalog, metric_class: MetricClass,
                        table_only: bool = True, width: int = 78) -> str:
    """Render one metric class as a definition table (paper Tables 1-3)."""
    lines = [_CLASS_TITLES[metric_class], "=" * len(_CLASS_TITLES[metric_class])]
    for metric in catalog.by_class(metric_class, table_only=table_only):
        lines.append(f"\n{metric.name}")
        definition = metric.definition
        while definition:
            lines.append("    " + definition[: width - 4])
            definition = definition[width - 4:]
        methods = ", ".join(sorted(m.value for m in metric.methods))
        lines.append(f"    [observed by: {methods}]")
    return "\n".join(lines)


def format_score_matrix(scorecard: Scorecard,
                        metric_class: Optional[MetricClass] = None,
                        table_only: bool = True) -> str:
    """Render the product x metric score matrix."""
    products = scorecard.products
    metrics = [m for m in scorecard.catalog
               if (metric_class is None or m.metric_class is metric_class)
               and (m.in_paper_table or not table_only)]
    name_w = max((len(m.name) for m in metrics), default=10) + 2
    col_w = max((len(p) for p in products), default=8) + 2
    header = " " * name_w + "".join(p.rjust(col_w) for p in products)
    lines = [header, "-" * len(header)]
    for metric in metrics:
        row = metric.name.ljust(name_w)
        for product in products:
            score = scorecard.score(product, metric.name)
            row += ("-" if score is None else str(score)).rjust(col_w)
        lines.append(row)
    return "\n".join(lines)


def format_weighted_results(results: Sequence[WeightedResult]) -> str:
    """Render ranked weighted scores per class and total (Figure 5 output)."""
    ranked = rank_products(results)
    col = max((len(r.product) for r in ranked), default=8) + 2
    lines = [
        f"{'product'.ljust(col)}{'S_1 (log)':>12}{'S_2 (arch)':>12}"
        f"{'S_3 (perf)':>12}{'total':>12}",
    ]
    lines.append("-" * len(lines[0]))
    for r in ranked:
        lines.append(
            f"{r.product.ljust(col)}"
            f"{r.class_scores[MetricClass.LOGISTICAL]:>12.2f}"
            f"{r.class_scores[MetricClass.ARCHITECTURAL]:>12.2f}"
            f"{r.class_scores[MetricClass.PERFORMANCE]:>12.2f}"
            f"{r.total:>12.2f}")
    return "\n".join(lines)
