"""Canned requirement profiles.

Section 3.3's weighting guidance, captured as reusable requirement sets:

* :func:`realtime_cluster_requirements` -- "for real-time systems, emphasis
  should be placed on speed and accuracy of attack recognition and on the
  ability of the IDS to automatically react via firewall, router, SNMP,
  etc", plus the section-2 constraints (no significant resource overhead,
  no bottlenecks, benign failure modes).
* :func:`distributed_requirements` -- "distributed systems then, should put
  emphasis on reducing the false negative ratio to the lowest possible
  level accepting an increased false positive alert ratio in the process.
  Logging of historical traffic is also key."
* :func:`ecommerce_requirements` -- the commercial-IDS home ground, for
  contrast: operator ergonomics and known-attack precision over real-time
  reaction.

Each profile is ordered least- to most-important (the section-3.3
algorithm assigns increasing weights).
"""

from __future__ import annotations

from .requirements import RequirementSet

__all__ = [
    "realtime_cluster_requirements",
    "distributed_requirements",
    "ecommerce_requirements",
]


def realtime_cluster_requirements() -> RequirementSet:
    """Requirements of a distributed real-time (clustered) combat system."""
    return RequirementSet.from_ordered("realtime-cluster", [
        ("manageable", "the IDS is manageable across many nodes without "
         "per-node effort",
         ["Distributed Management", "Ease of Configuration",
          "Ease of Policy Maintenance", "Multi-sensor Support"]),
        ("in-house", "operation is fully in-house; no externally scheduled "
         "scans can disturb the system",
         ["Outsourced Solution", "License Management"]),
        ("tunable", "detection sensitivity and analyzed data pool are "
         "tunable to the cluster's constrained traffic",
         ["Adjustable Sensitivity", "Data Pool Selectability"]),
        ("scalable", "monitoring scales with the cluster without uneven "
         "sensor load",
         ["Scalable Load-balancing", "System Throughput",
          "Multi-sensor Support"]),
        ("benign-failure", "the IDS fails in a mode that does not hamper "
         "system performance and reports its own failures",
         ["Error Reporting and Recovery", "Network Lethal Dose"]),
        ("low-overhead", "monitoring adds no significant resource overhead "
         "or network bottlenecks",
         ["Platform Requirements", "Operational Performance Impact",
          "Induced Traffic Latency", "Data Storage",
          "Maximal Throughput with Zero Loss"]),
        ("accurate", "attack recognition is accurate",
         ["Observed False Negative Ratio", "Observed False Positive Ratio"]),
        ("fast-react", "detection and automated reaction happen in near "
         "real time via firewall, router and SNMP",
         ["Timeliness", "Firewall Interaction", "Router Interaction",
          "SNMP Interaction"]),
    ])


def distributed_requirements() -> RequirementSet:
    """Requirements of a high-trust distributed system (section 3.3)."""
    return RequirementSet.from_ordered("distributed-trust", [
        ("manageable", "central secure management of all components",
         ["Distributed Management", "Multi-sensor Support"]),
        ("low-overhead", "no significant resource or bandwidth overhead",
         ["Platform Requirements", "Operational Performance Impact",
          "Data Storage"]),
        ("host-visibility", "host-level visibility to catch misuse of "
         "inter-host trust",
         ["Host-based", "Analysis of Compromise"]),
        ("historical-logging", "historical traffic is logged for ex post "
         "facto unraveling of a compromise",
         ["Threat Correlation", "Evidence Collection",
          "Session Recording and Playback"]),
        ("catch-initial-compromise", "the initial compromise of the first "
         "component host is caught and isolated: the false negative ratio "
         "is as low as possible, accepting increased false positives",
         ["Observed False Negative Ratio", "Adjustable Sensitivity",
          "Timeliness", "Firewall Interaction"]),
    ])


def ecommerce_requirements() -> RequirementSet:
    """Requirements of a commercial e-commerce web shop (contrast case)."""
    return RequirementSet.from_ordered("ecommerce-web", [
        ("cheap", "cost of ownership and administration stay low",
         ["Three Year Cost of Ownership", "Level of Administration",
          "License Management"]),
        ("easy", "installation and policy upkeep are easy for a small "
         "operations team",
         ["Ease of Configuration", "Ease of Policy Maintenance",
          "Quality of Documentation", "Training Support"]),
        ("quiet", "operators are not flooded with false alarms",
         ["Observed False Positive Ratio", "Clarity of Reports"]),
        ("throughput", "the shop's web traffic is monitored at line rate",
         ["System Throughput", "Maximal Throughput with Zero Loss"]),
        ("known-attacks", "known web attacks are reliably detected",
         ["Observed False Negative Ratio", "Signature Based"]),
    ])
