"""Scorecard extensions: the human dimension (paper future work).

Section 4: "We would like to expand the scorecard metrics to capture the
human dimension of IDS as well."  This module implements that extension:
five additional metrics covering the operator side of intrusion detection,
an extender that appends them to any catalog (the methodology is open by
design -- "the metrics and their definitions are best refined as lessons
are learned"), and a measured proxy for the one metric the testbed can
observe directly (operator workload, from the notification stream).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .catalog import MetricCatalog
from .metric import Metric, MetricClass, ObservationMethod, ScoreAnchors
from .requirements import Requirement, RequirementSet

__all__ = [
    "human_factors_metrics",
    "dependability_metrics",
    "extend_catalog",
    "human_factors_requirement",
    "dependability_requirement",
    "score_human_factors",
    "score_operator_workload",
]

_A = ObservationMethod.ANALYSIS
_O = ObservationMethod.OPEN_SOURCE


def human_factors_metrics() -> List[Metric]:
    """The human-dimension metric set (this reproduction's proposal for the
    paper's future-work item; anchors follow the paper's house style)."""
    return [
        Metric(
            name="Operator Workload",
            metric_class=MetricClass.PERFORMANCE,
            definition="Rate of operator notifications demanding attention "
                       "under representative traffic, normalized per "
                       "operator-hour.",
            methods=frozenset({_A}),
            anchors=ScoreAnchors(
                low="Hundreds of notifications per hour; triage is "
                    "impossible and alerts are ignored.",
                average="A few notifications per hour, mostly actionable.",
                high="Only consolidated, high-confidence incidents reach "
                     "the operator."),
            in_paper_table=False,
            higher_is_better_note="Raw observation is notifications/hour; "
                                  "fewer scores higher."),
        Metric(
            name="Alert Comprehensibility",
            metric_class=MetricClass.PERFORMANCE,
            definition="Degree to which an alert tells the operator what "
                       "happened, to which asset, and what to do next.",
            methods=frozenset({_A}),
            anchors=ScoreAnchors(
                low="Numeric codes with no context.",
                average="Category, source and destination with free-text "
                        "detail.",
                high="Correlated incident narrative with severity, scope "
                     "and recommended response."),
            in_paper_table=False),
        Metric(
            name="Operator Trust Calibration",
            metric_class=MetricClass.PERFORMANCE,
            definition="How well the alert stream sustains operator trust: "
                       "a high false-alarm history causes real alerts to "
                       "be ignored (the monitoring failure of section 2.2).",
            methods=frozenset({_A}),
            anchors=ScoreAnchors(
                low="Operators routinely dismiss alerts unseen.",
                average="Operators triage alerts but discount low "
                        "severities.",
                high="Operators act on every notification."),
            in_paper_table=False),
        Metric(
            name="Operator Learnability",
            metric_class=MetricClass.LOGISTICAL,
            definition="Time for a new operator to reach proficiency with "
                       "the monitoring and management consoles.",
            methods=frozenset({_A, _O}),
            anchors=ScoreAnchors(
                low="Months of apprenticeship with an expert.",
                average="A vendor course plus weeks of practice.",
                high="Productive within days using the documentation."),
            in_paper_table=False),
        Metric(
            name="Console Interface Quality",
            metric_class=MetricClass.ARCHITECTURAL,
            definition="Quality of the operator-facing interfaces: threat "
                       "presentation, querying, and configuration "
                       "ergonomics.",
            methods=frozenset({_A, _O}),
            anchors=ScoreAnchors(
                low="Log files only.",
                average="Text console with filtering and history queries.",
                high="Integrated graphical threat view with drill-down and "
                     "guided response."),
            in_paper_table=False),
    ]


def dependability_metrics() -> List[Metric]:
    """The measured-under-fault metric pair (this reproduction's upgrade
    of the statically analysed Dynamic Adaptability / Error Reporting and
    Recovery rows: the same properties, observed while faults actually
    happen).  Scored from :func:`repro.eval.dependability.
    score_dependability`; absent from the default catalog so no-fault
    evaluations render byte-identical output."""
    return [
        Metric(
            name="Availability Under Faults",
            metric_class=MetricClass.PERFORMANCE,
            definition="Time-and-component-averaged fraction of IDS "
                       "service retained while a reference fault plan "
                       "crashes components, saturates sensors, stalls "
                       "analyzers, partitions the monitor and degrades "
                       "the monitored link.",
            methods=frozenset({_A}),
            anchors=ScoreAnchors(
                low="Any single component fault takes the whole IDS "
                    "down for the duration.",
                average="Faulted components drop out cleanly; the rest "
                        "of the pipeline keeps detecting.",
                high="Failover and recovery re-registration keep "
                     "service loss close to the theoretical minimum."),
            in_paper_table=False,
            higher_is_better_note="Raw observation is availability in "
                                  "[0, 1]; higher scores higher."),
        Metric(
            name="Graceful Degradation",
            metric_class=MetricClass.ARCHITECTURAL,
            definition="How fast notification service is lost as fault "
                       "severity grows: the slope of lost notified-"
                       "attack fraction per unit severity over a "
                       "measured severity ladder.",
            methods=frozenset({_A}),
            anchors=ScoreAnchors(
                low="Service collapses outright at the first fault "
                    "(cliff-edge degradation).",
                average="Service declines roughly in proportion to the "
                        "injected faults.",
                high="Shedding, failover and store-and-forward keep "
                     "detection nearly flat across severities."),
            in_paper_table=False,
            higher_is_better_note="Raw observation is a loss slope; "
                                  "smaller scores higher."),
    ]


def extend_catalog(catalog: MetricCatalog,
                   extra: Optional[List[Metric]] = None) -> MetricCatalog:
    """A new catalog containing ``catalog``'s metrics plus ``extra``
    (default: the human-factors set).  The input catalog is not mutated."""
    extra = extra if extra is not None else human_factors_metrics()
    return MetricCatalog([*catalog, *extra])


def human_factors_requirement(weight: float = 1.0) -> Requirement:
    """A ready-made requirement wiring the human dimension into a profile."""
    return Requirement(
        name="operable-by-humans",
        description="the watch team can understand, trust and act on what "
                    "the IDS reports",
        weight=weight,
        contributes_to=frozenset({
            "Operator Workload", "Alert Comprehensibility",
            "Operator Trust Calibration", "Operator Learnability",
            "Console Interface Quality"}))


def dependability_requirement(weight: float = 1.0) -> Requirement:
    """A ready-made requirement wiring the dependability pair into a
    profile (used by the CLI whenever ``--faults`` names a plan)."""
    return Requirement(
        name="dependable-under-faults",
        description="the IDS keeps detecting and notifying while its own "
                    "components fail, saturate or partition",
        weight=weight,
        contributes_to=frozenset({
            "Availability Under Faults", "Graceful Degradation"}))


def score_human_factors(
    notifications_per_hour: float,
    facts,
    correlating: bool,
    false_alarm_fraction: float,
) -> Dict[str, Tuple[int, str]]:
    """Score the five human-dimension metrics from run data and facts.

    Parameters
    ----------
    notifications_per_hour:
        Operator notification rate measured over the accuracy scenario.
    facts:
        :class:`~repro.products.base.ProductFacts` (docs / training quality
        proxy the learnability and interface metrics).
    correlating:
        Whether the product's analyzers perform campaign correlation
        (incident narratives vs isolated alerts).
    false_alarm_fraction:
        Fraction of alerts that were false claims; drives trust
        calibration ("frequent alerts on trivial or normal events ... lead
        to the IDS being ignored by the operators", section 2.2).
    """
    if not 0.0 <= false_alarm_fraction <= 1.0:
        raise ValueError("false_alarm_fraction must be in [0, 1]")
    out: Dict[str, Tuple[int, str]] = {}
    out["Operator Workload"] = score_operator_workload(notifications_per_hour)
    out["Alert Comprehensibility"] = (
        (4 if correlating else 2),
        "correlated incident narrative" if correlating
        else "category/source alerts without correlation")
    if false_alarm_fraction <= 0.01:
        trust = 4
    elif false_alarm_fraction <= 0.1:
        trust = 3
    elif false_alarm_fraction <= 0.3:
        trust = 2
    else:
        trust = 1
    out["Operator Trust Calibration"] = (
        trust, f"{false_alarm_fraction:.1%} of alerts were false claims")
    docs_scale = {"poor": 0, "fair": 2, "good": 4}
    training_scale = {"none": 0, "docs-only": 2, "vendor-courses": 4}
    learn = round((docs_scale[facts.docs] + training_scale[facts.training]) / 2)
    out["Operator Learnability"] = (
        learn, f"docs={facts.docs}, training={facts.training}")
    iface = 4 if (facts.trend_analysis and facts.session_recording) else (
        2 if facts.support != "none" else 1)
    out["Console Interface Quality"] = (
        iface, "integrated drill-down view" if iface == 4 else
        ("text console with queries" if iface == 2 else "log files only"))
    return out


def score_operator_workload(
    notifications_per_hour: float,
) -> Tuple[int, str]:
    """Discretize a measured notification rate onto the 0-4 scale."""
    if notifications_per_hour < 0:
        raise ValueError("notifications_per_hour must be >= 0")
    if notifications_per_hour <= 1:
        score = 4
    elif notifications_per_hour <= 6:
        score = 3
    elif notifications_per_hour <= 30:
        score = 2
    elif notifications_per_hour <= 120:
        score = 1
    else:
        score = 0
    return score, f"{notifications_per_hour:.1f} operator notifications/hour"
