"""Scorecard persistence.

Evaluations outlive sessions: "the evaluation may be reused with the
metrics given different weighting according to the needs of the next
customer" (section 1), and re-evaluation across vendor releases needs the
old scorecards on disk.  Scores serialize to JSON with full provenance
(method, evidence, raw value); loading validates against the catalog in
use, so a scorecard saved under an extended catalog refuses to load into a
narrower one unless asked to drop unknown metrics.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..errors import ScorecardError, UnknownMetricError
from .catalog import MetricCatalog
from .metric import ObservationMethod
from .scorecard import Scorecard

__all__ = ["scorecard_to_dict", "scorecard_from_dict",
           "save_scorecard", "load_scorecard"]

_FORMAT = "repro-scorecard"
_VERSION = 1


def scorecard_to_dict(scorecard: Scorecard) -> dict:
    """A JSON-serializable representation of a scorecard."""
    entries = []
    for entry in scorecard:
        entries.append({
            "product": entry.product,
            "metric": entry.metric,
            "score": entry.score,
            "method": entry.method.value,
            "evidence": entry.evidence,
            "raw_value": entry.raw_value,
        })
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "products": list(scorecard.products),
        "entries": entries,
    }


def scorecard_from_dict(
    data: dict,
    catalog: MetricCatalog,
    ignore_unknown_metrics: bool = False,
) -> Scorecard:
    """Rebuild a scorecard from its serialized form.

    Parameters
    ----------
    catalog:
        The catalog to validate against.
    ignore_unknown_metrics:
        Drop entries whose metric is absent from ``catalog`` instead of
        raising (e.g. loading an extended-catalog scorecard into the base
        catalog).
    """
    if data.get("format") != _FORMAT:
        raise ScorecardError(f"not a scorecard document: {data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ScorecardError(f"unsupported scorecard version {data.get('version')!r}")
    card = Scorecard(catalog)
    for product in data.get("products", []):
        card.add_product(product)
    methods: Dict[str, ObservationMethod] = {
        m.value: m for m in ObservationMethod}
    for entry in data.get("entries", []):
        metric = entry["metric"]
        if metric not in catalog:
            if ignore_unknown_metrics:
                continue
            raise UnknownMetricError(
                f"serialized entry references unknown metric {metric!r}")
        method = methods.get(entry.get("method", ""))
        if method is None:
            raise ScorecardError(
                f"unknown observation method {entry.get('method')!r}")
        card.set_score(entry["product"], metric, entry["score"],
                       method=method, evidence=entry.get("evidence", ""),
                       raw_value=entry.get("raw_value"))
    return card


def save_scorecard(scorecard: Scorecard, path: str) -> None:
    """Write a scorecard to a JSON file."""
    with open(path, "w") as fh:
        json.dump(scorecard_to_dict(scorecard), fh, indent=2, sort_keys=True)


def load_scorecard(path: str, catalog: MetricCatalog,
                   ignore_unknown_metrics: bool = False) -> Scorecard:
    """Read a scorecard from a JSON file."""
    with open(path) as fh:
        data = json.load(fh)
    return scorecard_from_dict(data, catalog,
                               ignore_unknown_metrics=ignore_unknown_metrics)
