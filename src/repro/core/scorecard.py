"""The scorecard: products x metrics -> discrete scores with provenance.

Section 3.1: "The centerpiece of our testing and evaluation methodology is a
'scorecard' containing the set of general metrics and their definitions ...
Discrete scoring simplifies the process of assigning values to each metric
for a given system."

Every entry records *how* the value was observed (analysis vs open-source
material) and free-text evidence, giving the paper's "scientific
repeatability": the evaluation is against a static set of metrics and can be
reused with different weightings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ScorecardError, UnknownMetricError
from .catalog import MetricCatalog
from .metric import Metric, MetricClass, ObservationMethod, validate_score

__all__ = ["ScoreEntry", "Scorecard"]


@dataclass(frozen=True)
class ScoreEntry:
    """One scored cell of the scorecard."""

    product: str
    metric: str
    score: int
    method: ObservationMethod
    evidence: str = ""
    raw_value: Optional[float] = None  # the measured quantity, when numeric


class Scorecard:
    """A mutable product-by-metric score matrix over a fixed catalog."""

    def __init__(self, catalog: MetricCatalog) -> None:
        self.catalog = catalog
        self._entries: Dict[Tuple[str, str], ScoreEntry] = {}
        self._products: List[str] = []

    # ------------------------------------------------------------------
    def add_product(self, product: str) -> None:
        if product in self._products:
            raise ScorecardError(f"product {product!r} already registered")
        self._products.append(product)

    @property
    def products(self) -> Tuple[str, ...]:
        return tuple(self._products)

    # ------------------------------------------------------------------
    def set_score(
        self,
        product: str,
        metric_name: str,
        score: int,
        method: ObservationMethod = ObservationMethod.ANALYSIS,
        evidence: str = "",
        raw_value: Optional[float] = None,
    ) -> ScoreEntry:
        """Record a score; validates range, metric, and observation method."""
        if product not in self._products:
            raise ScorecardError(
                f"unknown product {product!r}; call add_product first")
        metric = self.catalog.get(metric_name)
        validate_score(score, metric_name)
        if method not in metric.methods:
            raise ScorecardError(
                f"metric {metric_name!r} is not designated for "
                f"{method.value} observation")
        entry = ScoreEntry(product=product, metric=metric_name, score=score,
                           method=method, evidence=evidence,
                           raw_value=raw_value)
        self._entries[(product, metric_name)] = entry
        return entry

    def get(self, product: str, metric_name: str) -> Optional[ScoreEntry]:
        return self._entries.get((product, metric_name))

    def score(self, product: str, metric_name: str) -> Optional[int]:
        entry = self.get(product, metric_name)
        return None if entry is None else entry.score

    def entries_for(self, product: str) -> List[ScoreEntry]:
        return [e for (p, _), e in self._entries.items() if p == product]

    def __iter__(self) -> Iterator[ScoreEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def missing(self, product: str, metric_names: Optional[Sequence[str]] = None,
                ) -> List[str]:
        """Metric names (default: whole catalog) not yet scored."""
        names = metric_names if metric_names is not None else self.catalog.names()
        return [n for n in names if (product, n) not in self._entries]

    def complete_for(self, product: str,
                     metric_names: Optional[Sequence[str]] = None) -> bool:
        return not self.missing(product, metric_names)

    def class_scores(self, product: str, metric_class: MetricClass,
                     ) -> Dict[str, int]:
        """Unweighted scores of one product for one metric class."""
        out = {}
        for metric in self.catalog.by_class(metric_class):
            entry = self._entries.get((product, metric.name))
            if entry is not None:
                out[metric.name] = entry.score
        return out
