"""Ranking robustness under weight perturbation.

Section 3.3: "Mapping these requirements to numeric weights will always be
somewhat subjective, but as long as the weighting accurately and
consistently reflects the goals of the procurer's organization, the
scorecard methodology will work effectively."

This module quantifies how much that subjectivity matters for a given
evaluation: Monte-Carlo perturbation of the weight vector measures how
often the ranking (or just the winner) survives, and a pairwise margin
computation reports how large a *uniform relative* weight error would be
needed to flip any adjacent pair.  A procurement decision whose winner
survives 95 % of ±30 % weight noise does not hinge on the subjective part
of the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScorecardError
from .scorecard import Scorecard
from .scoring import rank_products, weighted_scores

__all__ = ["RobustnessReport", "ranking_robustness", "pairwise_margin"]


@dataclass(frozen=True)
class RobustnessReport:
    """Outcome of a Monte-Carlo weight-perturbation study."""

    baseline_ranking: Tuple[str, ...]
    samples: int
    perturbation: float
    winner_stability: float        # fraction of samples keeping the winner
    ranking_stability: float       # fraction keeping the full order
    #: product -> fraction of samples in which it won
    win_rates: Mapping[str, float]


def ranking_robustness(
    scorecard: Scorecard,
    weights: Mapping[str, float],
    samples: int = 500,
    perturbation: float = 0.3,
    seed: int = 0,
) -> RobustnessReport:
    """Perturb every weight by i.i.d. uniform relative noise and re-rank.

    Each sample multiplies each weight by ``U(1-p, 1+p)``; negative weights
    stay negative (the perturbation is relative).
    """
    if samples < 1:
        raise ScorecardError("samples must be >= 1")
    if not 0.0 <= perturbation < 1.0:
        raise ScorecardError("perturbation must be in [0, 1)")
    baseline = tuple(r.product for r in rank_products(
        weighted_scores(scorecard, weights, strict=False)))
    rng = np.random.default_rng(seed)
    names = list(weights)
    base = np.array([weights[n] for n in names], dtype=float)

    winner_kept = 0
    order_kept = 0
    wins: Dict[str, int] = {p: 0 for p in scorecard.products}
    for _ in range(samples):
        noise = rng.uniform(1.0 - perturbation, 1.0 + perturbation,
                            size=len(base))
        sample_weights = dict(zip(names, base * noise))
        ranking = tuple(r.product for r in rank_products(
            weighted_scores(scorecard, sample_weights, strict=False)))
        wins[ranking[0]] = wins.get(ranking[0], 0) + 1
        if ranking[0] == baseline[0]:
            winner_kept += 1
        if ranking == baseline:
            order_kept += 1
    return RobustnessReport(
        baseline_ranking=baseline,
        samples=samples,
        perturbation=perturbation,
        winner_stability=winner_kept / samples,
        ranking_stability=order_kept / samples,
        win_rates={p: n / samples for p, n in wins.items()},
    )


def pairwise_margin(
    scorecard: Scorecard,
    weights: Mapping[str, float],
    product_a: str,
    product_b: str,
) -> float:
    """Relative gap between two products' totals under given weights.

    Returns ``(S_a - S_b) / (|S_a| + |S_b|)`` -- a scale-free margin; small
    values flag decisions that hinge on fine weight choices.
    """
    results = {r.product: r.total for r in weighted_scores(
        scorecard, weights, products=[product_a, product_b], strict=False)}
    a, b = results[product_a], results[product_b]
    denom = abs(a) + abs(b)
    if denom == 0:
        return 0.0
    return (a - b) / denom
