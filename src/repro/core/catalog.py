"""The complete metric catalog.

Every metric the paper names is present: the Table 1-3 subsets that "most
impact real-time and distributed processing issues" (``in_paper_table=True``)
and the metrics the paper says it defined "but not included in this paper"
(``in_paper_table=False``).  Definitions for table metrics are the paper's
own wording; definitions and anchors for the rest follow the same style.

Counts: 14 logistical (6 in Table 1), 16 architectural (8 in Table 2),
22 performance (12 in Table 3) -- 52 metrics total.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import UnknownMetricError
from .metric import Metric, MetricClass, ObservationMethod, ScoreAnchors

__all__ = ["MetricCatalog", "default_catalog"]

_A = ObservationMethod.ANALYSIS
_O = ObservationMethod.OPEN_SOURCE


def _m(name, cls, definition, methods=(_A,), anchors=None, in_table=True,
       note=""):
    return Metric(
        name=name, metric_class=cls, definition=definition,
        methods=frozenset(methods), anchors=anchors, in_paper_table=in_table,
        higher_is_better_note=note)


def _anchors(low, average, high):
    return ScoreAnchors(low=low, average=average, high=high)


class MetricCatalog:
    """An ordered, name-indexed collection of metrics."""

    def __init__(self, metrics: Sequence[Metric]) -> None:
        self._metrics: Dict[str, Metric] = {}
        for metric in metrics:
            if metric.name in self._metrics:
                raise ValueError(f"duplicate metric name {metric.name!r}")
            self._metrics[metric.name] = metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            raise UnknownMetricError(f"unknown metric {name!r}")
        return metric

    def names(self) -> List[str]:
        return list(self._metrics)

    def by_class(self, metric_class: MetricClass,
                 table_only: bool = False) -> List[Metric]:
        return [m for m in self._metrics.values()
                if m.metric_class is metric_class
                and (m.in_paper_table or not table_only)]

    def table_metrics(self) -> List[Metric]:
        """The Tables 1-3 subset (real-time / distributed relevant)."""
        return [m for m in self._metrics.values() if m.in_paper_table]


def default_catalog() -> MetricCatalog:
    """Build the full 52-metric catalog of the paper."""
    L, R, P = MetricClass.LOGISTICAL, MetricClass.ARCHITECTURAL, MetricClass.PERFORMANCE
    metrics: List[Metric] = [
        # ================= Logistical: Table 1 =========================
        _m("Distributed Management", L,
           "Capability of managing and monitoring the IDS securely from "
           "multiple possibly remote systems.", (_A, _O),
           _anchors("Management of each node must be done at the node.",
                    "Nodes may be remotely managed, but either security, or "
                    "degree of administrative control is limited.",
                    "Complete management of all nodes may be done from any "
                    "node or remotely. Appropriate encryption and "
                    "authentication are employed.")),
        _m("Ease of Configuration", L,
           "Difficulty in initially installing and subsequently configuring "
           "the IDS.", (_A,),
           _anchors("Manual per-component editing of undocumented files; "
                    "expert required for days.",
                    "Guided install; some components require manual, "
                    "per-node configuration.",
                    "Turnkey install with centralized, validated "
                    "configuration of all components.")),
        _m("Ease of Policy Maintenance", L,
           "The ease of creating, updating, and managing IDS detection and "
           "reaction policies.", (_A,),
           _anchors("Policies hand-edited per sensor with no validation.",
                    "Central policy editor, but updates require sensor "
                    "restarts or manual pushes.",
                    "Central, versioned policy editing pushed live to all "
                    "components without interruption.")),
        _m("License Management", L,
           "The difficulty of obtaining, updating, and extending licenses "
           "for the IDS.", (_O,),
           _anchors("Per-sensor node-locked keys obtained by postal mail.",
                    "Keyed licenses per site with manual renewal.",
                    "Open license or enterprise license covering all "
                    "sensors with automatic renewal.")),
        _m("Outsourced Solution", L,
           "The degree to which the IDS services are provided by an "
           "external entity.", (_O,),
           _anchors("Fully outsourced monitoring with vendor-scheduled "
                    "vulnerability scans that can disrupt the system.",
                    "Optional outsourced monitoring; scans locally "
                    "schedulable.",
                    "Fully in-house operation; no external dependency or "
                    "uncontrolled scanning."),
           note="For real-time systems, uncontrolled external scanning is "
                "counterproductive, so in-house scores high."),
        _m("Platform Requirements", L,
           "System resources actually required to implement the IDS in the "
           "expected environment.", (_A, _O),
           _anchors("Dedicated high-end hosts plus >=20% of every monitored "
                    "host's CPU.",
                    "One dedicated analysis host; a few percent of "
                    "monitored hosts.",
                    "Runs on spare capacity; negligible monitored-host "
                    "footprint.")),
        # ---------- Logistical: defined but not in Table 1 -------------
        _m("Quality of Documentation", L,
           "Completeness, accuracy and usability of the product "
           "documentation.", (_O,), in_table=False),
        _m("Ease of Attack Filter Generation", L,
           "Difficulty of creating new attack filters/signatures for the "
           "IDS.", (_A,), in_table=False),
        _m("Evaluation Copy Availability", L,
           "Availability of a full-function evaluation copy prior to "
           "procurement.", (_O,), in_table=False),
        _m("Level of Administration", L,
           "Ongoing administrator effort required to keep the IDS "
           "effective.", (_A,), in_table=False),
        _m("Product Lifetime", L,
           "Expected support lifetime and upgrade path of the product.",
           (_O,), in_table=False),
        _m("Quality of Technical Support", L,
           "Responsiveness and competence of vendor technical support.",
           (_O,), in_table=False),
        _m("Three Year Cost of Ownership", L,
           "Total procurement, licensing, hardware and staffing cost over "
           "three years.", (_O,), in_table=False),
        _m("Training Support", L,
           "Availability and quality of operator and administrator "
           "training.", (_O,), in_table=False),

        # ================= Architectural: Table 2 ======================
        _m("Adjustable Sensitivity", R,
           "Ability to change the sensitivity of the IDS to compensate for "
           "high false positive or false negative ratios.", (_A, _O),
           _anchors("Fixed sensitivity.",
                    "Coarse global presets (low/medium/high).",
                    "Continuous, per-component sensitivity tuning at "
                    "runtime.")),
        _m("Data Pool Selectability", R,
           "Ability to define the source data to be analyzed for "
           "intrusions (by protocol, source and dest addresses, etc).",
           (_A, _O),
           _anchors("All traffic is always analyzed.",
                    "Static include/exclude lists applied at restart.",
                    "Rich runtime filters by protocol, address, port and "
                    "direction.")),
        _m("Data Storage", R,
           "Average required amount of storage per megabyte of source "
           "data.", (_A,),
           _anchors("Stores several MB per MB of traffic (full capture).",
                    "Stores tens of kB per MB (events plus context).",
                    "Stores only aggregated events; bytes per MB "
                    "negligible."),
           note="Raw observation is bytes stored per MB of source data; "
                "less storage scores higher for bandwidth-constrained "
                "distributed systems."),
        _m("Host-based", R,
           "Proportion of IDS input from log files, audit trails and other "
           "host data.", (_A, _O),
           _anchors("No host data is used.",
                    "Host data from a few designated hosts.",
                    "Full host audit integration across all monitored "
                    "hosts.")),
        _m("Multi-sensor Support", R,
           "Ability of an IDS to integrate management and input of "
           "multiple sensors or analyzers.", (_A, _O),
           _anchors("Single sensor only.",
                    "Several sensors with per-sensor consoles.",
                    "Many sensors centrally integrated into one analysis "
                    "and management view.")),
        _m("Network-based", R,
           "Proportion of IDS input from packet analysis and other network "
           "data.", (_A, _O),
           _anchors("No network data is used.",
                    "Network data from single segment taps.",
                    "Full multi-segment packet capture and analysis.")),
        _m("Scalable Load-balancing", R,
           "Ability to partition traffic into independent, balanced sensor "
           "loads, and ability of the load-balancing subprocess to scale "
           "upwards and downwards.", (_A, _O),
           _anchors("No load balancing",
                    "Load balancing via static methods such as placement",
                    "Intelligent, dynamic load balancing")),
        _m("System Throughput", R,
           "Maximal data input rate that can be processed successfully by "
           "the IDS. Measured in packets per second for network-based IDSs "
           "and Mbps for host-based IDSs.", (_A,),
           _anchors("Falls over at a fraction of LAN line rate.",
                    "Keeps up with average LAN load but not bursts.",
                    "Sustains full line rate with headroom.")),
        # ---------- Architectural: defined but not in Table 2 ----------
        _m("Anomaly Based", R,
           "Degree to which detection relies on behavioural anomaly "
           "analysis.", (_O,), in_table=False),
        _m("Autonomous Learning", R,
           "Ability of the IDS to learn its environment without manual "
           "baselining.", (_A, _O), in_table=False),
        _m("Host/OS Security", R,
           "Hardening of the platform the IDS components run on.", (_A,),
           in_table=False),
        _m("Interoperability", R,
           "Ability to exchange data with other security products and "
           "standards.", (_O,), in_table=False),
        _m("Package Contents", R,
           "Completeness of the delivered package (sensors, consoles, "
           "documentation, tools).", (_O,), in_table=False),
        _m("Process Security", R,
           "Resistance of the IDS's own processes to attack and "
           "subversion.", (_A,), in_table=False),
        _m("Signature Based", R,
           "Degree to which detection relies on known-attack signatures.",
           (_O,), in_table=False),
        _m("Visibility", R,
           "Degree to which the IDS itself is observable/fingerprintable "
           "on the monitored network.", (_A,), in_table=False),

        # ================= Performance: Table 3 ========================
        _m("Analysis of Compromise", P,
           "Ability to report the extent of damage and compromise due to "
           "intrusions.", (_A,),
           _anchors("Reports only that an alert fired.",
                    "Identifies affected host and service.",
                    "Maps the full scope of compromised hosts and data for "
                    "safe resource reallocation.")),
        _m("Error Reporting and Recovery", P,
           "Appropriateness of the behavior of the IDS under error/failure "
           "conditions.", (_A,),
           _anchors("No notification, no log, no indication that an error "
                    "has occurred. Fatal errors cause system to hang "
                    "indefinitely.",
                    "Failure is logged and user is notified at some point "
                    "in the future when the IDS is able. Fatal errors "
                    "cause cold reboot of entire machine",
                    "Failure is reported near real time via attack "
                    "notification channels. Fatal errors cause restart of "
                    "application(s) or service(s).")),
        _m("Firewall Interaction", P,
           "Ability to interact with a firewall. Perhaps to update a "
           "firewall's block list.", (_A, _O),
           _anchors("No firewall interaction.",
                    "Manual operator-driven block-list updates.",
                    "Automatic, policy-driven block-list updates within "
                    "seconds.")),
        _m("Induced Traffic Latency", P,
           "Degree to which traffic is delayed by the IDS's presence or "
           "operation.", (_A,),
           _anchors("In-line device adds milliseconds under load.",
                    "Sub-millisecond added delay.",
                    "Passive tap; no added delay."),
           note="Raw observation is seconds of added delay; lower latency "
                "scores higher."),
        _m("Maximal Throughput with Zero Loss", P,
           "Observed level of traffic that results in a sustained average "
           "of zero lost packets or streams. Measured in packets/ sec or # "
           "of simultaneous TCP streams.", (_A,),
           _anchors("Loses packets at a small fraction of expected load.",
                    "Zero loss at expected load; loses under bursts.",
                    "Zero loss well beyond expected peak load.")),
        _m("Network Lethal Dose", P,
           "Observed level of network or host traffic that results in a "
           "shutdown/malfunction of IDS. Measured in packets/ sec or # of "
           "simultaneous TCP streams.", (_A,),
           _anchors("Fails at loads near normal operation.",
                    "Fails only under strong floods.",
                    "No observed failure up to line rate.")),
        _m("Observed False Negative Ratio", P,
           "Ratio of actual attacks that are not detected to the total "
           "transactions.", (_A,),
           _anchors("Misses most attacks in the replayed corpus.",
                    "Misses novel/insider attacks only.",
                    "Detects the full corpus including novel attacks."),
           note="Raw observation is |A - D| / |T| (Figure 3); lower ratio "
                "scores higher."),
        _m("Observed False Positive Ratio", P,
           "Ratio of alarms raised that do not correspond to actual "
           "attacks to the total transactions.", (_A,),
           _anchors("Operators are flooded with false alarms.",
                    "Occasional false alarms on unusual benign traffic.",
                    "Essentially no false alarms."),
           note="Raw observation is |D - A| / |T| (Figure 3); lower ratio "
                "scores higher."),
        _m("Operational Performance Impact", P,
           "Negative impact on the host processing capacity due to the "
           "operation of the IDS. Expressed as a percentage of processing "
           "power.", (_A,),
           _anchors("Consumes ~20% or more of monitored hosts (C2-level "
                    "audit).",
                    "Consumes the nominal 3-5% event-logging share.",
                    "No measurable impact on monitored hosts."),
           note="Raw observation is percent CPU; lower impact scores "
                "higher."),
        _m("Router Interaction", P,
           "Degree to which the IDS can interact with a router. Perhaps it "
           "might redirect attacker traffic to a honeypot.", (_A, _O),
           _anchors("No router interaction.",
                    "Manual block-list updates at the border router.",
                    "Automatic blocking and honeypot redirection.")),
        _m("SNMP Interaction", P,
           "Ability of the IDS to send an SNMP trap to one or more network "
           "devices in response to a detected attack.", (_A, _O),
           _anchors("No SNMP capability.",
                    "Traps to a single configured manager.",
                    "Configurable traps to multiple managers with rich "
                    "content.")),
        _m("Timeliness", P,
           "Average/maximal time between an intrusion's occurrence and its "
           "being reported.", (_A,),
           _anchors("Minutes or longer to report.",
                    "A few seconds to report.",
                    "Sub-second reporting."),
           note="Raw observation is seconds from first attack packet to "
                "operator notification; faster scores higher."),
        # ---------- Performance: defined but not in Table 3 ------------
        _m("Analysis of Intruder Intent", P,
           "Ability to infer what the attacker is trying to achieve.",
           (_A,), in_table=False),
        _m("Clarity of Reports", P,
           "Usefulness and readability of generated reports.", (_A, _O),
           in_table=False),
        _m("Effectiveness of Generated Filters", P,
           "Accuracy of automatically generated attack filters (blocking "
           "the attacker without shutting out legitimate users).", (_A,),
           in_table=False),
        _m("Evidence Collection", P,
           "Ability to preserve forensic evidence of intrusions.", (_A,),
           in_table=False),
        _m("Information Sharing", P,
           "Ability to share threat data with peer systems.", (_O,),
           in_table=False),
        _m("Notification: User Alerts", P,
           "Variety and configurability of operator alerting channels.",
           (_A, _O), in_table=False),
        _m("Program Interaction", P,
           "Ability to trigger arbitrary external programs in response to "
           "events.", (_A,), in_table=False),
        _m("Session Recording and Playback", P,
           "Ability to record attack sessions and replay them for "
           "analysis.", (_A,), in_table=False),
        _m("Threat Correlation", P,
           "Depth of analysis correlating one attack with another.", (_A,),
           in_table=False),
        _m("Trend Analysis", P,
           "Ability to report threat trends over time.", (_A,),
           in_table=False),
    ]
    return MetricCatalog(metrics)
