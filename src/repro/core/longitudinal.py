"""Longitudinal re-evaluation: tracking scorecards across product releases.

Section 4: "Continual re-evaluation is especially important since vendors
rapidly update their products."  The scorecard's static metric set makes
successive evaluations directly comparable; this module keeps a history of
evaluations per product version and reports what changed and whether the
weighted outcome moved under a given requirement profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScorecardError
from .scorecard import Scorecard
from .scoring import weighted_scores

__all__ = ["ScoreDelta", "EvaluationRecord", "EvaluationHistory"]


@dataclass(frozen=True)
class ScoreDelta:
    """One metric whose score changed between two evaluations."""

    metric: str
    before: Optional[int]
    after: Optional[int]

    @property
    def regression(self) -> bool:
        return (self.before is not None and self.after is not None
                and self.after < self.before)

    @property
    def improvement(self) -> bool:
        return (self.before is not None and self.after is not None
                and self.after > self.before)


@dataclass(frozen=True)
class EvaluationRecord:
    """A completed evaluation of one product version."""

    product: str
    version: str
    timestamp: str          # ISO date of the evaluation (free-form)
    scorecard: Scorecard


class EvaluationHistory:
    """Ordered evaluations of one product across versions."""

    def __init__(self, product: str) -> None:
        self.product = product
        self._records: List[EvaluationRecord] = []

    def add(self, version: str, timestamp: str, scorecard: Scorecard) -> None:
        if self.product not in scorecard.products:
            raise ScorecardError(
                f"scorecard does not contain product {self.product!r}")
        self._records.append(EvaluationRecord(
            product=self.product, version=version, timestamp=timestamp,
            scorecard=scorecard))

    def __len__(self) -> int:
        return len(self._records)

    @property
    def versions(self) -> List[str]:
        return [r.version for r in self._records]

    def latest(self) -> EvaluationRecord:
        if not self._records:
            raise ScorecardError("no evaluations recorded")
        return self._records[-1]

    # ------------------------------------------------------------------
    def deltas(self, from_version: str, to_version: str) -> List[ScoreDelta]:
        """Metrics whose scores changed between two recorded versions."""
        before = self._get(from_version)
        after = self._get(to_version)
        out: List[ScoreDelta] = []
        names = set(before.scorecard.catalog.names()) | set(
            after.scorecard.catalog.names())
        for name in sorted(names):
            b = (before.scorecard.score(self.product, name)
                 if name in before.scorecard.catalog else None)
            a = (after.scorecard.score(self.product, name)
                 if name in after.scorecard.catalog else None)
            if a != b:
                out.append(ScoreDelta(metric=name, before=b, after=a))
        return out

    def regressions(self, from_version: str, to_version: str) -> List[ScoreDelta]:
        return [d for d in self.deltas(from_version, to_version)
                if d.regression]

    def weighted_trend(
        self,
        weights: Mapping[str, float],
    ) -> List[Tuple[str, float]]:
        """Weighted total per recorded version under one requirement
        weighting -- does the vendor's update help *this* customer?"""
        out = []
        for record in self._records:
            result = weighted_scores(record.scorecard, weights,
                                     products=[self.product],
                                     strict=False)[0]
            out.append((record.version, result.total))
        return out

    def _get(self, version: str) -> EvaluationRecord:
        for record in self._records:
            if record.version == version:
                return record
        raise ScorecardError(f"no evaluation recorded for version {version!r}")
