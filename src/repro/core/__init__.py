"""The paper's contribution: metric scorecard methodology.

Workflow (sections 3.1-3.3):

1. take the :func:`~repro.core.catalog.default_catalog` of well-defined
   metrics (Tables 1-3 plus the defined-but-not-printed metrics);
2. state user requirements in a least-to-most-important partial order
   (:class:`~repro.core.requirements.RequirementSet`, or a canned profile
   from :mod:`repro.core.profiles`);
3. derive per-metric weights (:func:`~repro.core.weighting.derive_weights`,
   Figure 6);
4. score each candidate IDS 0-4 per metric by analysis or open-source
   material (:class:`~repro.core.scorecard.Scorecard`);
5. compute the weighted class scores ``S_j = sum(U_ij * W_ij)``
   (:func:`~repro.core.scoring.weighted_scores`, Figure 5) and rank.
"""

from .catalog import MetricCatalog, default_catalog
from .extensions import (
    extend_catalog,
    human_factors_metrics,
    human_factors_requirement,
    score_human_factors,
    score_operator_workload,
)
from .io import (
    load_scorecard,
    save_scorecard,
    scorecard_from_dict,
    scorecard_to_dict,
)
from .longitudinal import EvaluationHistory, EvaluationRecord, ScoreDelta
from .robustness import RobustnessReport, pairwise_margin, ranking_robustness
from .metric import (
    SCORE_MAX,
    SCORE_MIN,
    Metric,
    MetricClass,
    ObservationMethod,
    ScoreAnchors,
    validate_score,
)
from .profiles import (
    distributed_requirements,
    ecommerce_requirements,
    realtime_cluster_requirements,
)
from .report import format_metric_table, format_score_matrix, format_weighted_results
from .requirements import Requirement, RequirementSet
from .scorecard import ScoreEntry, Scorecard
from .scoring import WeightedResult, rank_products, weighted_scores
from .weighting import derive_weights, figure6_example

__all__ = [
    "MetricCatalog",
    "default_catalog",
    "extend_catalog",
    "human_factors_metrics",
    "human_factors_requirement",
    "score_human_factors",
    "score_operator_workload",
    "EvaluationHistory",
    "EvaluationRecord",
    "ScoreDelta",
    "save_scorecard",
    "load_scorecard",
    "RobustnessReport",
    "ranking_robustness",
    "pairwise_margin",
    "scorecard_to_dict",
    "scorecard_from_dict",
    "Metric",
    "MetricClass",
    "ObservationMethod",
    "ScoreAnchors",
    "SCORE_MIN",
    "SCORE_MAX",
    "validate_score",
    "Requirement",
    "RequirementSet",
    "derive_weights",
    "figure6_example",
    "ScoreEntry",
    "Scorecard",
    "WeightedResult",
    "weighted_scores",
    "rank_products",
    "realtime_cluster_requirements",
    "distributed_requirements",
    "ecommerce_requirements",
    "format_metric_table",
    "format_score_matrix",
    "format_weighted_results",
]
