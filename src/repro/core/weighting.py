"""Requirement-to-metric weight derivation (section 3.3 / Figure 6).

"After the requirements are weighted, each metric is assigned a weight equal
to the sum of the weights of the requirements it contributes to."

The worked Figure-6 instance: requirement weights {1, 2.5, 3, 5} mapped onto
six metrics yielding weights {3, 6.5, 5, 0, 0, 8}.  (The figure's arrow
diagram is not fully recoverable from the paper text; the mapping used by
:func:`figure6_example` is the unique natural one consistent with the
printed numbers -- see EXPERIMENTS.md.)
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import WeightingError
from .catalog import MetricCatalog
from .requirements import Requirement, RequirementSet

__all__ = ["derive_weights", "figure6_example"]


def derive_weights(
    requirements: RequirementSet,
    catalog: Optional[MetricCatalog] = None,
    default: float = 0.0,
) -> Dict[str, float]:
    """Map a requirement set onto per-metric weights.

    Parameters
    ----------
    requirements:
        The weighted requirement set.
    catalog:
        When given, (a) requirement contributions naming unknown metrics
        raise :class:`WeightingError`, and (b) the result contains *every*
        catalog metric, with ``default`` weight for uncontributed ones.
        Without a catalog, only contributed metrics appear.
    default:
        Weight for metrics no requirement contributes to.
    """
    weights: Dict[str, float] = {}
    if catalog is not None:
        for metric in catalog:
            weights[metric.name] = default
    for req in requirements:
        for metric_name in req.contributes_to:
            if catalog is not None and metric_name not in catalog:
                raise WeightingError(
                    f"requirement {req.name!r} contributes to unknown "
                    f"metric {metric_name!r}")
            weights[metric_name] = weights.get(metric_name, default) + req.weight
    return weights


def figure6_example() -> tuple:
    """The Figure-6 worked example.

    Returns ``(requirement_set, metric_weights)`` where the six abstract
    metrics M1..M6 receive weights (3, 6.5, 5, 0, 0, 8) from four
    requirements weighted 1, 2.5, 3 and 5:

    * R1 (w=1)   -> M2
    * R2 (w=2.5) -> M2
    * R3 (w=3)   -> M1, M2, M6
    * R4 (w=5)   -> M3, M6

    giving M1=3, M2=1+2.5+3=6.5, M3=5, M4=M5=0, M6=3+5=8.
    """
    reqs = RequirementSet("figure-6", [
        Requirement("R1", "least important requirement", 1.0,
                    frozenset({"M2"})),
        Requirement("R2", "second requirement", 2.5,
                    frozenset({"M2"})),
        Requirement("R3", "third requirement", 3.0,
                    frozenset({"M1", "M2", "M6"})),
        Requirement("R4", "most important requirement", 5.0,
                    frozenset({"M3", "M6"})),
    ])
    weights = derive_weights(reqs)
    for name in ("M4", "M5"):
        weights.setdefault(name, 0.0)
    return reqs, weights
