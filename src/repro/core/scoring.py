"""Weighted score computation (Figure 5).

    S_j = sum_{i=1..n_j} (U_ij * W_ij)

where ``S_j`` is the weighted overall score for metric class ``j``,
``U_ij`` the unweighted (discrete 0-4) score for metric ``i`` of class ``j``
and ``W_ij`` a real-valued weight.  "Any consistent numeric system of
weights can be used ... Negative weights may also be used to help
distinguish where a feature is actually counterproductive" (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScorecardError
from .metric import MetricClass
from .scorecard import Scorecard

__all__ = ["WeightedResult", "weighted_scores", "rank_products"]


@dataclass(frozen=True)
class WeightedResult:
    """Weighted outcome for one product."""

    product: str
    class_scores: Mapping[MetricClass, float]   # S_j per class
    total: float
    #: metrics that carried non-zero weight but had no recorded score
    unscored_weighted: Tuple[str, ...] = ()

    def score_for(self, metric_class: MetricClass) -> float:
        return self.class_scores[metric_class]


def weighted_scores(
    scorecard: Scorecard,
    weights: Mapping[str, float],
    products: Optional[Sequence[str]] = None,
    strict: bool = True,
) -> List[WeightedResult]:
    """Compute the Figure-5 weighted scores for each product.

    Parameters
    ----------
    scorecard:
        The completed score matrix.
    weights:
        Metric name -> real weight (typically from
        :func:`repro.core.weighting.derive_weights`).  Metrics absent from
        the mapping carry weight 0.
    products:
        Subset to evaluate (default: every registered product).
    strict:
        When True, a metric with non-zero weight but no recorded score
        raises :class:`ScorecardError`; when False, it is skipped and
        reported in :attr:`WeightedResult.unscored_weighted`.
    """
    for name in weights:
        scorecard.catalog.get(name)  # validates metric names
    product_list = list(products) if products is not None else list(scorecard.products)
    results: List[WeightedResult] = []
    for product in product_list:
        if product not in scorecard.products:
            raise ScorecardError(f"unknown product {product!r}")
        per_class: Dict[MetricClass, float] = {c: 0.0 for c in MetricClass}
        missing: List[str] = []
        for metric in scorecard.catalog:
            weight = weights.get(metric.name, 0.0)
            if weight == 0.0:
                continue
            entry = scorecard.get(product, metric.name)
            if entry is None:
                if strict:
                    raise ScorecardError(
                        f"product {product!r} missing score for weighted "
                        f"metric {metric.name!r}")
                missing.append(metric.name)
                continue
            per_class[metric.metric_class] += entry.score * weight
        total = sum(per_class.values())
        results.append(WeightedResult(
            product=product, class_scores=dict(per_class), total=total,
            unscored_weighted=tuple(missing)))
    return results


def rank_products(results: Sequence[WeightedResult]) -> List[WeightedResult]:
    """Sort by total weighted score, best first (stable on ties)."""
    return sorted(results, key=lambda r: -r.total)
