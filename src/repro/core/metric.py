"""Metric model: classes, observation methods, anchors, discrete scores.

Section 3.1: "Well-defined metrics are observable, reproducible,
quantifiable, and characteristic ... We chose to use scores with the
discrete values zero through four, with higher scores interpreted as more
favorable ratings.  Our definition of each metric includes examples of low
(0), average (2), and high (4) scores."

The two observation methods (section 3.1): *analysis* (direct observation in
a laboratory setting or source code analysis) and *open-source material*
(specifications, white papers or reviews).  Each metric is designated to be
measured by one or both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import ScoreValueError

__all__ = [
    "MetricClass",
    "ObservationMethod",
    "ScoreAnchors",
    "Metric",
    "SCORE_MIN",
    "SCORE_MAX",
    "validate_score",
]

SCORE_MIN = 0
SCORE_MAX = 4


class MetricClass(enum.IntEnum):
    """The three metric classes (section 3.1); the integer value is the
    class index ``j`` of the Figure-5 formula."""

    LOGISTICAL = 1
    ARCHITECTURAL = 2
    PERFORMANCE = 3


class ObservationMethod(enum.Enum):
    """How a metric value is observed (section 3.1)."""

    ANALYSIS = "analysis"            # laboratory measurement / source analysis
    OPEN_SOURCE = "open-source"      # vendor specs, white papers, reviews


@dataclass(frozen=True)
class ScoreAnchors:
    """Worked examples of low (0), average (2) and high (4) scores."""

    low: str
    average: str
    high: str


@dataclass(frozen=True)
class Metric:
    """One scorecard metric.

    Parameters
    ----------
    name:
        Canonical metric name as printed in the paper's tables.
    metric_class:
        Logistical / Architectural / Performance.
    definition:
        The metric definition (taken from Tables 1-3 where the paper gives
        one; our wording for the metrics the paper names but does not
        define).
    methods:
        Designated observation methods.
    anchors:
        Low/average/high scoring examples.  The paper prints anchors for
        Distributed Management, Scalable Load-balancing and Error Reporting
        and Recovery; anchors for other metrics are this reproduction's.
    in_paper_table:
        True when the metric appears in Table 1, 2 or 3 (the real-time
        relevant subset); False for the metrics the paper defines but does
        not include.
    higher_is_better_note:
        Optional clarification for metrics whose *raw observation* falls as
        quality rises (e.g. latency); scores are always higher-is-better.
    """

    name: str
    metric_class: MetricClass
    definition: str
    methods: FrozenSet[ObservationMethod] = frozenset({ObservationMethod.ANALYSIS})
    anchors: Optional[ScoreAnchors] = None
    in_paper_table: bool = True
    higher_is_better_note: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("metric name must be non-empty")
        if not self.methods:
            raise ValueError(f"metric {self.name!r} needs >= 1 observation method")


def validate_score(value: int, metric_name: str = "") -> int:
    """Check a discrete score is an integer in [0, 4]; returns it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScoreValueError(
            f"score for {metric_name!r} must be an integer, got {value!r}")
    if not SCORE_MIN <= value <= SCORE_MAX:
        raise ScoreValueError(
            f"score for {metric_name!r} must be in [{SCORE_MIN}, {SCORE_MAX}], "
            f"got {value}")
    return value
