"""Attack library with ground-truth labeling."""

from .base import Attack, AttackKind, AttackRecord
from .bruteforce import TelnetBruteForce
from .catalog import ATTACK_CLASSES, make_attack, standard_attack_suite
from .dos import SynFlood, UdpFlood
from .exploits import (
    CGI_PROBE_PATHS,
    OVERFLOW_MARKER,
    BufferOverflowExploit,
    CgiProbe,
    NovelExploit,
)
from .insider import ROGUE_COMMANDS, TrustAbuse
from .scans import HostSweep, PortScan, SlowPortScan
from .tunnel import IcmpTunnel

__all__ = [
    "Attack",
    "AttackKind",
    "AttackRecord",
    "TelnetBruteForce",
    "ATTACK_CLASSES",
    "make_attack",
    "standard_attack_suite",
    "SynFlood",
    "UdpFlood",
    "BufferOverflowExploit",
    "CgiProbe",
    "NovelExploit",
    "OVERFLOW_MARKER",
    "CGI_PROBE_PATHS",
    "TrustAbuse",
    "ROGUE_COMMANDS",
    "HostSweep",
    "PortScan",
    "SlowPortScan",
    "IcmpTunnel",
]
