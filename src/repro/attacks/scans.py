"""Reconnaissance attacks: port scans and host sweeps."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..net.packet import Packet, Protocol, TcpFlags
from .base import Attack, AttackKind

__all__ = ["PortScan", "SlowPortScan", "HostSweep"]


class PortScan(Attack):
    """TCP SYN scan of many ports on one target.

    The classic anomaly the paper's example uses ("hundreds of login
    attempts within a few seconds" is the behavioural cousin).  Detectable
    both by signature (SYN to closed/odd ports in bulk) and by anomaly
    (per-source destination-port fan-out).
    """

    kind = AttackKind.PROBE

    def __init__(
        self,
        attacker: IPv4Address,
        target: IPv4Address,
        ports: Sequence[int] = tuple(range(1, 1025)),
        rate_pps: float = 200.0,
        randomize_order: bool = True,
    ) -> None:
        super().__init__(description=f"SYN port scan of {target}")
        if rate_pps <= 0:
            raise ConfigurationError("rate_pps must be positive")
        if not ports:
            raise ConfigurationError("ports must be non-empty")
        self.attacker = attacker
        self.target = target
        self.ports = list(ports)
        self.rate_pps = float(rate_pps)
        self.randomize_order = randomize_order

    def _emit(self, rng: np.random.Generator):
        ports = list(self.ports)
        if self.randomize_order:
            rng.shuffle(ports)
        gap = 1.0 / self.rate_pps
        out = []
        for i, port in enumerate(ports):
            t = i * gap + float(rng.uniform(0, gap * 0.2))
            out.append((t, Packet(
                src=self.attacker, dst=self.target,
                sport=int(rng.integers(1024, 65535)), dport=int(port),
                proto=Protocol.TCP, flags=TcpFlags.SYN,
                seq=int(rng.integers(1, 2**31)))))
        return out


class SlowPortScan(PortScan):
    """A low-and-slow SYN scan engineered to evade windowed thresholds.

    Probes arrive slower than any realistic detection window accumulates
    state: the portscan preprocessor's per-window distinct-port count never
    reaches its trigger, and per-source rate baselines see one packet at a
    time.  Exists to mark the *temporal* edge of the detectability
    frontier, the way :class:`~repro.attacks.exploits.NovelExploit` marks
    the content edge -- both bound the Observed False Negative Ratio from
    below for their respective engine families.

    ``novel`` is set: no shipped rule or baseline catches it at default
    tunings (only the very aggressive odd-port heuristics graze it).
    """

    novel = True

    def __init__(
        self,
        attacker: IPv4Address,
        target: IPv4Address,
        ports: Sequence[int] = tuple(range(1, 65)),
        probe_interval_s: float = 30.0,
    ) -> None:
        if probe_interval_s <= 0:
            raise ConfigurationError("probe_interval_s must be positive")
        super().__init__(attacker, target, ports=ports,
                         rate_pps=1.0 / probe_interval_s,
                         randomize_order=True)
        self.description = (f"slow SYN scan of {target} "
                            f"(1 probe / {probe_interval_s:.0f}s)")


class HostSweep(Attack):
    """ICMP echo sweep across a set of hosts (who's alive?)."""

    kind = AttackKind.PROBE

    def __init__(
        self,
        attacker: IPv4Address,
        targets: Sequence[IPv4Address],
        rate_pps: float = 50.0,
        probes_per_host: int = 2,
    ) -> None:
        super().__init__(description=f"ICMP sweep of {len(list(targets))} hosts")
        if rate_pps <= 0:
            raise ConfigurationError("rate_pps must be positive")
        if probes_per_host < 1:
            raise ConfigurationError("probes_per_host must be >= 1")
        self.attacker = attacker
        self.targets = list(targets)
        if not self.targets:
            raise ConfigurationError("targets must be non-empty")
        self.rate_pps = float(rate_pps)
        self.probes_per_host = int(probes_per_host)

    def _emit(self, rng: np.random.Generator):
        gap = 1.0 / self.rate_pps
        out = []
        i = 0
        for target in self.targets:
            for _ in range(self.probes_per_host):
                out.append((i * gap, Packet(
                    src=self.attacker, dst=target,
                    proto=Protocol.ICMP, payload_len=56)))
                i += 1
        return out
