"""Credential brute-force (masquerade) attacks.

Section 2 of the paper lists "compromised passwords (masquerade)" among the
insider threat vectors; the anomaly example in section 2.1 is literally
"hundreds of login attempts within a few seconds".
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..net.tcp import build_session
from ..traffic.payload import telnet_login
from .base import Attack, AttackKind

__all__ = ["TelnetBruteForce"]

_COMMON_PASSWORDS = [
    "password", "123456", "letmein", "admin", "root", "guest", "qwerty",
    "changeme", "secret", "welcome", "abc123", "pass123",
]


class TelnetBruteForce(Attack):
    """Rapid repeated telnet logins with candidate passwords.

    Emits ``attempts`` failed login sessions back-to-back and, when
    ``succeeds``, one final successful session (the actual masquerade).
    Detectable by signature ("Login incorrect" repetition) and anomaly
    (connection-rate spike to port 23 from one source).
    """

    kind = AttackKind.BRUTE_FORCE

    def __init__(
        self,
        attacker: IPv4Address,
        target: IPv4Address,
        username: str = "root",
        attempts: int = 120,
        rate_per_s: float = 20.0,
        succeeds: bool = True,
    ) -> None:
        super().__init__(description=f"telnet brute force on {target} as {username!r}")
        if attempts < 1:
            raise ConfigurationError("attempts must be >= 1")
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.attacker = attacker
        self.target = target
        self.username = username
        self.attempts = int(attempts)
        self.rate_per_s = float(rate_per_s)
        self.succeeds = succeeds

    def _emit(self, rng: np.random.Generator):
        out = []
        gap = 1.0 / self.rate_per_s
        total = self.attempts + (1 if self.succeeds else 0)
        for i in range(total):
            success = self.succeeds and i == total - 1
            if success:
                password = "hunter2"
            else:
                password = _COMMON_PASSWORDS[i % len(_COMMON_PASSWORDS)] + (
                    str(i // len(_COMMON_PASSWORDS)) if i >= len(_COMMON_PASSWORDS) else "")
            body = telnet_login(self.username, password, success=success)
            pkts = build_session(
                self.attacker, self.target,
                int(rng.integers(1024, 65535)), 23,
                request=body, response=b"\r\n",
                isn_client=int(rng.integers(1, 2**31)),
                isn_server=int(rng.integers(1, 2**31)))
            t0 = i * gap
            for k, pkt in enumerate(pkts):
                out.append((t0 + k * 1e-4, pkt))
        return out
