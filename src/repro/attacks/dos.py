"""Denial-of-service attacks: SYN flood and UDP amplification flood.

Floods are the load vector for the *Network Lethal Dose* and *Maximal
Throughput with Zero Loss* experiments (Table 3): the harness scales
``rate_pps`` upward until the product under test starts dropping packets
and, eventually, fails.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address, Subnet
from ..net.packet import Packet, Protocol, TcpFlags
from .base import Attack, AttackKind

__all__ = ["SynFlood", "UdpFlood"]


class SynFlood(Attack):
    """TCP SYN flood from spoofed sources.

    Every packet is a fresh SYN from a random address in ``spoof_subnet``,
    exhausting the victim's (and any stateful sensor's) session tables --
    the paper's "host-based IDSs ... when the host they run on is under
    attack" concern applies to sensors too.
    """

    kind = AttackKind.DOS

    def __init__(
        self,
        target: IPv4Address,
        dport: int = 80,
        rate_pps: float = 2000.0,
        duration_s: float = 5.0,
        spoof_subnet: str = "203.0.113.0/24",
    ) -> None:
        super().__init__(description=f"SYN flood at {rate_pps:.0f} pps on {target}:{dport}")
        if rate_pps <= 0 or duration_s <= 0:
            raise ConfigurationError("rate_pps and duration_s must be positive")
        self.target = target
        self.dport = int(dport)
        self.rate_pps = float(rate_pps)
        self.duration_s = float(duration_s)
        self.spoof_subnet = Subnet(spoof_subnet)

    def _emit(self, rng: np.random.Generator):
        n = int(self.rate_pps * self.duration_s)
        base = self.spoof_subnet.network.value
        span = max((1 << (32 - self.spoof_subnet.prefix)) - 2, 1)
        times = np.sort(rng.uniform(0, self.duration_s, size=n))
        srcs = rng.integers(1, span + 1, size=n)
        sports = rng.integers(1024, 65535, size=n)
        seqs = rng.integers(1, 2**31, size=n)
        out = []
        for t, s, sp, seq in zip(times, srcs, sports, seqs):
            out.append((float(t), Packet(
                src=IPv4Address(base + int(s)), dst=self.target,
                sport=int(sp), dport=self.dport,
                proto=Protocol.TCP, flags=TcpFlags.SYN, seq=int(seq))))
        return out


class UdpFlood(Attack):
    """High-volume UDP flood with configurable payload realism.

    ``payload_mode`` selects the content (the lesson-1 experiment knob):

    * ``"random"``  -- uniform random bytes (the naive load test);
    * ``"logical"`` -- size-only packets, no bytes materialized;
    * ``"http"``    -- packets that *look like* web traffic fragments.
    """

    kind = AttackKind.DOS

    def __init__(
        self,
        attacker: IPv4Address,
        target: IPv4Address,
        rate_pps: float = 5000.0,
        duration_s: float = 2.0,
        payload_size: int = 512,
        payload_mode: str = "random",
        dport: int = 7,
    ) -> None:
        super().__init__(description=f"UDP flood at {rate_pps:.0f} pps on {target}")
        if rate_pps <= 0 or duration_s <= 0:
            raise ConfigurationError("rate_pps and duration_s must be positive")
        if payload_mode not in ("random", "logical", "http"):
            raise ConfigurationError(f"unknown payload_mode {payload_mode!r}")
        self.attacker = attacker
        self.target = target
        self.rate_pps = float(rate_pps)
        self.duration_s = float(duration_s)
        self.payload_size = int(payload_size)
        self.payload_mode = payload_mode
        self.dport = int(dport)

    def _emit(self, rng: np.random.Generator):
        from ..traffic import payload as pl

        n = int(self.rate_pps * self.duration_s)
        times = np.sort(rng.uniform(0, self.duration_s, size=n))
        out = []
        for t in times:
            if self.payload_mode == "random":
                body, blen = pl.random_payload(rng, self.payload_size), None
            elif self.payload_mode == "http":
                body = pl.http_request(rng)[: self.payload_size].ljust(
                    self.payload_size, b" ")
                blen = None
            else:
                body, blen = None, self.payload_size
            out.append((float(t), Packet(
                src=self.attacker, dst=self.target,
                sport=int(rng.integers(1024, 65535)), dport=self.dport,
                proto=Protocol.UDP, payload=body, payload_len=blen)))
        return out
