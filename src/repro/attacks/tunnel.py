"""Tunneling through benign protocols.

Section 2: unauthorized access may be achieved by "tunneling in through
'benign' protocols".  The classic example is an ICMP covert channel:
echo-request packets whose payloads carry exfiltrated data.  Header-only
sensors see ordinary pings; content/entropy-aware detectors notice the odd
payload sizes and near-random content.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..net.packet import Packet, Protocol
from .base import Attack, AttackKind

__all__ = ["IcmpTunnel"]


class IcmpTunnel(Attack):
    """Covert data exfiltration inside ICMP echo payloads."""

    kind = AttackKind.TUNNEL
    novel = True

    def __init__(
        self,
        inside_host: IPv4Address,
        outside_host: IPv4Address,
        total_bytes: int = 64_000,
        chunk: int = 512,
        rate_pps: float = 10.0,
    ) -> None:
        super().__init__(description=f"ICMP tunnel {inside_host} -> {outside_host}")
        if total_bytes <= 0 or chunk <= 0:
            raise ConfigurationError("total_bytes and chunk must be positive")
        if rate_pps <= 0:
            raise ConfigurationError("rate_pps must be positive")
        self.inside_host = inside_host
        self.outside_host = outside_host
        self.total_bytes = int(total_bytes)
        self.chunk = int(chunk)
        self.rate_pps = float(rate_pps)

    def _emit(self, rng: np.random.Generator):
        n = (self.total_bytes + self.chunk - 1) // self.chunk
        gap = 1.0 / self.rate_pps
        out = []
        for i in range(n):
            size = min(self.chunk, self.total_bytes - i * self.chunk)
            # "compressed/encrypted" exfil data: near-uniform bytes
            body = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            out.append((i * gap, Packet(
                src=self.inside_host, dst=self.outside_host,
                proto=Protocol.ICMP, payload=body)))
            # the fake echo reply keeping the channel two-way
            out.append((i * gap + 1e-3, Packet(
                src=self.outside_host, dst=self.inside_host,
                proto=Protocol.ICMP, payload_len=size)))
        return out
