"""Attack registry and standard scenario kits.

The evaluation harness replays "canned data with known attack content"
(section 4); :func:`standard_attack_suite` assembles the canonical campaign
used by the accuracy experiments -- one instance of every attack class,
spread across the scenario timeline, covering every :class:`AttackKind`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from .base import Attack, AttackKind
from .bruteforce import TelnetBruteForce
from .dos import SynFlood, UdpFlood
from .exploits import BufferOverflowExploit, CgiProbe, NovelExploit
from .insider import TrustAbuse
from .scans import HostSweep, PortScan, SlowPortScan
from .tunnel import IcmpTunnel

__all__ = ["CATALOG_VERSION", "ATTACK_CLASSES", "make_attack",
           "standard_attack_suite"]

#: Version of the canned attack campaign.  Bump whenever the suite's
#: composition, timing, or any attack generator's emitted traffic changes:
#: it is folded into the evaluation result-cache key, so stale cached
#: measurements are invalidated automatically.
CATALOG_VERSION = 1

ATTACK_CLASSES: Dict[str, type] = {
    "port-scan": PortScan,
    "slow-port-scan": SlowPortScan,
    "host-sweep": HostSweep,
    "syn-flood": SynFlood,
    "udp-flood": UdpFlood,
    "telnet-brute-force": TelnetBruteForce,
    "buffer-overflow": BufferOverflowExploit,
    "cgi-probe": CgiProbe,
    "novel-exploit": NovelExploit,
    "trust-abuse": TrustAbuse,
    "icmp-tunnel": IcmpTunnel,
}


def make_attack(name: str, **kwargs) -> Attack:
    """Instantiate a registered attack by name."""
    cls = ATTACK_CLASSES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown attack {name!r}; known: {sorted(ATTACK_CLASSES)}")
    return cls(**kwargs)


def standard_attack_suite(
    external_attacker: IPv4Address,
    lan_hosts: Sequence[IPv4Address],
    *,
    include_dos: bool = True,
    flood_rate_pps: float = 1500.0,
) -> List[tuple]:
    """The canonical labeled campaign: ``[(start_offset_s, Attack), ...]``.

    ``lan_hosts[0]`` plays the cluster master / main server;
    ``lan_hosts[1]`` plays the compromised insider host.
    """
    hosts = list(lan_hosts)
    if len(hosts) < 3:
        raise ConfigurationError("standard suite needs >= 3 LAN hosts")
    server, insider, victim = hosts[0], hosts[1], hosts[2]
    outside = IPv4Address("198.18.0.99")
    # A real sweep probes the address range, not just live hosts.
    sweep_targets = list(hosts)
    while len(sweep_targets) < 16:
        sweep_targets.append(sweep_targets[-1] + 1)

    suite: List[tuple] = [
        (2.0, HostSweep(external_attacker, sweep_targets, rate_pps=50.0)),
        (6.0, PortScan(external_attacker, server, ports=range(1, 513),
                       rate_pps=150.0)),
        (12.0, CgiProbe(external_attacker, server)),
        (18.0, BufferOverflowExploit(external_attacker, victim)),
        (24.0, TelnetBruteForce(external_attacker, victim, attempts=60,
                                rate_per_s=15.0)),
        (32.0, NovelExploit(external_attacker, server)),
        (36.0, TrustAbuse(insider, server)),
        (44.0, IcmpTunnel(insider, outside, total_bytes=16_000)),
    ]
    if include_dos:
        suite.append((52.0, SynFlood(server, rate_pps=flood_rate_pps,
                                     duration_s=4.0)))
        suite.append((58.0, UdpFlood(external_attacker, server,
                                     rate_pps=flood_rate_pps, duration_s=2.0)))
    return suite
