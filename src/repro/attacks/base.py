"""Attack base classes and ground-truth records.

Every attack instance has a unique ``attack_id`` stamped onto every packet it
emits.  The evaluation harness uses those stamps (never visible to products
under test) to build the Figure-3 sets: A = actual intrusions, D = detected
intrusions, T = transactions.

The paper notes that "even the definition of an attack is not always clear"
(one classifier's single attack is another's several).  We resolve this the
way the paper's testbed did: the *attack instance* (one scripted campaign,
e.g. one port scan of one target) is the unit of ground truth, regardless of
how many packets or alerts it produces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..net.trace import Trace

__all__ = ["AttackKind", "AttackRecord", "Attack"]


class AttackKind(enum.Enum):
    """Taxonomy of the attack library, following the threat discussion in
    section 2 of the paper (external attacks, insider misuse, tunneling)."""

    PROBE = "probe"              # reconnaissance: scans, sweeps
    DOS = "dos"                  # resource exhaustion: floods
    BRUTE_FORCE = "brute-force"  # credential guessing (masquerade)
    EXPLOIT = "exploit"          # payload-borne compromise attempts
    INSIDER = "insider"          # misuse of inter-host trust from within
    TUNNEL = "tunnel"            # exfiltration through benign protocols


@dataclass
class AttackRecord:
    """Ground-truth summary of one attack instance inside a scenario."""

    attack_id: str
    kind: AttackKind
    start: float
    end: float
    packets: int
    description: str = ""
    #: whether the attack is "novel" (no signature exists for it); used to
    #: contrast signature- vs anomaly-based detection (section 2.1)
    novel: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


class Attack:
    """Base class for attack generators.

    Subclasses implement :meth:`_emit` returning ``(time, Packet)`` records
    relative to t=0; :meth:`generate` shifts them to the requested start time,
    stamps ids, and produces both the trace and the ground-truth record.

    Class attributes
    ----------------
    kind:
        :class:`AttackKind` of the subclass.
    novel:
        True when no signature for this attack exists in the shipped rule
        sets (anomaly-only detectability).
    """

    kind: AttackKind = AttackKind.PROBE
    novel: bool = False
    _instance_counter = 0

    def __init__(self, description: str = "") -> None:
        type(self)._instance_counter += 1
        cls_tag = type(self).__name__.lower()
        self.attack_id = f"{cls_tag}-{type(self)._instance_counter}"
        self.description = description or cls_tag

    # ------------------------------------------------------------------
    def _emit(self, rng: np.random.Generator) -> Sequence[tuple]:
        """Return ``[(relative_time, Packet), ...]`` for one instance."""
        raise NotImplementedError

    def generate(
        self,
        start: float,
        rng: np.random.Generator,
    ) -> tuple[Trace, AttackRecord]:
        """Produce the labeled packet trace and ground-truth record."""
        records = sorted(self._emit(rng), key=lambda r: r[0])
        trace = Trace(self.attack_id)
        last = start
        for rel_t, pkt in records:
            pkt.attack_id = self.attack_id
            t = start + float(rel_t)
            trace.append(t, pkt)
            last = t
        record = AttackRecord(
            attack_id=self.attack_id,
            kind=self.kind,
            start=start,
            end=last,
            packets=len(trace),
            description=self.description,
            novel=self.novel,
        )
        return trace, record
