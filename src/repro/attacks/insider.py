"""Insider misuse exploiting inter-host trust.

Section 3.3: "When one host is compromised, other systems that trust it may
be very easily compromised in ways that may look like normal interactions
between hosts.  The result is an exploit that is difficult to detect and
nearly impossible to root out."  This attack reproduces exactly that: valid
cluster-protocol messages carrying an illegitimate command, from a host that
is *supposed* to talk to the target.  It is the hardest case in the library
and drives the paper's recommendation that distributed systems bias toward a
low false-negative ratio.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..net.tcp import build_session
from ..traffic.payload import cluster_command, cluster_telemetry
from .base import Attack, AttackKind

__all__ = ["TrustAbuse"]

#: Commands a compromised node issues that no operator would: these are the
#: only distinguishing feature, and only a content-aware, cluster-protocol
#: fluent detector has any chance.
ROGUE_COMMANDS = ["exfil", "disable_log", "override"]


class TrustAbuse(Attack):
    """Rogue control commands between trusted cluster nodes."""

    kind = AttackKind.INSIDER
    novel = True  # nothing in commercial signature sets knows this protocol

    def __init__(
        self,
        compromised: IPv4Address,
        target: IPv4Address,
        node_id: int = 3,
        commands: int = 3,
        gap_s: float = 2.0,
    ) -> None:
        super().__init__(description=f"trust abuse from {compromised} to {target}")
        if commands < 1:
            raise ConfigurationError("commands must be >= 1")
        if gap_s <= 0:
            raise ConfigurationError("gap_s must be positive")
        self.compromised = compromised
        self.target = target
        self.node_id = int(node_id)
        self.commands = int(commands)
        self.gap_s = float(gap_s)

    def _emit(self, rng: np.random.Generator):
        out = []
        for i in range(self.commands):
            cmd = ROGUE_COMMANDS[i % len(ROGUE_COMMANDS)]
            req = cluster_command(self.node_id, cmd, float(rng.random()))
            resp = cluster_telemetry(rng, self.node_id, n_samples=4)
            pkts = build_session(
                self.compromised, self.target,
                int(rng.integers(1024, 65535)), 7001,
                request=req, response=resp,
                isn_client=int(rng.integers(1, 2**31)),
                isn_server=int(rng.integers(1, 2**31)))
            t0 = i * self.gap_s
            out.extend((t0 + k * 2e-4, p) for k, p in enumerate(pkts))
        return out
