"""Management subprocess: configuration and automated response.

Section 2.2: "Management consoles allow the operator to configure the IDS
and to manage the threat by manipulating the incoming data stream via
external devices like firewalls and routers ... the ability to automatically
and accurately filter out offending traffic is key to a real-time response
to threats."

:class:`ManagementConsole` is the 1c side of the 1:1c monitor pairing and
holds 1c:M management links to the other components (central configuration:
sensitivity pushes, policy updates).  It binds symbolic
:class:`ResponseAction` s to concrete response devices and records every
response with its request->effect latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..sim.engine import Engine
from .alert import Alert
from .component import Component, Subprocess
from .monitor import Monitor
from .policy import PolicyRule, ResponseAction, SecurityPolicy
from .response import Firewall, Honeypot, RouterInterface, SnmpTrapReceiver
from .sensor import Sensor

__all__ = ["ResponseLog", "ManagementConsole"]


@dataclass(frozen=True)
class ResponseLog:
    """One automated response taken by the console."""

    time: float
    action: ResponseAction
    target: Optional[IPv4Address]
    alert_category: str


class ManagementConsole(Component):
    """Central configuration + automated response dispatcher.

    Parameters
    ----------
    secure_remote:
        Whether remote management is encrypted/authenticated (a logistics
        fact feeding the *Distributed Management* metric).
    """

    kind = Subprocess.MANAGER

    def __init__(
        self,
        engine: Engine,
        name: str,
        firewall: Optional[Firewall] = None,
        router: Optional[RouterInterface] = None,
        snmp: Optional[SnmpTrapReceiver] = None,
        honeypot: Optional[Honeypot] = None,
        secure_remote: bool = True,
    ) -> None:
        super().__init__(name)
        self.engine = engine
        self.firewall = firewall
        self.router = router
        self.snmp = snmp
        self.honeypot = honeypot
        self.secure_remote = secure_remote
        self._managed: List[Component] = []
        self.responses: List[ResponseLog] = []
        self.config_pushes = 0

    # ------------------------------------------------------------------
    # management links (1c:M)
    # ------------------------------------------------------------------
    def manage(self, component: Component) -> None:
        self._managed.append(component)

    @property
    def managed(self) -> Tuple[Component, ...]:
        return tuple(self._managed)

    def push_sensitivity(self, sensitivity: float) -> int:
        """Centrally retune every managed sensor's detector; returns how
        many sensors were updated (the Multi-sensor Support capability)."""
        updated = 0
        for comp in self._managed:
            if isinstance(comp, Sensor):
                comp.detector.sensitivity = sensitivity
                updated += 1
        self.config_pushes += 1
        return updated

    def push_policy(self, policy: SecurityPolicy) -> int:
        updated = 0
        for comp in self._managed:
            if isinstance(comp, Monitor):
                comp.policy = policy
                updated += 1
        self.config_pushes += 1
        return updated

    # ------------------------------------------------------------------
    # response dispatch (bound to Monitor.set_responder)
    # ------------------------------------------------------------------
    def respond(self, action: ResponseAction, alert: Alert) -> None:
        target: Optional[IPv4Address] = alert.src
        if action is ResponseAction.FIREWALL_BLOCK and self.firewall is not None:
            self.firewall.request_block(alert.src)
        elif action is ResponseAction.ROUTER_BLOCK and self.router is not None:
            self.router.request_block(alert.src)
        elif action is ResponseAction.SNMP_TRAP and self.snmp is not None:
            self.snmp.trap(oid="1.3.6.1.4.1.2002.1",
                           detail=f"{alert.category} from {alert.src}")
            target = None
        elif action is ResponseAction.HONEYPOT_REDIRECT and (
                self.router is not None and self.honeypot is not None):
            self.router.request_redirect(alert.src, self.honeypot)
        else:
            return  # capability not present on this product
        self.responses.append(ResponseLog(
            time=self.engine.now, action=action, target=target,
            alert_category=alert.category))

    @property
    def capabilities(self) -> Dict[str, bool]:
        """Which interaction channels this deployment actually has."""
        return {
            "firewall": self.firewall is not None,
            "router": self.router is not None,
            "snmp": self.snmp is not None,
            "honeypot": self.honeypot is not None,
        }
