"""IDS subprocess components and the Figure-2 cardinality rules.

The paper decomposes intrusion detection into five sequential subprocesses
(Figure 1) and fixes the legal relational cardinalities between them
(Figure 2)::

    LoadBalancer --1c:M--> Sensor --M:M--> Analyzer --M:1--> Monitor --1:1c--> Manager
    Manager --1c:M--> {LoadBalancer, Sensor, Analyzer, Monitor}

Where ``1c`` marks a *conditional* (optional) side.  Concretely:

* each Sensor receives from **at most one** LoadBalancer; a LoadBalancer
  feeds **one or more** Sensors (load balancing is optional);
* Sensors and Analyzers connect freely (**M:M**), and the two are often
  combined one-to-one;
* each Analyzer reports to **exactly one** Monitor; a Monitor aggregates
  **one or more** Analyzers;
* each Monitor is paired with **at most one** Manager, and a Manager with
  exactly one Monitor;
* a Manager may manage **any number** of other components, each of which has
  at most one Manager.

:func:`validate_wiring` enforces all of this and is called by the pipeline
assembler; benchmarks F2 exercises acceptance and rejection exhaustively.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..errors import CardinalityError

__all__ = ["Subprocess", "Component", "validate_wiring"]


class Subprocess(enum.Enum):
    """The five IDS subprocesses of Figure 1."""

    LOAD_BALANCER = "load-balancer"
    SENSOR = "sensor"
    ANALYZER = "analyzer"
    MONITOR = "monitor"
    MANAGER = "manager"


#: (upstream kind, downstream kind) -> (max upstream per downstream,
#:                                      max downstream per upstream);
#: ``None`` means unbounded ("M").
_DATA_RULES: Dict[Tuple[Subprocess, Subprocess], Tuple[int | None, int | None]] = {
    (Subprocess.LOAD_BALANCER, Subprocess.SENSOR): (1, None),   # 1c:M
    (Subprocess.SENSOR, Subprocess.ANALYZER): (None, None),     # M:M
    (Subprocess.ANALYZER, Subprocess.MONITOR): (None, 1),       # M:1
    (Subprocess.MONITOR, Subprocess.MANAGER): (1, 1),           # 1:1c
}

#: Kinds a manager may have management (control-plane) links to: everything
#: except another manager.
_MANAGEABLE = {
    Subprocess.LOAD_BALANCER,
    Subprocess.SENSOR,
    Subprocess.ANALYZER,
    Subprocess.MONITOR,
}


class Component:
    """Base class for every pipeline component.

    Tracks identity and wiring; behaviour lives in subclasses.
    """

    kind: Subprocess

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


def validate_wiring(
    components: Sequence[Component],
    data_links: Iterable[Tuple[Component, Component]],
    mgmt_links: Iterable[Tuple[Component, Component]] = (),
) -> None:
    """Check a proposed wiring against the Figure-2 cardinalities.

    Parameters
    ----------
    components:
        All components of the deployment.
    data_links:
        Directed ``(upstream, downstream)`` data-path edges.
    mgmt_links:
        Directed ``(manager, managed)`` control-plane edges.

    Raises
    ------
    CardinalityError
        On any violation: an edge between kinds with no defined
        relationship, an edge referencing an unknown component, exceeding a
        "1" side of a relationship, an essential subprocess missing, or a
        sensor left with no analyzer.
    """
    comp_set = set(id(c) for c in components)
    kinds = [c.kind for c in components]

    # Essential subprocesses (section 2.2): sensing, analysis, monitoring.
    for essential in (Subprocess.SENSOR, Subprocess.ANALYZER, Subprocess.MONITOR):
        if essential not in kinds:
            raise CardinalityError(f"missing essential subprocess: {essential.value}")
    if kinds.count(Subprocess.MONITOR) > 1:
        raise CardinalityError("only one monitoring console is supported per IDS")
    if kinds.count(Subprocess.MANAGER) > 1:
        raise CardinalityError("at most one management console per IDS (1:1c)")

    data_links = list(data_links)
    mgmt_links = list(mgmt_links)

    for up, down in data_links:
        if id(up) not in comp_set or id(down) not in comp_set:
            raise CardinalityError(
                f"data link {up!r} -> {down!r} references unknown component")
        rule = _DATA_RULES.get((up.kind, down.kind))
        if rule is None:
            raise CardinalityError(
                f"illegal data link {up.kind.value} -> {down.kind.value}")

    # Count degrees per rule.
    up_count: Dict[Tuple[int, Subprocess], int] = {}
    down_count: Dict[Tuple[int, Subprocess], int] = {}
    for up, down in data_links:
        up_count[(id(down), up.kind)] = up_count.get((id(down), up.kind), 0) + 1
        down_count[(id(up), down.kind)] = down_count.get((id(up), down.kind), 0) + 1

    by_id = {id(c): c for c in components}
    for (pair, rule) in _DATA_RULES.items():
        up_kind, down_kind = pair
        max_up, max_down = rule
        if max_up is not None:
            for c in components:
                if c.kind is down_kind:
                    n = up_count.get((id(c), up_kind), 0)
                    if n > max_up:
                        raise CardinalityError(
                            f"{c.name!r} ({down_kind.value}) has {n} upstream "
                            f"{up_kind.value}s; at most {max_up} allowed")
        if max_down is not None:
            for c in components:
                if c.kind is up_kind:
                    n = down_count.get((id(c), down_kind), 0)
                    if n > max_down:
                        raise CardinalityError(
                            f"{c.name!r} ({up_kind.value}) feeds {n} "
                            f"{down_kind.value}s; at most {max_down} allowed")

    # Every sensor must reach an analyzer; every analyzer must reach the
    # monitor (they are steps of an intrinsically sequential process).
    for c in components:
        if c.kind is Subprocess.SENSOR:
            if down_count.get((id(c), Subprocess.ANALYZER), 0) == 0:
                raise CardinalityError(f"sensor {c.name!r} feeds no analyzer")
        if c.kind is Subprocess.ANALYZER:
            if down_count.get((id(c), Subprocess.MONITOR), 0) == 0:
                raise CardinalityError(f"analyzer {c.name!r} reports to no monitor")
        if c.kind is Subprocess.LOAD_BALANCER:
            if down_count.get((id(c), Subprocess.SENSOR), 0) == 0:
                raise CardinalityError(f"load balancer {c.name!r} feeds no sensor")

    # Management links: manager -> manageable kinds, one manager per target.
    managed_by: Dict[int, int] = {}
    for mgr, target in mgmt_links:
        if id(mgr) not in comp_set or id(target) not in comp_set:
            raise CardinalityError("management link references unknown component")
        if mgr.kind is not Subprocess.MANAGER:
            raise CardinalityError(
                f"management link source {mgr.name!r} is not a manager")
        if target.kind not in _MANAGEABLE:
            raise CardinalityError(
                f"{target.kind.value} cannot be a management target")
        if managed_by.setdefault(id(target), id(mgr)) != id(mgr):
            raise CardinalityError(
                f"{target.name!r} managed by more than one console")
