"""Host-based sensing.

Section 2.1: "An IDS that monitors a host typically examines information
available on the host such as log files ... Nominal event-logging support
for host IDSs has been shown to consume three to five percent of the
monitored host's resources.  Logging compliant with Department of Defense
C2-level (Controlled Access Protection) security requires as much as twenty
percent of the host's processing power."

:class:`HostAgent` attaches to a :class:`~repro.net.node.Host`: it derives
log events from the packets the host receives (logins, connections), charges
the host CPU per its :class:`LoggingLevel`, detects host-local misuse
(failed-login storms), and forwards events to an analyzer like any sensor
(a *multi-host IDS* when several agents report to one analysis engine --
consuming network bandwidth for the reporting, which we account).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..net.node import Host
from ..net.packet import Packet, Protocol
from ..sim.engine import Engine
from .alert import Detection, Severity
from .audit import (
    C2_EVENTS,
    KNOWN_CLUSTER_COMMANDS,
    NOMINAL_EVENTS,
    AuditEvent,
    AuditEventType,
    AuditTrail,
    packet_to_events,
)
from .component import Component, Subprocess

__all__ = ["LoggingLevel", "HostAgent"]

#: bytes of log-report traffic per forwarded event (network overhead of a
#: multi-host IDS, section 2.1)
_EVENT_REPORT_BYTES = 220


class LoggingLevel(enum.Enum):
    """Audit depth; values are the host-CPU fractions from the paper."""

    NOMINAL = "nominal"   # 3-5 % of the host CPU
    C2 = "c2"             # ~20 % (DoD Controlled Access Protection)

    @property
    def cpu_fraction(self) -> float:
        return 0.04 if self is LoggingLevel.NOMINAL else 0.20

    @property
    def event_depth(self) -> frozenset:
        """Audit event types recorded at this depth (C2 adds COMMAND
        records -- the visibility that catches the insider case)."""
        return C2_EVENTS if self is LoggingLevel.C2 else NOMINAL_EVENTS


class HostAgent(Component):
    """A host-based IDS agent.

    Parameters
    ----------
    host:
        The monitored host; the agent registers its CPU load there and
        taps the host's delivered packets.
    logging_level:
        Audit depth, setting the CPU cost per the paper's figures.
    failed_login_threshold:
        Local detection: failed logins from one source within
        ``window_s`` that trigger a brute-force detection.
    """

    kind = Subprocess.SENSOR  # a host agent is a (host-scoped) sensor

    def __init__(
        self,
        engine: Engine,
        host: Host,
        logging_level: LoggingLevel = LoggingLevel.NOMINAL,
        failed_login_threshold: int = 10,
        window_s: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"agent@{host.name}")
        if failed_login_threshold < 1:
            raise ConfigurationError("failed_login_threshold must be >= 1")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.engine = engine
        self.host = host
        self.logging_level = logging_level
        self.failed_login_threshold = int(failed_login_threshold)
        self.window_s = float(window_s)

        self._cpu_handle = host.cpu.add_load(self.name,
                                             logging_level.cpu_fraction)
        host.on_packet(self._observe)

        self.trail = AuditTrail()
        self._sinks: List[Callable[[Detection], None]] = []
        self._fail_windows: dict[int, list] = {}  # src -> [start, count, fired]
        self._rogue_seen: set = set()             # (subject, command) pairs
        self.log_events = 0
        self.report_bytes = 0
        self.detections_emitted = 0
        self.migrated = False

    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[Detection], None]) -> None:
        self._sinks.append(sink)

    def set_logging_level(self, level: LoggingLevel) -> None:
        """Re-register the CPU load at the new audit depth."""
        self._cpu_handle.release()
        self.logging_level = level
        self._cpu_handle = self.host.cpu.add_load(self.name, level.cpu_fraction)

    # ------------------------------------------------------------------
    def _observe(self, pkt: Packet) -> None:
        """Audit a packet delivered to the host; detect host-local misuse."""
        now = self.engine.now
        self.log_events += 1
        for event in packet_to_events(pkt, now, self.logging_level.event_depth):
            self.trail.log(event)
            if event.etype is AuditEventType.LOGIN_FAILURE:
                self._failed_login(pkt, now)
            elif event.etype is AuditEventType.LOGIN_SUCCESS:
                # success right after a failure storm from the same source:
                # the masquerade of section 2
                window = self._fail_windows.get(pkt.src.value)
                if window is not None and \
                        window[1] >= self.failed_login_threshold // 2:
                    self._emit(pkt, "masquerade-login", Severity.CRITICAL,
                               0.95, now)
            elif event.etype is AuditEventType.COMMAND:
                # only loggable at C2 depth; unknown commands from a trusted
                # peer are the section-3.3 insider signature
                if event.detail not in KNOWN_CLUSTER_COMMANDS:
                    key = (event.subject, event.detail)
                    if key not in self._rogue_seen:
                        self._rogue_seen.add(key)
                        self._emit(pkt, "rogue-command", Severity.CRITICAL,
                                   0.9, now)

    def _failed_login(self, pkt: Packet, now: float) -> None:
        window = self._fail_windows.get(pkt.src.value)
        if window is None or now - window[0] > self.window_s:
            window = [now, 0, False]
            self._fail_windows[pkt.src.value] = window
        window[1] += 1
        if window[1] >= self.failed_login_threshold and not window[2]:
            window[2] = True
            self._emit(pkt, "failed-login-storm", Severity.HIGH, 0.9, now)

    def _emit(self, pkt: Packet, category: str, severity: Severity,
              score: float, now: float) -> None:
        det = Detection(
            time=now, sensor=self.name, category=category,
            src=pkt.src, dst=pkt.dst, score=score, severity=severity,
            packet_pid=pkt.pid, truth_attack_id=pkt.attack_id)
        self.detections_emitted += 1
        self.report_bytes += _EVENT_REPORT_BYTES
        for sink in self._sinks:
            sink(det)

    # ------------------------------------------------------------------
    def migrate(self) -> None:
        """Detach from a host under attack (section 2.1: agents "must
        quickly notify someone and possibly migrate to another host before
        they are compromised or disabled")."""
        self._cpu_handle.release()
        self.migrated = True

    @property
    def cpu_fraction(self) -> float:
        return 0.0 if self.migrated else self.logging_level.cpu_fraction
