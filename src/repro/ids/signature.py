"""Signature-based detection engine.

"A signature-based IDS attempts to detect patterns in network traffic that
are characteristic of known attacks" (section 2.1).  The engine evaluates a
rule set against each packet (and light per-source state for threshold
rules).  Like its commercial counterparts it only knows *previously known*
attacks: the shipped :func:`default_ruleset` covers the attack library's
known vectors but, by construction, not the ``novel=True`` ones.

Sensitivity
-----------
The engine exposes the paper's *Adjustable Sensitivity* metric: a value in
[0, 1].  Raising it lowers threshold-rule trigger counts and enables the
low-specificity "noisy" rules (which occasionally fire on benign traffic) --
trading false negatives for false positives exactly as Figure 4 describes.

Matching kernels
----------------
The paper's Class-3 performance metrics are measured by pushing traffic
through this engine, so its per-packet cost bounds how many scenarios a
CPU-hour of evaluation can sweep.  Two interchangeable kernels produce
byte-identical matches:

``linear``
    The reference path: every rule's ``match`` runs on every packet --
    O(rules x patterns) per packet.  Kept for differential testing.
``indexed`` (default)
    The dispatch path: rules are bucketed by their declared static
    constraints (protocol, destination ports, either-direction ports,
    required TCP flag bits) so a packet only visits rules that could
    possibly fire, and all payload
    patterns across all payload/stream rules are compiled into one shared
    :class:`~repro.ids.multipattern.MultiPatternMatcher` so each payload is
    scanned once instead of once per pattern.  Hits map back to owning
    rules in original rule order, preserving match-report ordering.

Select a kernel per engine (``SignatureEngine(..., engine="linear")``) or
for a whole code region via :func:`use_engine`; the evaluation harness
threads ``EvaluationOptions.engine`` through the latter.
"""

from __future__ import annotations

import re
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigurationError
from ..net.packet import Packet, Protocol, TcpFlags
from .alert import Severity
from .multipattern import MultiPatternMatcher

#: proto_id -> Protocol member, inverse of :data:`repro.net.packet.PROTO_IDS`
#: (dispatch keys carry the int id; bucket builds map it back).
_PROTOS = tuple(Protocol)

__all__ = [
    "RuleMatch",
    "SignatureRule",
    "PayloadPatternRule",
    "StreamPatternRule",
    "HeaderRule",
    "ThresholdRule",
    "SignatureEngine",
    "default_ruleset",
    "ENGINE_KINDS",
    "DEFAULT_ENGINE",
    "use_engine",
]

#: The selectable matching kernels.
ENGINE_KINDS = ("indexed", "linear")

#: Kernel used when an engine is built without an explicit ``engine=``.
DEFAULT_ENGINE = "indexed"


def _check_engine_kind(kind: str) -> str:
    if kind not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")
    return kind


@contextmanager
def use_engine(kind: str) -> Iterator[None]:
    """Temporarily change the default matching kernel.

    The evaluation work units wrap themselves in this so one
    ``EvaluationOptions.engine`` knob reaches every product deployment
    (whose factories take no arguments), in-process and across pool
    workers alike.
    """
    global DEFAULT_ENGINE
    previous = DEFAULT_ENGINE
    DEFAULT_ENGINE = _check_engine_kind(kind)
    try:
        yield
    finally:
        DEFAULT_ENGINE = previous


@dataclass(frozen=True, slots=True)
class RuleMatch:
    """The outcome of a rule firing on a packet."""

    rule: str
    category: str
    severity: Severity
    score: float
    detail: str = ""


class SignatureRule:
    """Base rule.

    Parameters
    ----------
    name / category / severity:
        Identification and the threat class reported on match.
    min_sensitivity:
        The rule is evaluated only when the engine sensitivity is at least
        this value; low-specificity rules carry high values so they only
        fire on aggressive tunings.
    """

    __slots__ = ("name", "category", "severity", "min_sensitivity",
                 "base_score")

    def __init__(
        self,
        name: str,
        category: str,
        severity: Severity = Severity.MEDIUM,
        min_sensitivity: float = 0.0,
        base_score: float = 0.9,
    ) -> None:
        if not 0.0 <= min_sensitivity <= 1.0:
            raise ConfigurationError("min_sensitivity must be in [0, 1]")
        self.name = name
        self.category = category
        self.severity = severity
        self.min_sensitivity = float(min_sensitivity)
        self.base_score = float(base_score)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        raise NotImplementedError

    def dispatch_constraints(self) -> Tuple[Optional[Protocol],
                                            Optional[FrozenSet[int]],
                                            Optional[FrozenSet[int]],
                                            Optional[TcpFlags]]:
        """Static preconditions for the indexed dispatch path.

        Returns ``(proto, dports, ports, flags)``: the packet protocol
        this rule requires, destination ports it requires, ports it
        requires in *either* direction, and TCP flag bits that must all be
        set -- ``None`` meaning unconstrained.  The contract: any packet
        violating a declared constraint makes :meth:`match` return ``None``
        with no side effects, so the indexed engine may skip the rule
        entirely.  The base class declares nothing (the rule is visited
        for every packet); subclasses with narrower ``match`` logic
        override this to enable dispatch pruning.
        """
        return (None, None, None, None)

    def reset(self) -> None:
        """Clear any per-rule state (between evaluation runs)."""

    def _hit(self, detail: str = "") -> RuleMatch:
        return RuleMatch(self.name, self.category, self.severity,
                         self.base_score, detail)


class PayloadPatternRule(SignatureRule):
    """Match any of a set of byte patterns in the packet payload.

    Only materialized payloads are inspected -- a deliberate property: this
    is the class of rule that makes payload realism matter (lesson 1).
    """

    __slots__ = ("patterns", "ports", "proto", "_indexed_patterns")

    def __init__(
        self,
        name: str,
        patterns: Sequence[bytes],
        ports: Optional[Sequence[int]] = None,
        proto: Optional[Protocol] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if not patterns:
            raise ConfigurationError("patterns must be non-empty")
        self.patterns = [bytes(p) for p in patterns]
        self.ports = frozenset(int(p) for p in ports) if ports is not None else None
        self.proto = proto
        #: ``(pattern, shared-matcher id)`` pairs, in rule-priority order;
        #: assigned by the indexed engine at index-build time
        self._indexed_patterns: Tuple[Tuple[bytes, int], ...] = ()

    def dispatch_constraints(self):
        return (self.proto, None, self.ports, None)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.payload is None:
            return None
        if self.proto is not None and pkt.proto is not self.proto:
            return None
        if self.ports is not None and pkt.dport not in self.ports and pkt.sport not in self.ports:
            return None
        for pattern in self.patterns:
            if pattern in pkt.payload:
                return self._hit(detail=f"pattern {pattern[:16]!r}")
        return None

    def match_prefiltered(self, pkt: Packet, now: float, sensitivity: float,
                          matched_ids: FrozenSet[int]) -> Optional[RuleMatch]:
        """Indexed fast path: the dispatch index already proved the
        proto/port constraints and the caller guarantees a materialized
        payload; ``matched_ids`` is the shared one-pass scan result."""
        for pattern, pid in self._indexed_patterns:
            if pid in matched_ids:
                return self._hit(detail=f"pattern {pattern[:16]!r}")
        return None


class StreamPatternRule(SignatureRule):
    """Match byte patterns across TCP segment boundaries.

    Per-packet rules miss an attack whose signature straddles two segments
    (an easy evasion).  This rule keeps a bounded per-direction rolling
    buffer per flow: each segment is appended to the retained tail of the
    stream so any pattern shorter than the tail cannot slip through a
    segmentation seam.  Out-of-order delivery within a flow is handled by
    sequencing on TCP sequence numbers when they are contiguous and
    falling back to arrival order otherwise (the common fast path of
    commercial engines; full reassembly lives in
    :class:`repro.net.tcp.StreamReassembler` for analyzers that need it).

    Flow-state economy: a carried tail can only ever matter if some byte
    of it could *start* a pattern, so flow state is stored only for tails
    containing at least one pattern-leading byte (a single C-speed
    character-class search over the last ``tail_len`` bytes decides).
    Benign traffic therefore keeps the flow table essentially empty -- a
    packet costs one dict miss instead of insert-and-evict churn.  When
    the ``max_flows`` cap is hit anyway, the oldest stored flow is evicted
    in amortized O(1) via a creation-order key queue -- no full-table
    sweeps on the packet path.  (A ``next(iter(dict))`` eviction cursor
    was tried first; under churn it degrades to scanning the tombstones
    that deletions leave in the dict's entry array.)
    """

    __slots__ = ("patterns", "ports", "max_flows", "window_s", "_tail_len",
                 "_tail_gate", "_streams", "_order", "_indexed_patterns")

    def __init__(
        self,
        name: str,
        patterns: Sequence[bytes],
        ports: Optional[Sequence[int]] = None,
        max_flows: int = 8192,
        window_s: float = 30.0,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if not patterns:
            raise ConfigurationError("patterns must be non-empty")
        self.patterns = [bytes(p) for p in patterns]
        self.ports = frozenset(int(p) for p in ports) if ports is not None else None
        self.max_flows = int(max_flows)
        self.window_s = float(window_s)
        self._tail_len = max(len(p) for p in self.patterns) - 1
        # "could a pattern start in this tail?" -- class of leading bytes
        first = sorted({p[0] for p in self.patterns})
        self._tail_gate = re.compile(
            b"[" + b"".join(re.escape(bytes((b,))) for b in first) + b"]")
        # (src, sport, dst, dport) -> [stored_at, expected_seq, tail];
        # only flows whose tail passes the gate are present
        self._streams: Dict[tuple, list] = {}
        # stored-flow keys, oldest first; may contain stale keys (state
        # dropped on hit/degenerate tail), compacted when 2x the cap
        self._order: deque = deque()
        self._indexed_patterns: Tuple[Tuple[bytes, int], ...] = ()

    def dispatch_constraints(self):
        return (None, None, self.ports, None)

    def reset(self) -> None:
        self._streams.clear()
        self._order.clear()

    def _valid_tail(self, pkt: Packet, now: float, state: Optional[list]) -> bytes:
        """The carried tail, or ``b""`` when absent/expired/out-of-seq."""
        if state is None:
            return b""
        if now - state[0] > self.window_s or pkt.seq != state[1]:
            return b""
        return state[2]

    def _store_tail(self, key: tuple, state: Optional[list], pkt: Packet,
                    now: float, haystack: bytes) -> None:
        """Persist the next packet's seam context -- the trailing
        ``tail_len`` bytes of ``haystack`` -- but only if a pattern could
        start inside it; otherwise drop any stale state (an absent entry
        and an unusable tail are equivalent, and keeping the table free of
        dead flows is what makes the common path one dict miss)."""
        streams = self._streams
        tail_len = self._tail_len
        if tail_len and self._tail_gate.search(
                haystack, max(0, len(haystack) - tail_len)) is not None:
            tail = haystack[-tail_len:]
            if state is not None:
                state[0] = now
                state[1] = pkt.seq + len(pkt.payload)
                state[2] = tail
                return
            order = self._order
            while len(streams) >= self.max_flows:
                stale = streams.pop(order.popleft(), None)
                if stale is not None:
                    break
            streams[key] = [now, pkt.seq + len(pkt.payload), tail]
            order.append(key)
            if len(order) >= 2 * self.max_flows:
                # drop stale keys; dict.fromkeys dedups re-created flows
                self._order = deque(dict.fromkeys(
                    k for k in order if k in streams))
        elif state is not None:
            del streams[key]

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        payload = pkt.payload
        if payload is None:
            return None
        if self.ports is not None and pkt.dport not in self.ports \
                and pkt.sport not in self.ports:
            return None
        if pkt.proto is not Protocol.TCP:
            # datagrams have no stream: plain per-packet matching
            for pattern in self.patterns:
                if pattern in payload:
                    return self._hit(detail=f"pattern {pattern[:16]!r}")
            return None
        key = (pkt.src.value, pkt.sport, pkt.dst.value, pkt.dport)
        state = self._streams.get(key)
        tail = self._valid_tail(pkt, now, state)
        haystack = tail + payload if tail else payload
        for pattern in self.patterns:
            if pattern in haystack:
                if state is not None:
                    del self._streams[key]  # one hit per occurrence window
                return self._hit(detail=f"stream pattern {pattern[:16]!r}")
        self._store_tail(key, state, pkt, now, haystack)
        return None

    def match_prefiltered(self, pkt: Packet, now: float, sensitivity: float,
                          matched_ids: FrozenSet[int]) -> Optional[RuleMatch]:
        """Indexed fast path.  A pattern occurs in ``tail + payload`` iff
        it occurs inside the payload (covered by the shared scan) or in the
        seam ``tail + payload[:tail_len]`` (every boundary-straddling
        occurrence starts in the tail and ends within ``tail_len`` payload
        bytes), so the full haystack is never re-scanned per pattern."""
        payload = pkt.payload
        if pkt.proto is not Protocol.TCP:
            for pattern, pid in self._indexed_patterns:
                if pid in matched_ids:
                    return self._hit(detail=f"pattern {pattern[:16]!r}")
            return None
        streams = self._streams
        if streams:
            key = (pkt.src.value, pkt.sport, pkt.dst.value, pkt.dport)
            state = streams.get(key)
        else:
            key = state = None  # empty table: skip the flow-key build
        tail_len = self._tail_len
        if state is not None and now - state[0] <= self.window_s \
                and pkt.seq == state[1]:
            seam = state[2] + payload[:tail_len]
        else:
            seam = b""
        if matched_ids or seam:
            for pattern, pid in self._indexed_patterns:
                if pid in matched_ids or (seam and pattern in seam):
                    if state is not None:
                        del streams[key]  # one hit per occurrence window
                    return self._hit(detail=f"stream pattern {pattern[:16]!r}")
        if state is None:
            # benign fast path: no stored flow, and nothing to store unless
            # a pattern could start inside the would-be tail
            plen = len(payload)
            if tail_len and self._tail_gate.search(
                    payload,
                    plen - tail_len if plen > tail_len else 0) is not None:
                if key is None:
                    key = (pkt.src.value, pkt.sport, pkt.dst.value, pkt.dport)
                self._store_tail(key, None, pkt, now, payload)
            return None
        self._store_tail(key, state, pkt, now,
                         state[2] + payload if seam else payload)
        return None


class HeaderRule(SignatureRule):
    """Match on header fields only (proto, ports, flags, size)."""

    __slots__ = ("proto", "dports", "flags", "min_payload", "predicate")

    def __init__(
        self,
        name: str,
        proto: Optional[Protocol] = None,
        dports: Optional[Sequence[int]] = None,
        flags: Optional[TcpFlags] = None,
        min_payload: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        self.proto = proto
        self.dports = frozenset(int(p) for p in dports) if dports is not None else None
        self.flags = flags
        self.min_payload = min_payload
        self.predicate = predicate

    def dispatch_constraints(self):
        return (self.proto, self.dports, None, self.flags)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if self.proto is not None and pkt.proto is not self.proto:
            return None
        if self.dports is not None and pkt.dport not in self.dports:
            return None
        if self.flags is not None and (pkt.flags & self.flags) != self.flags:
            return None
        if self.min_payload is not None and pkt.payload_len < self.min_payload:
            return None
        if self.predicate is not None and not self.predicate(pkt):
            return None
        return self._hit()


class ThresholdRule(SignatureRule):
    """Fire when a keyed event count exceeds a threshold within a window.

    This is the portscan-preprocessor family: ``key_fn`` buckets events
    (e.g. by source address), ``value_fn`` extracts the counted item
    (``None`` to skip the packet; a hashable to count *distinct* items, or
    the sentinel :attr:`COUNT` to count occurrences).

    The effective threshold scales with sensitivity: at 0 it doubles, at 1
    it halves -- the knob the Figure-4 sweep turns.

    ``proto`` / ``dports`` / ``flags`` optionally declare, as indexable
    constraints, preconditions the key/value functions already imply (a
    rule keyed on TCP SYNs can declare ``proto=Protocol.TCP,
    flags=TcpFlags.SYN``).  They are dispatch metadata only -- ``match``
    itself never consults them, so the linear reference path is unchanged
    -- which makes the contract easy to state: the declaration must be
    implied by ``key_fn``/``value_fn`` returning ``None``, or the indexed
    kernel would skip a rule that could fire.
    """

    COUNT = object()

    __slots__ = ("key_fn", "value_fn", "threshold", "window_s", "proto",
                 "dports", "flags", "_state", "_eff_cache")

    def __init__(
        self,
        name: str,
        key_fn: Callable[[Packet], Optional[object]],
        value_fn: Callable[[Packet], Optional[object]],
        threshold: int,
        window_s: float = 5.0,
        proto: Optional[Protocol] = None,
        dports: Optional[Sequence[int]] = None,
        flags: Optional[TcpFlags] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if threshold < 1:
            raise ConfigurationError("threshold must be >= 1")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.key_fn = key_fn
        self.value_fn = value_fn
        self.threshold = int(threshold)
        self.window_s = float(window_s)
        self.proto = proto
        self.dports = frozenset(int(p) for p in dports) if dports is not None else None
        self.flags = flags
        # key -> (window_start, set-or-int, fired_in_window)
        self._state: Dict[object, list] = {}
        self._eff_cache: Tuple[float, int] = (-1.0, 0)

    def dispatch_constraints(self):
        return (self.proto, self.dports, None, self.flags)

    def reset(self) -> None:
        self._state.clear()

    def effective_threshold(self, sensitivity: float) -> int:
        cached_s, cached_t = self._eff_cache
        if cached_s == sensitivity:
            return cached_t
        value = max(1, int(round(self.threshold * (2.0 ** (1.0 - 2.0 * sensitivity)))))
        self._eff_cache = (sensitivity, value)
        return value

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        key = self.key_fn(pkt)
        if key is None:
            return None
        state = self._state.get(key)
        if state is not None and now - state[0] <= self.window_s:
            if state[2]:
                # one alert per key per window, and a fired window's count
                # is unobservable until expiry replaces the state wholesale
                # -- skip the accounting (value_fn included) entirely
                return None
        else:
            state = None  # expired: treat as absent
        value = self.value_fn(pkt)
        if value is None:
            return None
        if state is None:
            state = [now, (0 if value is ThresholdRule.COUNT else set()), False]
            self._state[key] = state
        if value is ThresholdRule.COUNT:
            count = state[1] + 1
            state[1] = count
        else:
            values = state[1]
            values.add(value)
            count = len(values)
        # inline the memoized effective threshold: sensitivity is fixed
        # across a run, so this is one tuple compare on the hot path
        cached_s, eff = self._eff_cache
        if cached_s != sensitivity:
            eff = self.effective_threshold(sensitivity)
        if count >= eff:
            state[2] = True
            return self._hit(detail=f"count={count} key={key}")
        return None


class SignatureEngine:
    """Evaluate a rule set against a packet stream.

    Parameters
    ----------
    rules:
        The rule set; order is preserved in match reporting.  The indexed
        kernel snapshots it at construction -- build a new engine rather
        than mutating ``rules`` afterwards.
    sensitivity:
        Engine-wide sensitivity in [0, 1]; see module docstring.
    engine:
        Matching kernel, ``"indexed"`` or ``"linear"`` (module docstring);
        ``None`` selects the ambient :data:`DEFAULT_ENGINE`.
    """

    def __init__(self, rules: Sequence[SignatureRule],
                 sensitivity: float = 0.5,
                 engine: Optional[str] = None) -> None:
        self.rules = list(rules)
        self.engine_kind = _check_engine_kind(
            DEFAULT_ENGINE if engine is None else engine)
        self._linear = self.engine_kind == "linear"
        # (proto, normalized dport, normalized sport, masked flags) ->
        # rule bucket; rebuilt lazily, emptied whenever sensitivity changes
        # (same dict object throughout: the hot tuple below captures it)
        self._dispatch: Dict[tuple, tuple] = {}
        self._matcher: Optional[MultiPatternMatcher] = None
        self._dports_of_interest: FrozenSet[int] = frozenset()
        self._sports_of_interest: FrozenSet[int] = frozenset()
        self._flags_mask = 0
        self._hot: Optional[tuple] = None
        self.sensitivity = sensitivity
        self.packets_inspected = 0
        self.matches = 0
        if not self._linear:
            self._build_index()
            # one attribute read per packet instead of five
            self._hot = (self._dispatch, self._dports_of_interest,
                         self._sports_of_interest, self._flags_mask,
                         self._matcher.scan)

    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        self._sensitivity = float(value)
        # dispatch buckets bake in the min_sensitivity gate; clear in
        # place so the hot tuple's reference stays valid
        self._dispatch.clear()

    # ------------------------------------------------------------------
    # indexed kernel: rule index + shared multi-pattern automaton
    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        pattern_rules = [r for r in self.rules
                         if type(r) in (PayloadPatternRule, StreamPatternRule)]
        self._matcher = MultiPatternMatcher(
            p for rule in pattern_rules for p in rule.patterns)
        for rule in pattern_rules:
            rule._indexed_patterns = tuple(
                (p, self._matcher.pattern_id(p)) for p in rule.patterns)
        dports, sports, flags_mask = set(), set(), 0
        for rule in self.rules:
            _, rule_dports, rule_ports, rule_flags = rule.dispatch_constraints()
            if rule_dports:
                dports |= rule_dports
            if rule_ports:
                dports |= rule_ports
                sports |= rule_ports
            if rule_flags:
                flags_mask |= int(rule_flags)
        self._dports_of_interest = frozenset(dports)
        self._sports_of_interest = frozenset(sports)
        self._flags_mask = flags_mask

    def _build_bucket(self, key: int) -> tuple:
        """Rules that can possibly fire for packets normalizing to ``key``,
        in original rule order, each paired with its fast-path method.

        Returns ``(full, header_only, guard)``:

        * ``full`` -- every eligible rule, paired with its fast-path flag,
          for payload packets that might involve pattern rules;
        * ``header_only`` -- the non-prefiltered subset, walked for
          payload-less packets (pattern rules never fire on those) and for
          payload packets the guard proves pattern-rule-free;
        * ``guard`` -- ``None`` when the bucket has no prefiltered rules,
          else ``(gate, span, tables)`` deciding whether an empty scan
          result lets the hot loop skip every prefiltered call: it may
          unless some stream rule holds flow state (``tables`` are their
          live ``_streams`` dicts) or a pattern could start inside the
          packet's would-be carried tail (``gate`` is the union of the
          stream rules' first-byte classes, searched over the trailing
          ``span`` bytes -- a superset of each rule's own store gate, so
          a combined miss implies every per-rule store is a no-op).
        """
        flag_bits = key & 0x3F
        sport = (key >> 6) & 0x1FFFF
        dport = (key >> 23) & 0x1FFFF
        proto = _PROTOS[key >> 40]
        sport = -1 if sport == 0x10000 else sport
        dport = -1 if dport == 0x10000 else dport
        s = self._sensitivity
        bucket = []
        for rule in self.rules:
            if s < rule.min_sensitivity:
                continue
            rule_proto, rule_dports, rule_ports, rule_flags = \
                rule.dispatch_constraints()
            if rule_proto is not None and proto is not rule_proto:
                continue
            if rule_dports is not None and dport not in rule_dports:
                continue
            if rule_ports is not None and dport not in rule_ports \
                    and sport not in rule_ports:
                continue
            if rule_flags is not None \
                    and (flag_bits & int(rule_flags)) != int(rule_flags):
                continue
            # exact-type check: a subclass overriding match() must not be
            # silently routed through the inherited prefiltered path
            if type(rule) in (PayloadPatternRule, StreamPatternRule):
                bucket.append((rule.match_prefiltered, True))
            else:
                bucket.append((rule.match, False))
        stream_rules = [fn.__self__ for fn, pref in bucket
                        if pref and type(fn.__self__) is StreamPatternRule]
        if any(pref for _, pref in bucket):
            # tail_len 0 means single-byte patterns: no tail is ever
            # carried, so such rules need no store gate either
            stream_rules = [r for r in stream_rules if r._tail_len]
            if stream_rules:
                first = sorted({p[0] for r in stream_rules for p in r.patterns})
                gate = re.compile(
                    b"[" + b"".join(re.escape(bytes((b,))) for b in first)
                    + b"]")
                span = max(r._tail_len for r in stream_rules)
                guard = (gate, span, tuple(r._streams for r in stream_rules))
            else:
                guard = (None, 0, ())
        else:
            guard = None
        result = (tuple(bucket),
                  tuple(fn for fn, pref in bucket if not pref),
                  guard)
        self._dispatch[key] = result
        return result

    def dispatch_rules(self, pkt: Packet) -> List[SignatureRule]:
        """The rules the indexed kernel would visit for ``pkt`` (testing /
        introspection aid)."""
        if self._linear:
            return [r for r in self.rules
                    if self._sensitivity >= r.min_sensitivity]
        bucket = self._dispatch.get(self._key(pkt))
        if bucket is None:
            bucket = self._build_bucket(self._key(pkt))
        return [fn.__self__ for fn, _ in bucket[0]]

    def _key(self, pkt: Packet) -> int:
        """The packet's dispatch key: proto id, normalized ports (any port
        outside the rules' interest sets collapses to the ``any`` value
        0x10000), and masked flag bits, packed into one int -- int keys
        hash at C speed, tuple keys do not."""
        return ((pkt.proto_id << 40)
                | ((pkt.dport if pkt.dport in self._dports_of_interest
                    else 0x10000) << 23)
                | ((pkt.sport if pkt.sport in self._sports_of_interest
                    else 0x10000) << 6)
                | (pkt.flag_bits & self._flags_mask))

    # ------------------------------------------------------------------
    def inspect(self, pkt: Packet, now: float) -> List[RuleMatch]:
        """Run every enabled rule that can fire against the packet."""
        self.packets_inspected += 1
        s = self._sensitivity
        # hits are rare: plain .append on the hit path beats paying a
        # bound-method binding on every packet
        hits: List[RuleMatch] = []
        if self._linear:
            for rule in self.rules:
                if s < rule.min_sensitivity:
                    continue
                m = rule.match(pkt, now, s)
                if m is not None:
                    hits.append(m)
        else:
            dispatch, dports, sports, flags_mask, scan = self._hot
            key = ((pkt.proto_id << 40)
                   | ((pkt.dport if pkt.dport in dports else 0x10000) << 23)
                   | ((pkt.sport if pkt.sport in sports else 0x10000) << 6)
                   | (pkt.flag_bits & flags_mask))
            bucket = dispatch.get(key)
            if bucket is None:
                bucket = self._build_bucket(key)
            payload = pkt.payload
            guard = bucket[2]
            if payload is None or guard is None:
                # pattern rules never fire on logical payloads (and touch
                # no stream state for them): walk the header-only bucket
                for fn in bucket[1]:
                    m = fn(pkt, now, s)
                    if m is not None:
                        hits.append(m)
            else:
                matched = scan(payload)
                skip = False
                if not matched:
                    # nothing matched anywhere in the payload; prefiltered
                    # calls are no-ops unless stream state is in play
                    gate, span, tables = guard
                    if gate is None or pkt.proto is not Protocol.TCP:
                        skip = True
                    else:
                        plen = len(payload)
                        if gate.search(
                                payload,
                                plen - span if plen > span else 0) is None:
                            # suffix gate miss: no stream rule will store a
                            # tail off this packet.  The only remaining
                            # side effect would be on an existing entry for
                            # this flow; with the flow key absent from
                            # every table, each prefiltered call is a
                            # provable no-op.
                            skip = True
                            flow = (pkt.src.value, pkt.sport,
                                    pkt.dst.value, pkt.dport)
                            for table in tables:
                                if flow in table:
                                    skip = False
                                    break
                if skip:
                    for fn in bucket[1]:
                        m = fn(pkt, now, s)
                        if m is not None:
                            hits.append(m)
                else:
                    for fn, prefiltered in bucket[0]:
                        if prefiltered:
                            m = fn(pkt, now, s, matched)
                        else:
                            m = fn(pkt, now, s)
                        if m is not None:
                            hits.append(m)
        self.matches += len(hits)
        return hits

    def reset(self) -> None:
        for rule in self.rules:
            rule.reset()
        self.packets_inspected = 0
        self.matches = 0

    @property
    def rule_count(self) -> int:
        return len(self.rules)


# ----------------------------------------------------------------------
# The shipped rule set (what a 2002 commercial signature IDS "knows").
# ----------------------------------------------------------------------

#: Destination ports regarded as ordinary services on the protected nets.
_KNOWN_SERVICE_PORTS = frozenset({21, 22, 23, 25, 53, 80, 110, 143, 443,
                                  7000, 7001, 8000})

_SYN_BITS = int(TcpFlags.SYN)
_SYN_ACK_BITS = int(TcpFlags.SYN | TcpFlags.ACK)


def default_ruleset(payload_inspection: bool = True) -> List[SignatureRule]:
    """The stock rule set shipped with the simulated signature products.

    ``payload_inspection=False`` yields a header-only variant (the class of
    IDS lesson 1 says random-data floods *can* load-test).
    """
    from ..attacks.exploits import CGI_PROBE_PATHS, OVERFLOW_MARKER

    # bare-SYN test on the int mirror of the flag field: these lambdas run
    # per packet, where IntFlag operations are measurably slow
    syn_ack = int(TcpFlags.SYN | TcpFlags.ACK)
    syn = int(TcpFlags.SYN)

    rules: List[SignatureRule] = [
        # --- reconnaissance -------------------------------------------
        ThresholdRule(
            "syn-portscan",
            key_fn=lambda p: p.src.value if (
                p.proto is Protocol.TCP
                and p.flag_bits & syn_ack == syn) else None,
            value_fn=lambda p: p.dport,
            threshold=40, window_s=5.0, proto=Protocol.TCP,
            flags=TcpFlags.SYN,
            category="portscan", severity=Severity.MEDIUM),
        ThresholdRule(
            "icmp-sweep",
            key_fn=lambda p: p.src.value if p.proto is Protocol.ICMP else None,
            value_fn=lambda p: p.dst.value,
            threshold=8, window_s=5.0, proto=Protocol.ICMP,
            category="host-sweep", severity=Severity.LOW),
        # --- flooding --------------------------------------------------
        ThresholdRule(
            "syn-flood",
            key_fn=lambda p: p.dst.value if (
                p.proto is Protocol.TCP
                and p.flag_bits & syn_ack == syn) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=600, window_s=2.0, proto=Protocol.TCP,
            flags=TcpFlags.SYN,
            category="syn-flood", severity=Severity.HIGH),
        ThresholdRule(
            "udp-flood",
            key_fn=lambda p: p.dst.value if p.proto is Protocol.UDP
            and p.dport not in (7000,) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=1500, window_s=2.0, proto=Protocol.UDP,
            category="udp-flood", severity=Severity.HIGH),
        # --- brute force -----------------------------------------------
        ThresholdRule(
            "telnet-bruteforce",
            key_fn=lambda p: (p.src.value, p.dst.value) if (
                p.proto is Protocol.TCP and p.dport == 23) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=60, window_s=10.0, proto=Protocol.TCP, dports=(23,),
            category="brute-force", severity=Severity.HIGH),
    ]
    if payload_inspection:
        rules += [
            # stream-aware: a marker split across TCP segments still matches
            StreamPatternRule(
                "shellcode-marker", [OVERFLOW_MARKER, b"\x90\x90\x90\x90\x90\x90"],
                category="overflow-exploit", severity=Severity.CRITICAL),
            StreamPatternRule(
                "cgi-probes",
                [p.split("?")[0].encode("ascii") for p in CGI_PROBE_PATHS],
                ports=[80],
                category="cgi-exploit", severity=Severity.HIGH),
            PayloadPatternRule(
                "login-failure-storm", [b"Login incorrect"],
                ports=[23],
                category="brute-force", severity=Severity.MEDIUM,
                base_score=0.6),
            # --- low-specificity "noisy" rules (high sensitivity only) --
            _LongUriRule(),
        ]
        rules.append(_OddPortRule())
    else:
        rules.append(_OddPortRule())
    return rules


class _LongUriRule(SignatureRule):
    """Noisy rule: flag HTTP requests with unusually long URIs.

    The URI-length cutoff shrinks as sensitivity rises, so aggressive
    tunings flag a tail of perfectly benign requests -- a realistic
    false-positive source.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("long-uri", category="suspicious-http",
                         severity=Severity.LOW, min_sensitivity=0.55,
                         base_score=0.35)

    def dispatch_constraints(self):
        return (Protocol.TCP, frozenset((80,)), None, None)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.payload is None or pkt.proto is not Protocol.TCP or pkt.dport != 80:
            return None
        if not pkt.payload.startswith((b"GET ", b"POST ", b"HEAD ")):
            return None
        try:
            uri = pkt.payload.split(b" ", 2)[1]
        except IndexError:
            return None
        cutoff = int(120 - 90 * sensitivity)  # 120 chars at s=0 .. 30 at s=1
        if len(uri) > cutoff:
            return self._hit(detail=f"uri_len={len(uri)}")
        return None


class _OddPortRule(SignatureRule):
    """Noisy rule: TCP SYN to a non-standard service port.

    Catches the novel exploit's port 31337 -- but at high sensitivity also
    fires on benign ephemeral-port traffic.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("odd-port-service", category="suspicious-connection",
                         severity=Severity.LOW, min_sensitivity=0.7,
                         base_score=0.3)

    def dispatch_constraints(self):
        return (Protocol.TCP, None, None, TcpFlags.SYN)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.proto is not Protocol.TCP:
            return None
        if pkt.flag_bits & _SYN_ACK_BITS != _SYN_BITS:  # bare SYN only
            return None
        if pkt.dport in _KNOWN_SERVICE_PORTS:
            return None
        # At the highest sensitivities even high ephemeral ports are flagged;
        # lower sensitivities only mind privileged/odd low ports.
        cutoff = 1024 if sensitivity < 0.85 else 65536
        if pkt.dport < cutoff or pkt.dport in (31337, 12345, 27374):
            return self._hit(detail=f"dport={pkt.dport}")
        return None
