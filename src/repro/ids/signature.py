"""Signature-based detection engine.

"A signature-based IDS attempts to detect patterns in network traffic that
are characteristic of known attacks" (section 2.1).  The engine evaluates a
rule set against each packet (and light per-source state for threshold
rules).  Like its commercial counterparts it only knows *previously known*
attacks: the shipped :func:`default_ruleset` covers the attack library's
known vectors but, by construction, not the ``novel=True`` ones.

Sensitivity
-----------
The engine exposes the paper's *Adjustable Sensitivity* metric: a value in
[0, 1].  Raising it lowers threshold-rule trigger counts and enables the
low-specificity "noisy" rules (which occasionally fire on benign traffic) --
trading false negatives for false positives exactly as Figure 4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.packet import Packet, Protocol, TcpFlags
from .alert import Severity

__all__ = [
    "RuleMatch",
    "SignatureRule",
    "PayloadPatternRule",
    "StreamPatternRule",
    "HeaderRule",
    "ThresholdRule",
    "SignatureEngine",
    "default_ruleset",
]


@dataclass(frozen=True)
class RuleMatch:
    """The outcome of a rule firing on a packet."""

    rule: str
    category: str
    severity: Severity
    score: float
    detail: str = ""


class SignatureRule:
    """Base rule.

    Parameters
    ----------
    name / category / severity:
        Identification and the threat class reported on match.
    min_sensitivity:
        The rule is evaluated only when the engine sensitivity is at least
        this value; low-specificity rules carry high values so they only
        fire on aggressive tunings.
    """

    def __init__(
        self,
        name: str,
        category: str,
        severity: Severity = Severity.MEDIUM,
        min_sensitivity: float = 0.0,
        base_score: float = 0.9,
    ) -> None:
        if not 0.0 <= min_sensitivity <= 1.0:
            raise ConfigurationError("min_sensitivity must be in [0, 1]")
        self.name = name
        self.category = category
        self.severity = severity
        self.min_sensitivity = float(min_sensitivity)
        self.base_score = float(base_score)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-rule state (between evaluation runs)."""

    def _hit(self, detail: str = "") -> RuleMatch:
        return RuleMatch(self.name, self.category, self.severity,
                         self.base_score, detail)


class PayloadPatternRule(SignatureRule):
    """Match any of a set of byte patterns in the packet payload.

    Only materialized payloads are inspected -- a deliberate property: this
    is the class of rule that makes payload realism matter (lesson 1).
    """

    def __init__(
        self,
        name: str,
        patterns: Sequence[bytes],
        ports: Optional[Sequence[int]] = None,
        proto: Optional[Protocol] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if not patterns:
            raise ConfigurationError("patterns must be non-empty")
        self.patterns = [bytes(p) for p in patterns]
        self.ports = frozenset(int(p) for p in ports) if ports is not None else None
        self.proto = proto

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.payload is None:
            return None
        if self.proto is not None and pkt.proto is not self.proto:
            return None
        if self.ports is not None and pkt.dport not in self.ports and pkt.sport not in self.ports:
            return None
        for pattern in self.patterns:
            if pattern in pkt.payload:
                return self._hit(detail=f"pattern {pattern[:16]!r}")
        return None


class StreamPatternRule(SignatureRule):
    """Match byte patterns across TCP segment boundaries.

    Per-packet rules miss an attack whose signature straddles two segments
    (an easy evasion).  This rule keeps a bounded per-direction rolling
    buffer per flow: each segment is appended to the retained tail of the
    stream so any pattern shorter than the tail cannot slip through a
    segmentation seam.  Out-of-order delivery within a flow is handled by
    sequencing on TCP sequence numbers when they are contiguous and
    falling back to arrival order otherwise (the common fast path of
    commercial engines; full reassembly lives in
    :class:`repro.net.tcp.StreamReassembler` for analyzers that need it).
    """

    def __init__(
        self,
        name: str,
        patterns: Sequence[bytes],
        ports: Optional[Sequence[int]] = None,
        max_flows: int = 8192,
        window_s: float = 30.0,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if not patterns:
            raise ConfigurationError("patterns must be non-empty")
        self.patterns = [bytes(p) for p in patterns]
        self.ports = frozenset(int(p) for p in ports) if ports is not None else None
        self.max_flows = int(max_flows)
        self.window_s = float(window_s)
        self._tail_len = max(len(p) for p in self.patterns) - 1
        # (src, sport, dst, dport) -> [last_seen, expected_seq, tail bytes]
        self._streams: Dict[tuple, list] = {}

    def reset(self) -> None:
        self._streams.clear()

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.payload is None:
            return None
        if self.ports is not None and pkt.dport not in self.ports \
                and pkt.sport not in self.ports:
            return None
        if pkt.proto is not Protocol.TCP:
            # datagrams have no stream: plain per-packet matching
            for pattern in self.patterns:
                if pattern in pkt.payload:
                    return self._hit(detail=f"pattern {pattern[:16]!r}")
            return None
        key = (pkt.src.value, pkt.sport, pkt.dst.value, pkt.dport)
        state = self._streams.get(key)
        if state is None or now - state[0] > self.window_s:
            if state is None and len(self._streams) >= self.max_flows:
                self._evict(now)
            state = [now, None, b""]
            self._streams[key] = state
        state[0] = now
        expected_seq = state[1]
        if expected_seq is not None and pkt.seq != expected_seq:
            # gap or reordering: restart the window at this segment
            state[2] = b""
        haystack = state[2] + pkt.payload
        state[1] = pkt.seq + len(pkt.payload)
        state[2] = haystack[-self._tail_len:] if self._tail_len else b""
        for pattern in self.patterns:
            if pattern in haystack:
                state[2] = b""  # one hit per occurrence window
                return self._hit(detail=f"stream pattern {pattern[:16]!r}")
        return None

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        dead = [k for k, s in self._streams.items() if s[0] < cutoff]
        if dead:
            for k in dead:
                del self._streams[k]
        else:  # all fresh: drop the oldest
            oldest = min(self._streams, key=lambda k: self._streams[k][0])
            del self._streams[oldest]


class HeaderRule(SignatureRule):
    """Match on header fields only (proto, ports, flags, size)."""

    def __init__(
        self,
        name: str,
        proto: Optional[Protocol] = None,
        dports: Optional[Sequence[int]] = None,
        flags: Optional[TcpFlags] = None,
        min_payload: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        self.proto = proto
        self.dports = frozenset(int(p) for p in dports) if dports is not None else None
        self.flags = flags
        self.min_payload = min_payload
        self.predicate = predicate

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if self.proto is not None and pkt.proto is not self.proto:
            return None
        if self.dports is not None and pkt.dport not in self.dports:
            return None
        if self.flags is not None and (pkt.flags & self.flags) != self.flags:
            return None
        if self.min_payload is not None and pkt.payload_len < self.min_payload:
            return None
        if self.predicate is not None and not self.predicate(pkt):
            return None
        return self._hit()


class ThresholdRule(SignatureRule):
    """Fire when a keyed event count exceeds a threshold within a window.

    This is the portscan-preprocessor family: ``key_fn`` buckets events
    (e.g. by source address), ``value_fn`` extracts the counted item
    (``None`` to skip the packet; a hashable to count *distinct* items, or
    the sentinel :attr:`COUNT` to count occurrences).

    The effective threshold scales with sensitivity: at 0 it doubles, at 1
    it halves -- the knob the Figure-4 sweep turns.
    """

    COUNT = object()

    def __init__(
        self,
        name: str,
        key_fn: Callable[[Packet], Optional[object]],
        value_fn: Callable[[Packet], Optional[object]],
        threshold: int,
        window_s: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(name, **kwargs)
        if threshold < 1:
            raise ConfigurationError("threshold must be >= 1")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.key_fn = key_fn
        self.value_fn = value_fn
        self.threshold = int(threshold)
        self.window_s = float(window_s)
        # key -> (window_start, set-or-int, fired_in_window)
        self._state: Dict[object, list] = {}

    def reset(self) -> None:
        self._state.clear()

    def effective_threshold(self, sensitivity: float) -> int:
        return max(1, int(round(self.threshold * (2.0 ** (1.0 - 2.0 * sensitivity)))))

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        key = self.key_fn(pkt)
        if key is None:
            return None
        value = self.value_fn(pkt)
        if value is None:
            return None
        state = self._state.get(key)
        if state is None or now - state[0] > self.window_s:
            state = [now, (0 if value is ThresholdRule.COUNT else set()), False]
            self._state[key] = state
        if value is ThresholdRule.COUNT:
            state[1] += 1
            count = state[1]
        else:
            state[1].add(value)
            count = len(state[1])
        if count >= self.effective_threshold(sensitivity) and not state[2]:
            state[2] = True  # one alert per key per window
            return self._hit(detail=f"count={count} key={key}")
        return None


class SignatureEngine:
    """Evaluate a rule set against a packet stream.

    Parameters
    ----------
    rules:
        The rule set; order is preserved in match reporting.
    sensitivity:
        Engine-wide sensitivity in [0, 1]; see module docstring.
    """

    def __init__(self, rules: Sequence[SignatureRule], sensitivity: float = 0.5) -> None:
        self.rules = list(rules)
        self.sensitivity = sensitivity
        self.packets_inspected = 0
        self.matches = 0

    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        self._sensitivity = float(value)

    def inspect(self, pkt: Packet, now: float) -> List[RuleMatch]:
        """Run every enabled rule against the packet."""
        self.packets_inspected += 1
        hits: List[RuleMatch] = []
        s = self._sensitivity
        for rule in self.rules:
            if s < rule.min_sensitivity:
                continue
            m = rule.match(pkt, now, s)
            if m is not None:
                hits.append(m)
        self.matches += len(hits)
        return hits

    def reset(self) -> None:
        for rule in self.rules:
            rule.reset()
        self.packets_inspected = 0
        self.matches = 0

    @property
    def rule_count(self) -> int:
        return len(self.rules)


# ----------------------------------------------------------------------
# The shipped rule set (what a 2002 commercial signature IDS "knows").
# ----------------------------------------------------------------------

#: Destination ports regarded as ordinary services on the protected nets.
_KNOWN_SERVICE_PORTS = frozenset({21, 22, 23, 25, 53, 80, 110, 143, 443,
                                  7000, 7001, 8000})


def default_ruleset(payload_inspection: bool = True) -> List[SignatureRule]:
    """The stock rule set shipped with the simulated signature products.

    ``payload_inspection=False`` yields a header-only variant (the class of
    IDS lesson 1 says random-data floods *can* load-test).
    """
    from ..attacks.exploits import CGI_PROBE_PATHS, OVERFLOW_MARKER

    rules: List[SignatureRule] = [
        # --- reconnaissance -------------------------------------------
        ThresholdRule(
            "syn-portscan",
            key_fn=lambda p: p.src.value if (
                p.proto is Protocol.TCP
                and p.has_flag(TcpFlags.SYN)
                and not p.has_flag(TcpFlags.ACK)) else None,
            value_fn=lambda p: p.dport,
            threshold=40, window_s=5.0,
            category="portscan", severity=Severity.MEDIUM),
        ThresholdRule(
            "icmp-sweep",
            key_fn=lambda p: p.src.value if p.proto is Protocol.ICMP else None,
            value_fn=lambda p: p.dst.value,
            threshold=8, window_s=5.0,
            category="host-sweep", severity=Severity.LOW),
        # --- flooding --------------------------------------------------
        ThresholdRule(
            "syn-flood",
            key_fn=lambda p: p.dst.value if (
                p.proto is Protocol.TCP
                and p.has_flag(TcpFlags.SYN)
                and not p.has_flag(TcpFlags.ACK)) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=600, window_s=2.0,
            category="syn-flood", severity=Severity.HIGH),
        ThresholdRule(
            "udp-flood",
            key_fn=lambda p: p.dst.value if p.proto is Protocol.UDP
            and p.dport not in (7000,) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=1500, window_s=2.0,
            category="udp-flood", severity=Severity.HIGH),
        # --- brute force -----------------------------------------------
        ThresholdRule(
            "telnet-bruteforce",
            key_fn=lambda p: (p.src.value, p.dst.value) if (
                p.proto is Protocol.TCP and p.dport == 23) else None,
            value_fn=lambda p: ThresholdRule.COUNT,
            threshold=60, window_s=10.0,
            category="brute-force", severity=Severity.HIGH),
    ]
    if payload_inspection:
        rules += [
            # stream-aware: a marker split across TCP segments still matches
            StreamPatternRule(
                "shellcode-marker", [OVERFLOW_MARKER, b"\x90\x90\x90\x90\x90\x90"],
                category="overflow-exploit", severity=Severity.CRITICAL),
            StreamPatternRule(
                "cgi-probes",
                [p.split("?")[0].encode("ascii") for p in CGI_PROBE_PATHS],
                ports=[80],
                category="cgi-exploit", severity=Severity.HIGH),
            PayloadPatternRule(
                "login-failure-storm", [b"Login incorrect"],
                ports=[23],
                category="brute-force", severity=Severity.MEDIUM,
                base_score=0.6),
            # --- low-specificity "noisy" rules (high sensitivity only) --
            _LongUriRule(),
        ]
        rules.append(_OddPortRule())
    else:
        rules.append(_OddPortRule())
    return rules


class _LongUriRule(SignatureRule):
    """Noisy rule: flag HTTP requests with unusually long URIs.

    The URI-length cutoff shrinks as sensitivity rises, so aggressive
    tunings flag a tail of perfectly benign requests -- a realistic
    false-positive source.
    """

    def __init__(self) -> None:
        super().__init__("long-uri", category="suspicious-http",
                         severity=Severity.LOW, min_sensitivity=0.55,
                         base_score=0.35)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.payload is None or pkt.proto is not Protocol.TCP or pkt.dport != 80:
            return None
        if not pkt.payload.startswith((b"GET ", b"POST ", b"HEAD ")):
            return None
        try:
            uri = pkt.payload.split(b" ", 2)[1]
        except IndexError:
            return None
        cutoff = int(120 - 90 * sensitivity)  # 120 chars at s=0 .. 30 at s=1
        if len(uri) > cutoff:
            return self._hit(detail=f"uri_len={len(uri)}")
        return None


class _OddPortRule(SignatureRule):
    """Noisy rule: TCP SYN to a non-standard service port.

    Catches the novel exploit's port 31337 -- but at high sensitivity also
    fires on benign ephemeral-port traffic.
    """

    def __init__(self) -> None:
        super().__init__("odd-port-service", category="suspicious-connection",
                         severity=Severity.LOW, min_sensitivity=0.7,
                         base_score=0.3)

    def match(self, pkt: Packet, now: float, sensitivity: float) -> Optional[RuleMatch]:
        if pkt.proto is not Protocol.TCP:
            return None
        if not (pkt.has_flag(TcpFlags.SYN) and not pkt.has_flag(TcpFlags.ACK)):
            return None
        if pkt.dport in _KNOWN_SERVICE_PORTS:
            return None
        # At the highest sensitivities even high ephemeral ports are flagged;
        # lower sensitivities only mind privileged/odd low ports.
        cutoff = 1024 if sensitivity < 0.85 else 65536
        if pkt.dport < cutoff or pkt.dport in (31337, 12345, 27374):
            return self._hit(detail=f"dport={pkt.dport}")
        return None
