"""IDS assembly: wiring the five subprocesses into one deployment.

:class:`IdsPipeline` owns the components of Figure 1, wires them with the
standard data path (balancer -> sensors -> analyzers -> monitor [-> manager])
and validates the result against the Figure-2 cardinalities.

Sensing/analysis separation (the A2 ablation) is a wiring property:

* ``separated=True`` -- each detection travels to its analyzer over the
  management LAN: it arrives ``emit_latency_s`` later and costs
  ``detection_msg_bytes`` of network overhead ("separation adds network
  overhead", section 2.2), but analysis consumes none of the sensor budget.
* ``separated=False`` -- the combined 1:1 engine: analysis runs inside the
  sensor's processing budget (``analysis_ops`` per detection extend the
  sensor's inspection backlog), with zero added latency or network bytes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import CardinalityError, ConfigurationError
from ..net.packet import Packet
from ..net.trace import Trace
from ..sim.engine import Engine
from .alert import Detection
from .analyzer import Analyzer
from .component import Component, validate_wiring
from .console import ManagementConsole
from .loadbalancer import LoadBalancer
from .monitor import Monitor
from .sensor import Sensor

__all__ = ["IdsPipeline"]


class IdsPipeline:
    """A fully wired network-IDS deployment.

    Parameters
    ----------
    engine:
        Simulation engine.
    sensors / analyzers / monitor:
        The essential subprocesses (section 2.2).
    balancer:
        Optional load-balancing subprocess (1c side); when absent, a single
        sensor receives the tap directly (multiple sensors *require* a
        balancer -- static placement counts as one).
    console:
        Optional management subprocess (1c side).
    separated / emit_latency_s / detection_msg_bytes / analysis_ops:
        Sensing/analysis separation model (see module docstring).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        sensors: Sequence[Sensor],
        analyzers: Sequence[Analyzer],
        monitor: Monitor,
        balancer: Optional[LoadBalancer] = None,
        console: Optional[ManagementConsole] = None,
        separated: bool = False,
        emit_latency_s: float = 2e-3,
        detection_msg_bytes: int = 300,
        analysis_ops: float = 8000.0,
    ) -> None:
        if not sensors:
            raise ConfigurationError("pipeline needs at least one sensor")
        if not analyzers:
            raise ConfigurationError("pipeline needs at least one analyzer")
        if balancer is None and len(sensors) > 1:
            raise ConfigurationError(
                "multiple sensors require a load balancer (static placement "
                "counts as one; see loadbalancer.StaticPlacementBalancer)")
        self.engine = engine
        self.name = name
        self.sensors = list(sensors)
        self.analyzers = list(analyzers)
        self.monitor = monitor
        self.balancer = balancer
        self.console = console
        self.separated = separated
        self.emit_latency_s = float(emit_latency_s)
        self.detection_msg_bytes = int(detection_msg_bytes)
        self.analysis_ops = float(analysis_ops)

        self.network_overhead_bytes = 0
        self.ingested = 0
        self._wired = False
        self._data_links: List[Tuple[Component, Component]] = []
        self._mgmt_links: List[Tuple[Component, Component]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def wire(self) -> "IdsPipeline":
        """Connect all components and validate cardinalities."""
        if self._wired:
            return self
        links: List[Tuple[Component, Component]] = []

        if self.balancer is not None:
            for sensor in self.balancer.sensors:
                links.append((self.balancer, sensor))

        # sensors -> analyzers: round-robin M:M (every sensor can reach every
        # analyzer; Sensor.add_sink round-robins between them)
        for sensor in self.sensors:
            for analyzer in self.analyzers:
                sensor.add_sink(self._make_sink(sensor, analyzer))
                links.append((sensor, analyzer))
            sensor.set_error_sink(self.monitor.report_error)

        for analyzer in self.analyzers:
            analyzer.set_sink(self.monitor.receive)
            links.append((analyzer, self.monitor))

        mgmt: List[Tuple[Component, Component]] = []
        if self.console is not None:
            links.append((self.monitor, self.console))
            self.monitor.set_responder(self.console.respond)
            for comp in (*self.sensors, *self.analyzers, self.monitor,
                         *([self.balancer] if self.balancer else [])):
                self.console.manage(comp)
                mgmt.append((self.console, comp))

        components = [*self.sensors, *self.analyzers, self.monitor]
        if self.balancer is not None:
            components.append(self.balancer)
        if self.console is not None:
            components.append(self.console)
        validate_wiring(components, links, mgmt)
        self._data_links = links
        self._mgmt_links = mgmt
        self._wired = True
        return self

    def _make_sink(self, sensor: Sensor, analyzer: Analyzer) -> Callable[[Detection], None]:
        if self.separated:
            def sink(det: Detection) -> None:
                self.network_overhead_bytes += self.detection_msg_bytes
                self.engine.schedule(self.emit_latency_s, analyzer.receive, det)
            return sink

        def sink(det: Detection) -> None:
            # combined engine: analysis extends the sensor's busy horizon
            now = self.engine.now
            sensor._busy_until = max(now, sensor._busy_until) + (
                self.analysis_ops / sensor.ops_rate)
            sensor.busy_ops += self.analysis_ops
            analyzer.receive(det)
        return sink

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def ingest(self, pkt: Packet) -> None:
        """Entry point for tapped/mirrored traffic."""
        if not self._wired:
            raise ConfigurationError("pipeline not wired; call wire() first")
        self.ingested += 1
        if self.balancer is not None:
            self.balancer.ingest(pkt)
        else:
            self.sensors[0].ingest(pkt)

    # ------------------------------------------------------------------
    # training passthrough (anomaly-capable detectors)
    # ------------------------------------------------------------------
    def train_on(self, trace: Trace) -> int:
        """Feed a benign trace to every trainable detector; returns how
        many detectors were trained.  Call :meth:`freeze` afterwards."""
        trainable = [s.detector for s in self.sensors
                     if hasattr(s.detector, "train")]
        for t, pkt in trace:
            for det in trainable:
                det.train(pkt, t)
        return len(trainable)

    def freeze(self) -> None:
        for sensor in self.sensors:
            if hasattr(sensor.detector, "freeze"):
                sensor.detector.freeze()

    def set_sensitivity(self, sensitivity: float) -> None:
        """Retune every sensor (directly, or via the console if present)."""
        if self.console is not None:
            self.console.push_sensitivity(sensitivity)
        else:
            for sensor in self.sensors:
                sensor.detector.sensitivity = sensitivity

    def reset_detection_state(self) -> None:
        """Clear per-run detector state (keeps trained baselines)."""
        for sensor in self.sensors:
            sensor.detector.reset()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def packets_dropped(self) -> int:
        dropped = sum(s.dropped_overload + s.dropped_down for s in self.sensors)
        if self.balancer is not None:
            dropped += self.balancer.dropped
        return dropped

    @property
    def packets_processed(self) -> int:
        return sum(s.processed for s in self.sensors)

    @property
    def any_sensor_down(self) -> bool:
        return any(not s.up for s in self.sensors)

    @property
    def crash_count(self) -> int:
        return sum(s.crashes for s in self.sensors)

    def describe(self) -> str:
        lb = self.balancer.strategy if self.balancer else "none"
        return (
            f"IdsPipeline {self.name!r}: {len(self.sensors)} sensor(s), "
            f"{len(self.analyzers)} analyzer(s), balancer={lb}, "
            f"console={'yes' if self.console else 'no'}, "
            f"{'separated' if self.separated else 'combined'} analysis")
