"""Analysis subprocess: detections -> classified, correlated alerts.

Section 2.2: "Analyzers determine the threat level of the raw data collected
by the sensors ... Primary analysis determines threat severity.  Secondary
analysis determines scope, intent, or frequency of the threat.  Accurate
analysis may require storage of a significant amount of historical data ...
Good analysis can correlate one attack with another."

The analyzer here performs:

* **primary analysis** -- deduplicate bursts of identical detections
  (same category + source within ``dedup_window_s``) into single alerts with
  a count, and promote severity when a burst is large;
* **secondary analysis** (optional, ``correlation=True``) -- link alerts
  from the same source across categories into a correlation id (one
  "campaign"), the *Threat Correlation* capability of Table 3's companion
  list;
* **storage accounting** -- bytes of historical context retained, feeding
  the *Data Storage* architectural metric.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.engine import Engine
from .alert import Alert, Detection, Severity
from .component import Component, Subprocess

__all__ = ["Analyzer"]

#: storage cost (bytes) to retain one detection of history
_DETECTION_RECORD_BYTES = 96


class Analyzer(Component):
    """Classify and correlate sensor detections into alerts.

    Parameters
    ----------
    engine:
        Simulation clock source.
    dedup_window_s:
        Detections with the same (category, src) inside this window fold
        into one alert.
    burst_promote:
        Detection count in one window at which severity is promoted one
        step ("frequency of the threat").
    correlation:
        Enable secondary analysis (cross-category campaign linking).
    analysis_delay_s:
        Processing latency between receiving a detection and emitting the
        alert; contributes to the *Timeliness* metric.
    history_limit:
        Maximum retained detection records (storage bound).
    """

    kind = Subprocess.ANALYZER

    #: bounded backpressure queue while stalled; detections beyond it are
    #: shed (with accounting) rather than buffered without limit
    STALL_QUEUE_LIMIT = 10_000

    def __init__(
        self,
        engine: Engine,
        name: str,
        dedup_window_s: float = 5.0,
        burst_promote: int = 20,
        correlation: bool = True,
        analysis_delay_s: float = 0.05,
        history_limit: int = 100_000,
    ) -> None:
        super().__init__(name)
        if dedup_window_s <= 0:
            raise ConfigurationError("dedup_window_s must be positive")
        if burst_promote < 2:
            raise ConfigurationError("burst_promote must be >= 2")
        if analysis_delay_s < 0:
            raise ConfigurationError("analysis_delay_s must be >= 0")
        self.engine = engine
        self.dedup_window_s = float(dedup_window_s)
        self.burst_promote = int(burst_promote)
        self.correlation = correlation
        self.analysis_delay_s = float(analysis_delay_s)
        self.history_limit = int(history_limit)

        self._sink: Optional[Callable[[Alert], None]] = None
        # (category, src) -> [window_start, count, emitted_alert?]
        self._windows: Dict[Tuple[str, int], list] = {}
        # src -> correlation id
        self._campaigns: Dict[int, str] = {}
        self._campaign_categories: Dict[str, set] = {}
        self._campaign_counter = 0

        self.detections_received = 0
        self.alerts_emitted = 0
        self.history_records = 0
        self.history_evictions = 0

        # graceful-degradation state (dormant until a fault injector uses
        # the hooks below; clean runs never enter these paths)
        self.up = True
        self.stalled = False
        self.injected_failures = 0
        self.dropped_down = 0
        self.stalled_detections = 0
        self.shed_detections = 0
        self._stall_queue: List[Detection] = []

    # ------------------------------------------------------------------
    def set_sink(self, sink: Callable[[Alert], None]) -> None:
        """Attach the monitor-facing delivery callback (M:1)."""
        self._sink = sink

    # ------------------------------------------------------------------
    def receive(self, det: Detection) -> None:
        """Ingest one sensor detection."""
        self.detections_received += 1
        if not self.up:
            self.dropped_down += 1
            return
        if self.stalled:
            if len(self._stall_queue) >= self.STALL_QUEUE_LIMIT:
                self.shed_detections += 1  # bounded queue: shed, accounted
                return
            self._stall_queue.append(det)
            self.stalled_detections += 1
            return
        self._analyze(det)

    def _analyze(self, det: Detection) -> None:
        self._store(det)
        key = (det.category, det.src.value)
        now = det.time
        window = self._windows.get(key)
        if window is None or now - window[0] > self.dedup_window_s:
            window = [now, 0, False]
            self._windows[key] = window
        window[1] += 1
        count = window[1]
        if window[2] and count < self.burst_promote:
            return  # suppressed duplicate inside the window
        severity = det.severity
        if count >= self.burst_promote:
            severity = Severity(min(int(det.severity) + 1, int(Severity.CRITICAL)))
            if window[2] and count > self.burst_promote:
                return  # promoted alert already sent for this window
        window[2] = True

        correlation_id = self._correlate(det) if self.correlation else None
        alert = Alert(
            time=now + self.analysis_delay_s,
            analyzer=self.name,
            category=det.category,
            src=det.src,
            dst=det.dst,
            severity=severity,
            confidence=det.score,
            detections=count,
            correlation_id=correlation_id,
            detail=det.detail,
            truth_attack_id=det.truth_attack_id,
        )
        self._emit(alert)

    def _correlate(self, det: Detection) -> str:
        cid = self._campaigns.get(det.src.value)
        if cid is None:
            self._campaign_counter += 1
            cid = f"{self.name}-campaign-{self._campaign_counter}"
            self._campaigns[det.src.value] = cid
            self._campaign_categories[cid] = set()
        self._campaign_categories[cid].add(det.category)
        return cid

    def campaign_breadth(self, correlation_id: str) -> int:
        """Distinct threat categories linked under one campaign (scope)."""
        return len(self._campaign_categories.get(correlation_id, ()))

    def _store(self, det: Detection) -> None:
        if self.history_records >= self.history_limit:
            self.history_evictions += 1
            return
        self.history_records += 1

    @property
    def storage_bytes(self) -> int:
        """Historical context retained (Data Storage metric input)."""
        return self.history_records * _DETECTION_RECORD_BYTES

    def _emit(self, alert: Alert) -> None:
        if self._sink is None:
            return
        self.alerts_emitted += 1
        if self.analysis_delay_s > 0:
            self.engine.schedule_at(max(alert.time, self.engine.now),
                                    self._sink, alert)
        else:
            self._sink(alert)

    # ------------------------------------------------------------------
    # fault-injection hooks (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def force_fail(self) -> None:
        """Injected crash: incoming detections are dropped, and any
        backlog queued by an overlapping stall is lost with it."""
        if not self.up:
            return
        self.up = False
        self.injected_failures += 1
        if self._stall_queue:
            self.dropped_down += len(self._stall_queue)
            self._stall_queue.clear()

    def force_restore(self) -> None:
        self.up = True

    def stall(self) -> None:
        """Injected backpressure: detections queue (bounded) instead of
        being analyzed, until :meth:`resume` drains them."""
        self.stalled = True

    def resume(self) -> None:
        """End a stall and analyze the queued backlog in arrival order.

        Queued detections keep their original timestamps, so their alerts
        carry the *detection* time but reach the monitor only now -- the
        timeliness cost of the stall is therefore measurable."""
        if not self.stalled:
            return
        self.stalled = False
        backlog, self._stall_queue = self._stall_queue, []
        for det in backlog:
            self._analyze(det)
