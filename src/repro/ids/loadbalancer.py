"""Load-balancing subprocess (optional; 1c:M toward sensors).

Section 2.2: "Load balancing allows the IDS to efficiently utilize the
processing power of the distributed sensors for scalability ... Load
balancers typically must be aware of TCP sessions so they can consistently
send connection-oriented traffic to the appropriate sensor.  If an IDS has
no load-balancing component, the load may be statically spread out by
placing sensors in separate subnets.  Individual, statically placed sensors
may overload or starve."

Strategies (the A1 ablation):

* :class:`NoBalancer` -- every sensor sees everything (or: single sensor).
* :class:`StaticPlacementBalancer` -- partition by destination subnet, the
  "static methods such as placement" average-score anchor; uneven traffic
  overloads some sensors and starves others.
* :class:`HashBalancer` -- flow-hash spreading; session-consistent by
  construction, balanced for many flows.
* :class:`DynamicBalancer` -- least-backlog assignment with per-flow
  stickiness, the "intelligent, dynamic load balancing" high-score anchor.

All balancers model their own forwarding capacity and (if in-line) induced
latency, and count per-sensor assignment so the harness can score balance
evenness and scalability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.address import Subnet
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..sim.engine import Engine
from .component import Component, Subprocess
from .sensor import Sensor

__all__ = [
    "LoadBalancer",
    "NoBalancer",
    "StaticPlacementBalancer",
    "HashBalancer",
    "DynamicBalancer",
]


class LoadBalancer(Component):
    """Base class: receives packets, forwards each to one sensor.

    Parameters
    ----------
    capacity_pps:
        Forwarding limit; packets beyond it in a 1-second window are
        dropped (the balancer itself can bottleneck -- its *System
        Throughput* and *Scalability* metrics).
    induced_latency_s:
        Added delay per packet when the balancer is in-line; 0 models a
        mirrored (passive) deployment.
    """

    kind = Subprocess.LOAD_BALANCER
    strategy = "abstract"

    def __init__(
        self,
        engine: Engine,
        name: str,
        sensors: Sequence[Sensor],
        capacity_pps: Optional[float] = None,
        induced_latency_s: float = 0.0,
    ) -> None:
        super().__init__(name)
        if not sensors:
            raise ConfigurationError("load balancer needs at least one sensor")
        if induced_latency_s < 0:
            raise ConfigurationError("induced_latency_s must be >= 0")
        self.engine = engine
        self.sensors = list(sensors)
        self.capacity_pps = capacity_pps
        self.induced_latency_s = float(induced_latency_s)
        self.received = 0
        self.forwarded = 0
        self.dropped = 0
        self.per_sensor_count: Dict[str, int] = {s.name: 0 for s in self.sensors}
        # capacity window, anchored at the first counted packet; advances
        # in whole-window steps from that anchor (never snapped to the
        # integer clock, which would let a boundary-straddling burst pass
        # up to twice the capacity)
        self._window_start: Optional[float] = None
        self._window_count = 0
        # graceful-degradation state (dormant until a fault injector arms
        # it; clean runs never enter these paths)
        self.up = True
        self.failover = False
        self.failovers = 0
        self.recoveries = 0
        self.dropped_down = 0
        self.shed_no_sensor = 0

    # ------------------------------------------------------------------
    def ingest(self, pkt: Packet) -> None:
        self.received += 1
        if not self.up:
            self.dropped_down += 1
            return
        now = self.engine.now
        if self.capacity_pps is not None:
            if self._window_start is None:
                self._window_start = now
            elif now - self._window_start >= 1.0:
                # advance by whole windows so the phase stays anchored to
                # the traffic; the boundary packet counts in the window it
                # actually falls in
                self._window_start += float(int(now - self._window_start))
                self._window_count = 0
            self._window_count += 1
            if self._window_count > self.capacity_pps:
                self.dropped += 1
                return
        sensor = self.select(pkt)
        if self.failover and not sensor.up:
            sensor = self._failover_target(sensor)
            if sensor is None:
                self.shed_no_sensor += 1
                return
            self.failovers += 1
        self.per_sensor_count[sensor.name] += 1
        self.forwarded += 1
        if self.induced_latency_s > 0.0:
            self.engine.schedule(self.induced_latency_s, sensor.ingest, pkt)
        else:
            sensor.ingest(pkt)

    def select(self, pkt: Packet) -> Sensor:
        raise NotImplementedError

    def _failover_target(self, selected: Sensor) -> Optional[Sensor]:
        """Next live sensor in ring order after the down selection, or
        None when every sensor is down (the packet is shed, counted)."""
        start = self.sensors.index(selected)
        for offset in range(1, len(self.sensors)):
            candidate = self.sensors[(start + offset) % len(self.sensors)]
            if candidate.up:
                return candidate
        return None

    # ------------------------------------------------------------------
    # degradation hooks (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def force_fail(self) -> None:
        """Injected balancer outage: every offered packet is dropped."""
        self.up = False

    def force_restore(self) -> None:
        self.up = True

    def notify_recovered(self, sensor: Sensor) -> None:
        """Recovery re-registration: a restored sensor rejoins rotation.

        The base rotation already consults ``sensor.up`` on failover, so
        the hook only accounts the re-registration; stateful balancers
        override to refresh their assignment state as well.
        """
        self.recoveries += 1

    # ------------------------------------------------------------------
    def balance_evenness(self) -> float:
        """Jain's fairness index of the per-sensor assignment counts
        (1.0 = perfectly even, 1/n = all to one sensor).

        Every configured sensor participates, so a starved sensor drags
        the index down even if it never appeared in the counters; a
        drop-only workload (packets received, none forwarded) scores the
        all-to-no-sensor worst case 1/n rather than a vacuous 1.0.
        """
        counts = [self.per_sensor_count.get(s.name, 0) for s in self.sensors]
        total = sum(counts)
        if total == 0:
            return 1.0 if self.received == 0 else 1.0 / len(counts)
        sq = sum(c * c for c in counts)
        return (total * total) / (len(counts) * sq)


class NoBalancer(LoadBalancer):
    """Degenerate balancer: everything to the single sensor.

    (Multiple sensors without balancing is modelled by
    :class:`StaticPlacementBalancer`, which is what "no load balancing"
    means operationally in a multi-sensor deployment.)
    """

    strategy = "none"

    def __init__(self, engine: Engine, name: str, sensors: Sequence[Sensor],
                 **kwargs) -> None:
        super().__init__(engine, name, sensors, **kwargs)
        if len(self.sensors) != 1:
            raise ConfigurationError("NoBalancer supports exactly one sensor")

    def select(self, pkt: Packet) -> Sensor:
        return self.sensors[0]


class StaticPlacementBalancer(LoadBalancer):
    """Partition traffic by destination subnet (sensor placement).

    Packets whose destination matches ``subnets[i]`` go to ``sensors[i]``;
    non-matching traffic falls through to the last sensor.  Evenness is
    entirely at the mercy of the traffic matrix.
    """

    strategy = "static-placement"

    def __init__(
        self,
        engine: Engine,
        name: str,
        sensors: Sequence[Sensor],
        subnets: Sequence[str],
        **kwargs,
    ) -> None:
        super().__init__(engine, name, sensors, **kwargs)
        if len(subnets) != len(self.sensors):
            raise ConfigurationError("need one subnet per sensor")
        self.subnets = [Subnet(s) for s in subnets]

    def select(self, pkt: Packet) -> Sensor:
        for subnet, sensor in zip(self.subnets, self.sensors):
            if pkt.dst in subnet:
                return sensor
        return self.sensors[-1]


class HashBalancer(LoadBalancer):
    """Flow-hash spreading: canonical five-tuple hash modulo sensor count.

    Both directions of a flow hash identically (the :class:`FlowKey` is
    bidirectional), so TCP sessions stay on one sensor.
    """

    strategy = "flow-hash"

    def select(self, pkt: Packet) -> Sensor:
        key = FlowKey.of(pkt)
        h = hash((key.addr_lo.value, key.port_lo, key.addr_hi.value,
                  key.port_hi, key.proto.value))
        return self.sensors[h % len(self.sensors)]


class DynamicBalancer(LoadBalancer):
    """Least-backlog assignment with per-flow stickiness.

    New flows go to the sensor with the smallest inspection backlog;
    existing flows stay where they are (TCP-session awareness).  The sticky
    table is bounded; evicted flows simply re-balance.
    """

    strategy = "dynamic"

    def __init__(self, engine: Engine, name: str, sensors: Sequence[Sensor],
                 max_flows: int = 100_000, **kwargs) -> None:
        super().__init__(engine, name, sensors, **kwargs)
        if max_flows <= 0:
            raise ConfigurationError("max_flows must be positive")
        self.max_flows = int(max_flows)
        self._assignment: Dict[FlowKey, Sensor] = {}

    def notify_recovered(self, sensor: Sensor) -> None:
        """A recovered sensor rejoins least-backlog selection immediately:
        the sticky table is dropped wholesale (the same cheap eviction used
        at ``max_flows``) so new selections can use it again."""
        super().notify_recovered(sensor)
        self._assignment.clear()

    def select(self, pkt: Packet) -> Sensor:
        key = FlowKey.of(pkt)
        sensor = self._assignment.get(key)
        if sensor is not None and sensor.up:
            return sensor
        now = self.engine.now
        # Least backlog first, quantized into 10 ms buckets: once sensors
        # saturate, their backlogs all pin near the queue bound and stop
        # reflecting true load, so within a bucket the least-assigned sensor
        # wins and saturation still spreads evenly.
        sensor = min(self.sensors,
                     key=lambda s: (not s.up,
                                    int(max(s._busy_until - now, 0.0) / 0.01),
                                    self.per_sensor_count[s.name]))
        if len(self._assignment) >= self.max_flows:
            self._assignment.clear()  # cheap wholesale eviction
        self._assignment[key] = sensor
        return sensor
