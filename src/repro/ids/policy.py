"""Security policy: mapping threats to automated actions.

Section 2.2: "This is usually accomplished by a security policy that maps
threats to automated actions.  Policy must be accurate, for faulty policy
risks shutting out legitimate users."  And section 3.3: "An organizational
security policy that states the goals, acceptable uses, and constraints on
the system in terms of security is critical."

A :class:`SecurityPolicy` is an ordered list of :class:`PolicyRule` s; the
first matching rule's actions fire.  Actions are symbolic
(:class:`ResponseAction`); the management console binds them to actual
response devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .alert import Alert, Severity

__all__ = ["ResponseAction", "PolicyRule", "SecurityPolicy"]


class ResponseAction(enum.Enum):
    """Automated responses an IDS can take (Table 3 interaction metrics)."""

    NOTIFY = "notify"                    # operator notification
    LOG_ONLY = "log-only"
    FIREWALL_BLOCK = "firewall-block"    # Firewall Interaction
    ROUTER_BLOCK = "router-block"        # Router Interaction
    SNMP_TRAP = "snmp-trap"              # SNMP Interaction
    HONEYPOT_REDIRECT = "honeypot-redirect"


@dataclass
class PolicyRule:
    """Match alerts by severity floor and optional category prefix."""

    min_severity: Severity
    actions: Tuple[ResponseAction, ...]
    category_prefix: Optional[str] = None
    name: str = ""

    def matches(self, alert: Alert) -> bool:
        if alert.severity < self.min_severity:
            return False
        if self.category_prefix is not None and not alert.category.startswith(
                self.category_prefix):
            return False
        return True


class SecurityPolicy:
    """Ordered first-match policy.

    ``default_actions`` apply when no rule matches (typically LOG_ONLY).
    """

    def __init__(
        self,
        rules: Sequence[PolicyRule] = (),
        default_actions: Tuple[ResponseAction, ...] = (ResponseAction.LOG_ONLY,),
    ) -> None:
        self.rules: List[PolicyRule] = list(rules)
        self.default_actions = tuple(default_actions)

    def add_rule(self, rule: PolicyRule, position: Optional[int] = None) -> None:
        if position is None:
            self.rules.append(rule)
        else:
            self.rules.insert(position, rule)

    def actions_for(self, alert: Alert) -> Tuple[ResponseAction, ...]:
        for rule in self.rules:
            if rule.matches(alert):
                return rule.actions
        return self.default_actions

    def __len__(self) -> int:
        return len(self.rules)

    @staticmethod
    def default() -> "SecurityPolicy":
        """A sensible stock policy: notify on MEDIUM+, auto-block CRITICAL
        floods/exploits at the firewall, trap HIGH to SNMP."""
        return SecurityPolicy(rules=[
            PolicyRule(Severity.CRITICAL,
                       (ResponseAction.NOTIFY, ResponseAction.FIREWALL_BLOCK,
                        ResponseAction.SNMP_TRAP),
                       name="critical-block"),
            PolicyRule(Severity.HIGH,
                       (ResponseAction.NOTIFY, ResponseAction.SNMP_TRAP),
                       name="high-notify-trap"),
            PolicyRule(Severity.MEDIUM, (ResponseAction.NOTIFY,),
                       name="medium-notify"),
        ])
