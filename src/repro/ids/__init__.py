"""Generalized network IDS architecture (paper Figures 1 and 2)."""

from .alert import Alert, Detection, Notification, Severity
from .analyzer import Analyzer
from .anomaly import (
    ANOMALY_PATHS,
    DEFAULT_ANOMALY_PATH,
    AnomalyEngine,
    use_anomaly_path,
)
from .component import Component, Subprocess, validate_wiring
from .console import ManagementConsole, ResponseLog
from .host import HostAgent, LoggingLevel
from .hybrid import HybridDetector
from .loadbalancer import (
    DynamicBalancer,
    HashBalancer,
    LoadBalancer,
    NoBalancer,
    StaticPlacementBalancer,
)
from .audit import (
    KNOWN_CLUSTER_COMMANDS,
    AuditEvent,
    AuditEventType,
    AuditTrail,
    packet_to_events,
)
from .monitor import Monitor
from .operator import OperatorModel
from .pipeline import IdsPipeline
from .policy import PolicyRule, ResponseAction, SecurityPolicy
from .response import Firewall, Honeypot, RouterInterface, SnmpTrapReceiver
from .sensor import (
    AnomalyDetector,
    FailureMode,
    Sensor,
    SignatureDetector,
)
from .multipattern import AhoCorasick, MultiPatternMatcher
from .signature import (
    DEFAULT_ENGINE,
    ENGINE_KINDS,
    HeaderRule,
    PayloadPatternRule,
    RuleMatch,
    SignatureEngine,
    SignatureRule,
    StreamPatternRule,
    ThresholdRule,
    default_ruleset,
    use_engine,
)

__all__ = [
    "Alert",
    "Detection",
    "Notification",
    "Severity",
    "Analyzer",
    "ANOMALY_PATHS",
    "DEFAULT_ANOMALY_PATH",
    "AnomalyEngine",
    "use_anomaly_path",
    "Component",
    "Subprocess",
    "validate_wiring",
    "ManagementConsole",
    "ResponseLog",
    "HostAgent",
    "LoggingLevel",
    "HybridDetector",
    "LoadBalancer",
    "NoBalancer",
    "StaticPlacementBalancer",
    "HashBalancer",
    "DynamicBalancer",
    "Monitor",
    "OperatorModel",
    "IdsPipeline",
    "AuditEvent",
    "AuditEventType",
    "AuditTrail",
    "packet_to_events",
    "KNOWN_CLUSTER_COMMANDS",
    "PolicyRule",
    "ResponseAction",
    "SecurityPolicy",
    "Firewall",
    "Honeypot",
    "RouterInterface",
    "SnmpTrapReceiver",
    "AnomalyDetector",
    "FailureMode",
    "Sensor",
    "SignatureDetector",
    "AhoCorasick",
    "DEFAULT_ENGINE",
    "ENGINE_KINDS",
    "HeaderRule",
    "MultiPatternMatcher",
    "PayloadPatternRule",
    "RuleMatch",
    "SignatureEngine",
    "SignatureRule",
    "StreamPatternRule",
    "ThresholdRule",
    "default_ruleset",
    "use_engine",
]
