"""Hybrid detection: signature and anomaly engines combined.

"A hybrid IDS uses both technologies either in series or in parallel"
(section 2.1).

* **parallel** -- both engines see every packet; hits are unioned.  Maximum
  coverage (known attacks via signatures, novel ones via anomaly) at maximum
  per-packet cost.
* **series** -- the signature stage runs first; the anomaly stage only sees
  packets the signature stage found *clean*.  Cheaper and lower-FP on known
  attacks (no duplicate hits), identical coverage of novel attacks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..net.packet import Packet
from .alert import Severity
from .anomaly import AnomalyEngine
from .sensor import AnomalyDetector, SignatureDetector

__all__ = ["HybridDetector"]


class HybridDetector:
    """Compose a :class:`SignatureDetector` and an :class:`AnomalyDetector`.

    Parameters
    ----------
    mode:
        ``"parallel"`` or ``"series"`` (see module docstring).
    sensitivity:
        Propagated to both engines; reading it returns the shared value.
    """

    def __init__(
        self,
        signature: Optional[SignatureDetector] = None,
        anomaly: Optional[AnomalyDetector] = None,
        mode: str = "parallel",
        sensitivity: float = 0.5,
        engine_kind: Optional[str] = None,
        anomaly_path: Optional[str] = None,
    ) -> None:
        if mode not in ("parallel", "series"):
            raise ConfigurationError(f"unknown hybrid mode {mode!r}")
        self.mode = mode
        self.signature = signature or SignatureDetector(
            sensitivity=sensitivity, engine_kind=engine_kind)
        self.anomaly = anomaly or AnomalyDetector(
            sensitivity=sensitivity, path=anomaly_path)
        self.sensitivity = sensitivity

    @property
    def sensitivity(self) -> float:
        return self.signature.sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        self.signature.sensitivity = value
        self.anomaly.sensitivity = value

    # training passthrough (the anomaly half needs a baseline)
    def train(self, pkt: Packet, now: float) -> None:
        self.anomaly.train(pkt, now)

    def freeze(self) -> None:
        self.anomaly.freeze()

    def process(self, pkt: Packet, now: float) -> List[Tuple[str, Severity, float, str]]:
        sig_hits = self.signature.process(pkt, now)
        if self.mode == "series" and sig_hits:
            return sig_hits
        return sig_hits + self.anomaly.process(pkt, now)

    def reset(self) -> None:
        self.signature.reset()
        self.anomaly.reset()
