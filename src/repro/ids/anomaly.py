"""Anomaly-based detection engine.

"An anomaly-based IDS attempts to detect behavior that is inconsistent with
'normal' behavior" (section 2.1).  The engine learns a traffic baseline from
a benign training window -- the paper: "a constrained application environment
may help constrain the definition of normal behavior making anomaly-based
systems more appropriate ... such as those used for cluster super-computing"
-- and then scores live packets against it.

Feature set (all O(1) per packet):

``rate``
    Per-source packet rate (sliding bins) vs the trained per-source maximum.
``fanout``
    Distinct destination ports per source in a window vs trained maximum.
``new-service``
    A (proto, server-port) pair never seen in training.
``entropy``
    Payload byte entropy vs the trained per-service mean/stddev.
``icmp-size``
    ICMP payload size vs trained distribution.
``token``
    Unseen payload-prefix token on a *known* service port (application-
    protocol fluency: catches rogue commands inside an otherwise-normal
    cluster protocol -- the insider case of section 3.3).

Each feature maps its deviation through a logistic into a suspicion score in
[0, 1]; the packet's score is the max.  A detection fires when the score
exceeds ``threshold(sensitivity) = 0.95 - 0.85 * sensitivity``: the
continuous knob behind the Figure-4 error-rate curves.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..net.packet import Packet, Protocol, TcpFlags
from ..traffic.payload import shannon_entropy
from .alert import Severity

__all__ = ["AnomalyEngine", "AnomalyScore"]

_ENTROPY_SAMPLE = 256  # bytes of payload fed to the entropy estimator


def _logistic(z: float, midpoint: float, steepness: float = 1.0) -> float:
    """Map a deviation ``z`` to (0, 1) with 0.5 at ``midpoint``."""
    try:
        return 1.0 / (1.0 + math.exp(-steepness * (z - midpoint)))
    except OverflowError:  # pragma: no cover - extreme z
        return 0.0 if z < midpoint else 1.0


class AnomalyScore(Tuple[str, float]):
    """(feature, score) pair; tuple subclass for cheap construction."""

    __slots__ = ()

    @property
    def feature(self) -> str:
        return self[0]

    @property
    def score(self) -> float:
        return self[1]


class _ServiceStats:
    """Streaming entropy statistics for one (proto, port) service."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        d = x - self.mean
        self.mean += d / self.n
        self.m2 += d * (x - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 1.0
        return max(math.sqrt(self.m2 / (self.n - 1)), 0.05)


class AnomalyEngine:
    """Baseline-learning behavioural detector.

    Usage: feed benign traffic through :meth:`train`, call :meth:`freeze`,
    then :meth:`inspect` live packets.
    """

    def __init__(self, sensitivity: float = 0.5, window_s: float = 5.0) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.sensitivity = sensitivity
        self.window_s = float(window_s)
        self.trained = False
        self.packets_inspected = 0
        self.detections = 0

        # --- learned baseline ---
        self._services: Set[Tuple[Protocol, int]] = set()
        self._entropy: Dict[Tuple[Protocol, int], _ServiceStats] = {}
        self._tokens: Dict[Tuple[Protocol, int], Set[bytes]] = {}
        self._icmp_sizes = _ServiceStats()
        self._max_src_rate = 0.0  # packets/s per source, trained maximum
        self._max_fanout = 0      # distinct ports per source per window
        self._train_bins: Dict[Tuple[int, int], int] = {}
        self._train_fanout: Dict[Tuple[int, int], Set[int]] = {}

        # --- live state ---
        self._live_bins: Dict[int, list] = {}     # src -> [bin_idx, count]
        self._live_fanout: Dict[int, list] = {}   # src -> [win_start, set]

    # ------------------------------------------------------------------
    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        self._sensitivity = float(value)

    @property
    def threshold(self) -> float:
        """Detection threshold on the suspicion score (falls as sensitivity
        rises)."""
        return 0.95 - 0.85 * self._sensitivity

    @staticmethod
    def _server_port(pkt: Packet) -> Optional[int]:
        """Heuristic service port: the lower of the two (server side)."""
        if pkt.proto is Protocol.ICMP:
            return 0
        return min(pkt.sport, pkt.dport)

    _ALPHA = frozenset(b"abcdefghijklmnopqrstuvwxyz_")

    @classmethod
    def _token(cls, pkt: Packet) -> Optional[bytes]:
        """Extract a *stable* application-protocol token from the payload.

        Text protocols: the first word ("GET", "HELO", "login:").  Binary
        protocols: the 6-byte magic+type header plus the first embedded
        command-like ASCII run -- volatile fields (sequence numbers, float
        samples) are deliberately excluded so that ordinary traffic yields
        a small, learnable token set while a rogue command inside an
        otherwise-normal protocol produces a token never seen in training.
        """
        p = pkt.payload
        if p is None or len(p) < 4:
            return None
        head = p[:16]
        printable = sum(32 <= b < 127 for b in head)
        if printable >= max(len(head) - 2, 4):  # text protocol
            return bytes(p.split(b" ", 1)[0][:12])
        run = b""
        current = bytearray()
        for b in p[6:32]:
            if b in cls._ALPHA:
                current.append(b)
                continue
            if len(current) >= 4:
                break
            current.clear()
        if len(current) >= 4:
            run = bytes(current[:12])
        return bytes(p[:6]) + b"|" + run

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, pkt: Packet, now: float) -> None:
        """Incorporate one benign packet into the baseline."""
        if self.trained:
            raise ConfigurationError("engine already frozen; cannot train")
        port = self._server_port(pkt)
        key = (pkt.proto, port)
        self._services.add(key)

        if pkt.payload is not None:
            h = shannon_entropy(pkt.payload[:_ENTROPY_SAMPLE])
            self._entropy.setdefault(key, _ServiceStats()).add(h)
            token = self._token(pkt)
            if token is not None:
                self._tokens.setdefault(key, set()).add(token)

        if pkt.proto is Protocol.ICMP:
            self._icmp_sizes.add(float(pkt.payload_len))

        # per-source rate bins (1 s) and fan-out windows
        bin_key = (pkt.src.value, int(now))
        self._train_bins[bin_key] = self._train_bins.get(bin_key, 0) + 1
        fo_key = (pkt.src.value, int(now // self.window_s))
        self._train_fanout.setdefault(fo_key, set()).add(pkt.dport)

    def freeze(self) -> None:
        """Finish training; derive the per-source rate/fan-out envelopes."""
        if self._train_bins:
            self._max_src_rate = float(max(self._train_bins.values()))
        else:
            self._max_src_rate = 1.0
        if self._train_fanout:
            self._max_fanout = max(len(s) for s in self._train_fanout.values())
        else:
            self._max_fanout = 1
        self._train_bins.clear()
        self._train_fanout.clear()
        self.trained = True

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def inspect(self, pkt: Packet, now: float) -> List[AnomalyScore]:
        """Score one packet; returns the features above threshold."""
        if not self.trained:
            raise ConfigurationError("AnomalyEngine.inspect before freeze()")
        self.packets_inspected += 1
        scores: List[AnomalyScore] = []
        t = self.threshold

        # rate
        src = pkt.src.value
        bin_idx = int(now)
        live = self._live_bins.get(src)
        if live is None or live[0] != bin_idx:
            live = [bin_idx, 0]
            self._live_bins[src] = live
        live[1] += 1
        ratio = live[1] / max(self._max_src_rate, 1.0)
        if ratio > 1.0:
            s = _logistic(math.log2(ratio), midpoint=2.0, steepness=1.6)
            if s > t:
                scores.append(AnomalyScore(("rate", s)))

        # fan-out
        fo = self._live_fanout.get(src)
        if fo is None or now - fo[0] > self.window_s:
            fo = [now, set()]
            self._live_fanout[src] = fo
        fo[1].add(pkt.dport)
        fan = len(fo[1])
        if fan > self._max_fanout:
            s = _logistic(math.log2(fan / max(self._max_fanout, 1)),
                          midpoint=1.5, steepness=1.8)
            if s > t:
                scores.append(AnomalyScore(("fanout", s)))

        # new service (only consider plausible service-side ports)
        port = self._server_port(pkt)
        key = (pkt.proto, port)
        is_syn = (pkt.proto is Protocol.TCP and pkt.has_flag(TcpFlags.SYN)
                  and not pkt.has_flag(TcpFlags.ACK))
        if key not in self._services and (is_syn or pkt.proto is not Protocol.TCP):
            s = 0.75 if port < 1024 or pkt.dport == port else 0.55
            if s > t:
                scores.append(AnomalyScore(("new-service", s)))

        # payload entropy deviation
        if pkt.payload is not None and len(pkt.payload) >= 32:
            stats = self._entropy.get(key)
            if stats is not None and stats.n >= 8:
                h = shannon_entropy(pkt.payload[:_ENTROPY_SAMPLE])
                z = abs(h - stats.mean) / stats.std
                s = _logistic(z, midpoint=6.0, steepness=0.8)
                if s > t:
                    scores.append(AnomalyScore(("entropy", s)))

        # ICMP payload size
        if pkt.proto is Protocol.ICMP and self._icmp_sizes.n >= 8:
            z = abs(pkt.payload_len - self._icmp_sizes.mean) / self._icmp_sizes.std
            s = _logistic(z, midpoint=6.0, steepness=0.7)
            if s > t:
                scores.append(AnomalyScore(("icmp-size", s)))

        # token novelty on known services
        token = self._token(pkt)
        if token is not None and key in self._tokens:
            if token not in self._tokens[key]:
                s = 0.7
                if s > t:
                    scores.append(AnomalyScore(("token", s)))

        self.detections += len(scores)
        return scores

    # ------------------------------------------------------------------
    @staticmethod
    def severity_for(score: float) -> Severity:
        """Map a suspicion score onto the severity ladder."""
        if score >= 0.9:
            return Severity.HIGH
        if score >= 0.7:
            return Severity.MEDIUM
        return Severity.LOW

    def reset_live_state(self) -> None:
        """Drop live windows (between runs); the baseline is kept."""
        self._live_bins.clear()
        self._live_fanout.clear()
        self.packets_inspected = 0
        self.detections = 0
