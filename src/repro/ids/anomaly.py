"""Anomaly-based detection engine.

"An anomaly-based IDS attempts to detect behavior that is inconsistent with
'normal' behavior" (section 2.1).  The engine learns a traffic baseline from
a benign training window -- the paper: "a constrained application environment
may help constrain the definition of normal behavior making anomaly-based
systems more appropriate ... such as those used for cluster super-computing"
-- and then scores live packets against it.

Feature set (all O(1) per packet):

``rate``
    Per-source packet rate (sliding bins) vs the trained per-source maximum.
``fanout``
    Distinct destination ports per source in a window vs trained maximum.
``new-service``
    A (proto, server-port) pair never seen in training.
``entropy``
    Payload byte entropy vs the trained per-service mean/stddev.
``icmp-size``
    ICMP payload size vs trained distribution.
``token``
    Unseen payload-prefix token on a *known* service port (application-
    protocol fluency: catches rogue commands inside an otherwise-normal
    cluster protocol -- the insider case of section 3.3).

Each feature maps its deviation through a logistic into a suspicion score in
[0, 1]; the packet's score is the max.  A detection fires when the score
exceeds ``threshold(sensitivity) = 0.95 - 0.85 * sensitivity``: the
continuous knob behind the Figure-4 error-rate curves.

Scoring paths
-------------
Two implementations produce score-for-score identical output, selected the
same way the signature kernel is (:data:`DEFAULT_ANOMALY_PATH`,
:func:`use_anomaly_path`, or ``path=`` at construction):

``"fast"`` (default)
    Memoizes the payload-derived features (prefix entropy, application
    token) on the packet itself so a battery that runs several detectors
    over the same trace pays for them once; interns the ``(proto, port)``
    service key as a small int; and prechecks each logistic feature against
    a precomputed deviation cut so ``math.exp`` only runs for packets near
    or above threshold.  The cut is found by bisection over the *same*
    float expression the baseline evaluates and then widened by a guard
    margin, so the final fire decision and every reported score come from
    the identical arithmetic as the baseline path.

``"baseline"``
    The original per-call implementation; kept as the reference for the
    differential test suite (``tests/ids/test_anomaly_fastpath.py``).
"""

from __future__ import annotations

import math
import os
import re
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..net.packet import PROTO_IDS, Packet, Protocol, TcpFlags
from ..traffic.payload import shannon_entropy, shannon_entropy_prefix
from .alert import Severity

__all__ = [
    "AnomalyEngine",
    "AnomalyScore",
    "ANOMALY_PATHS",
    "DEFAULT_ANOMALY_PATH",
    "use_anomaly_path",
]

_ENTROPY_SAMPLE = 256  # bytes of payload fed to the entropy estimator

#: The selectable anomaly scoring paths.
ANOMALY_PATHS = ("fast", "baseline")


def _check_anomaly_path(kind: str) -> str:
    if kind not in ANOMALY_PATHS:
        raise ConfigurationError(
            f"unknown anomaly path {kind!r}; expected one of {ANOMALY_PATHS}")
    return kind


#: Path used when an engine is built without an explicit ``path=``.
#: ``REPRO_ANOMALY_PATH`` overrides the default (used by the CI lane that
#: forces the fast path on for the whole product test suite).
DEFAULT_ANOMALY_PATH = _check_anomaly_path(
    os.environ.get("REPRO_ANOMALY_PATH", "fast"))


@contextmanager
def use_anomaly_path(kind: str) -> Iterator[None]:
    """Temporarily change the default anomaly scoring path.

    The evaluation work units wrap themselves in this so one
    ``EvaluationOptions.anomaly_path`` knob reaches every product
    deployment, in-process and across pool workers alike.
    """
    global DEFAULT_ANOMALY_PATH
    previous = DEFAULT_ANOMALY_PATH
    DEFAULT_ANOMALY_PATH = _check_anomaly_path(kind)
    try:
        yield
    finally:
        DEFAULT_ANOMALY_PATH = previous


_TCP_ID = PROTO_IDS[Protocol.TCP]
_ICMP_ID = PROTO_IDS[Protocol.ICMP]
_SYN_BIT = int(TcpFlags.SYN)
_ACK_BIT = int(TcpFlags.ACK)

_PRINTABLE_BYTES = bytes(range(32, 127))
_ALPHA_RUN_RE = re.compile(rb"[a-z_]{4,}")


def _token_fast(p: Optional[bytes]) -> Optional[bytes]:
    """Value-identical reimplementation of :meth:`AnomalyEngine._token`.

    ``bytes.translate`` counts the printable head, ``bytes.find`` locates
    the first word boundary without splitting the whole payload, and a
    precompiled regex finds the first >=4-byte lowercase/underscore run in
    the ``p[6:32]`` window -- each provably returning the same bytes as the
    baseline's per-byte Python loops (see the differential property test).
    """
    if p is None or len(p) < 4:
        return None
    head = p[:16]
    printable = len(head) - len(head.translate(None, _PRINTABLE_BYTES))
    if printable >= max(len(head) - 2, 4):  # text protocol
        sp = p.find(b" ")
        end = sp if sp >= 0 else len(p)
        return p[: end if end < 12 else 12]
    m = _ALPHA_RUN_RE.search(p, 6, 32)
    run = m.group()[:12] if m is not None else b""
    return p[:6] + b"|" + run


#: Guard margin subtracted from bisected cuts.  Float bisection pins the
#: crossover exactly when the composed expression is monotone; libm ``exp``
#: is only faithfully rounded, so monotonicity could in principle wobble by
#: an ulp near the cut.  The margin is ~1e6 ulps wide, and every packet at
#: or above the guarded cut is re-decided by the exact baseline expression,
#: so the precheck can only ever admit extra candidates, never drop one.
_CUT_GUARD = 1e-9


def _z_cut(midpoint: float, steepness: float, threshold: float) -> float:
    """Conservative deviation precheck for ``_logistic(z, ...) > t``.

    Returns a ``zc`` such that ``z < zc`` guarantees the score cannot clear
    the threshold; callers evaluate the exact logistic for ``z >= zc``.
    """
    lo, hi = midpoint - 800.0, midpoint + 800.0  # logistic saturates inside
    if _logistic(lo, midpoint, steepness) > threshold:
        return lo - _CUT_GUARD
    if not _logistic(hi, midpoint, steepness) > threshold:
        return math.inf  # threshold >= the logistic ceiling: never fires
    while True:
        mid = (lo + hi) / 2.0
        if not lo < mid < hi:  # lo/hi are adjacent floats: hi is the cut
            return hi - _CUT_GUARD - _CUT_GUARD * abs(hi)
        if _logistic(mid, midpoint, steepness) > threshold:
            hi = mid
        else:
            lo = mid


def _count_cut(fires, hi: int = 1 << 40) -> int:
    """Smallest count in [1, hi] where the monotone ``fires`` predicate
    holds, minus a one-count guard; ``hi + 1`` when it never fires."""
    if not fires(hi):
        return hi + 1
    lo = 0  # fires(0) treated as False: counts start at 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fires(mid):
            hi = mid
        else:
            lo = mid
    return max(1, hi - 1)


def _logistic(z: float, midpoint: float, steepness: float = 1.0) -> float:
    """Map a deviation ``z`` to (0, 1) with 0.5 at ``midpoint``."""
    try:
        return 1.0 / (1.0 + math.exp(-steepness * (z - midpoint)))
    except OverflowError:  # pragma: no cover - extreme z
        return 0.0 if z < midpoint else 1.0


class AnomalyScore(Tuple[str, float]):
    """(feature, score) pair; tuple subclass for cheap construction."""

    __slots__ = ()

    @property
    def feature(self) -> str:
        return self[0]

    @property
    def score(self) -> float:
        return self[1]


class _ServiceStats:
    """Streaming entropy statistics for one (proto, port) service."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        d = x - self.mean
        self.mean += d / self.n
        self.m2 += d * (x - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 1.0
        return max(math.sqrt(self.m2 / (self.n - 1)), 0.05)


class AnomalyEngine:
    """Baseline-learning behavioural detector.

    Usage: feed benign traffic through :meth:`train`, call :meth:`freeze`,
    then :meth:`inspect` live packets.
    """

    def __init__(self, sensitivity: float = 0.5, window_s: float = 5.0,
                 path: Optional[str] = None) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.anomaly_path = _check_anomaly_path(
            DEFAULT_ANOMALY_PATH if path is None else path)
        self._fast = self.anomaly_path == "fast"
        self.sensitivity = sensitivity
        self.window_s = float(window_s)
        self.trained = False
        self.packets_inspected = 0
        self.detections = 0

        # --- learned baseline ---
        self._services: Set[Tuple[Protocol, int]] = set()
        self._entropy: Dict[Tuple[Protocol, int], _ServiceStats] = {}
        self._tokens: Dict[Tuple[Protocol, int], Set[bytes]] = {}
        self._icmp_sizes = _ServiceStats()
        self._max_src_rate = 0.0  # packets/s per source, trained maximum
        self._max_fanout = 0      # distinct ports per source per window
        self._train_bins: Dict[Tuple[int, int], int] = {}
        self._train_fanout: Dict[Tuple[int, int], Set[int]] = {}

        # --- fast-path tables (built by freeze(); int service keys
        # ``proto_id << 16 | server_port``) ---
        self._services_ik: Set[int] = set()
        self._entropy_ik: Dict[int, Tuple[float, float]] = {}
        self._tokens_ik: Dict[int, Set[bytes]] = {}
        self._icmp_params: Optional[Tuple[float, float]] = None
        self._rate_den = 1.0
        self._fan_den = 1
        self._cuts: Optional[tuple] = None  # per-threshold precheck cuts

        # --- live state ---
        self._live_bins: Dict[int, list] = {}     # src -> [bin_idx, count]
        self._live_fanout: Dict[int, list] = {}   # src -> [win_start, set]

    # ------------------------------------------------------------------
    @property
    def sensitivity(self) -> float:
        return self._sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        self._sensitivity = float(value)
        self._cuts = None  # precheck cuts depend on the threshold

    @property
    def threshold(self) -> float:
        """Detection threshold on the suspicion score (falls as sensitivity
        rises)."""
        return 0.95 - 0.85 * self._sensitivity

    @staticmethod
    def _server_port(pkt: Packet) -> Optional[int]:
        """Heuristic service port: the lower of the two (server side)."""
        if pkt.proto is Protocol.ICMP:
            return 0
        return min(pkt.sport, pkt.dport)

    _ALPHA = frozenset(b"abcdefghijklmnopqrstuvwxyz_")

    @classmethod
    def _token(cls, pkt: Packet) -> Optional[bytes]:
        """Extract a *stable* application-protocol token from the payload.

        Text protocols: the first word ("GET", "HELO", "login:").  Binary
        protocols: the 6-byte magic+type header plus the first embedded
        command-like ASCII run -- volatile fields (sequence numbers, float
        samples) are deliberately excluded so that ordinary traffic yields
        a small, learnable token set while a rogue command inside an
        otherwise-normal protocol produces a token never seen in training.
        """
        p = pkt.payload
        if p is None or len(p) < 4:
            return None
        head = p[:16]
        printable = sum(32 <= b < 127 for b in head)
        if printable >= max(len(head) - 2, 4):  # text protocol
            return bytes(p.split(b" ", 1)[0][:12])
        run = b""
        current = bytearray()
        for b in p[6:32]:
            if b in cls._ALPHA:
                current.append(b)
                continue
            if len(current) >= 4:
                break
            current.clear()
        if len(current) >= 4:
            run = bytes(current[:12])
        return bytes(p[:6]) + b"|" + run

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, pkt: Packet, now: float) -> None:
        """Incorporate one benign packet into the baseline."""
        if self.trained:
            raise ConfigurationError("engine already frozen; cannot train")
        port = self._server_port(pkt)
        key = (pkt.proto, port)
        self._services.add(key)

        if pkt.payload is not None:
            if self._fast:
                h = pkt._h256
                if h is None:
                    h = shannon_entropy_prefix(pkt.payload, _ENTROPY_SAMPLE)
                    pkt._h256 = h
                token = pkt._tok
                if token is False:
                    token = _token_fast(pkt.payload)
                    pkt._tok = token
            else:
                h = shannon_entropy(pkt.payload[:_ENTROPY_SAMPLE])
                token = self._token(pkt)
            self._entropy.setdefault(key, _ServiceStats()).add(h)
            if token is not None:
                self._tokens.setdefault(key, set()).add(token)

        if pkt.proto is Protocol.ICMP:
            self._icmp_sizes.add(float(pkt.payload_len))

        # per-source rate bins (1 s) and fan-out windows
        bin_key = (pkt.src.value, int(now))
        self._train_bins[bin_key] = self._train_bins.get(bin_key, 0) + 1
        fo_key = (pkt.src.value, int(now // self.window_s))
        self._train_fanout.setdefault(fo_key, set()).add(pkt.dport)

    def freeze(self) -> None:
        """Finish training; derive the per-source rate/fan-out envelopes."""
        if self._train_bins:
            self._max_src_rate = float(max(self._train_bins.values()))
        else:
            self._max_src_rate = 1.0
        if self._train_fanout:
            self._max_fanout = max(len(s) for s in self._train_fanout.values())
        else:
            self._max_fanout = 1
        self._train_bins.clear()
        self._train_fanout.clear()
        self.trained = True
        if self._fast:
            self._build_fast_tables()

    def _build_fast_tables(self) -> None:
        """Intern service keys as ints and hoist per-packet constants.

        ``(mean, std)`` pairs are the exact float values the baseline's
        ``_ServiceStats`` properties would return per packet; hoisting them
        out of the hot loop changes no arithmetic.
        """
        self._services_ik = {
            (PROTO_IDS[proto] << 16) | port
            for proto, port in self._services}
        self._entropy_ik = {
            (PROTO_IDS[proto] << 16) | port: (stats.mean, stats.std)
            for (proto, port), stats in self._entropy.items()
            if stats.n >= 8}
        self._tokens_ik = {
            (PROTO_IDS[proto] << 16) | port: tokens
            for (proto, port), tokens in self._tokens.items()}
        self._icmp_params = (
            (self._icmp_sizes.mean, self._icmp_sizes.std)
            if self._icmp_sizes.n >= 8 else None)
        self._rate_den = max(self._max_src_rate, 1.0)
        self._fan_den = max(self._max_fanout, 1)
        self._cuts = None

    def _build_cuts(self, t: float) -> tuple:
        """Precheck cuts for threshold ``t`` (cached until it changes)."""
        rate_den = self._rate_den
        fan_den = self._fan_den
        max_fanout = self._max_fanout

        def rate_fires(c: int) -> bool:
            ratio = c / rate_den
            return ratio > 1.0 and _logistic(
                math.log2(ratio), midpoint=2.0, steepness=1.6) > t

        def fan_fires(c: int) -> bool:
            return c > max_fanout and _logistic(
                math.log2(c / fan_den), midpoint=1.5, steepness=1.8) > t

        cuts = (
            t,
            _count_cut(rate_fires),                  # 1: rate count precheck
            _count_cut(fan_fires),                   # 2: fanout precheck
            _z_cut(6.0, 0.8, t),                     # 3: entropy z precheck
            _z_cut(6.0, 0.7, t),                     # 4: icmp-size z precheck
            0.75 > t,                                # 5: new-service (priv)
            0.55 > t,                                # 6: new-service (other)
            0.7 > t,                                 # 7: token novelty
        )
        self._cuts = cuts
        return cuts

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def inspect(self, pkt: Packet, now: float) -> List[AnomalyScore]:
        """Score one packet; returns the features above threshold."""
        if not self.trained:
            raise ConfigurationError("AnomalyEngine.inspect before freeze()")
        if self._fast:
            return self._inspect_fast(pkt, now)
        self.packets_inspected += 1
        scores: List[AnomalyScore] = []
        t = self.threshold

        # rate
        src = pkt.src.value
        bin_idx = int(now)
        live = self._live_bins.get(src)
        if live is None or live[0] != bin_idx:
            live = [bin_idx, 0]
            self._live_bins[src] = live
        live[1] += 1
        ratio = live[1] / max(self._max_src_rate, 1.0)
        if ratio > 1.0:
            s = _logistic(math.log2(ratio), midpoint=2.0, steepness=1.6)
            if s > t:
                scores.append(AnomalyScore(("rate", s)))

        # fan-out
        fo = self._live_fanout.get(src)
        if fo is None or now - fo[0] > self.window_s:
            fo = [now, set()]
            self._live_fanout[src] = fo
        fo[1].add(pkt.dport)
        fan = len(fo[1])
        if fan > self._max_fanout:
            s = _logistic(math.log2(fan / max(self._max_fanout, 1)),
                          midpoint=1.5, steepness=1.8)
            if s > t:
                scores.append(AnomalyScore(("fanout", s)))

        # new service (only consider plausible service-side ports)
        port = self._server_port(pkt)
        key = (pkt.proto, port)
        is_syn = (pkt.proto is Protocol.TCP and pkt.has_flag(TcpFlags.SYN)
                  and not pkt.has_flag(TcpFlags.ACK))
        if key not in self._services and (is_syn or pkt.proto is not Protocol.TCP):
            s = 0.75 if port < 1024 or pkt.dport == port else 0.55
            if s > t:
                scores.append(AnomalyScore(("new-service", s)))

        # payload entropy deviation
        if pkt.payload is not None and len(pkt.payload) >= 32:
            stats = self._entropy.get(key)
            if stats is not None and stats.n >= 8:
                h = shannon_entropy(pkt.payload[:_ENTROPY_SAMPLE])
                z = abs(h - stats.mean) / stats.std
                s = _logistic(z, midpoint=6.0, steepness=0.8)
                if s > t:
                    scores.append(AnomalyScore(("entropy", s)))

        # ICMP payload size
        if pkt.proto is Protocol.ICMP and self._icmp_sizes.n >= 8:
            z = abs(pkt.payload_len - self._icmp_sizes.mean) / self._icmp_sizes.std
            s = _logistic(z, midpoint=6.0, steepness=0.7)
            if s > t:
                scores.append(AnomalyScore(("icmp-size", s)))

        # token novelty on known services
        token = self._token(pkt)
        if token is not None and key in self._tokens:
            if token not in self._tokens[key]:
                s = 0.7
                if s > t:
                    scores.append(AnomalyScore(("token", s)))

        self.detections += len(scores)
        return scores

    def _inspect_fast(self, pkt: Packet, now: float) -> List[AnomalyScore]:
        """Fast scoring path: identical output, cheaper per packet.

        Every score appended here is produced by the *same* float
        expression as the baseline ``inspect``; the precheck cuts and
        memoized payload features only decide how often that expression
        needs to run.
        """
        self.packets_inspected += 1
        scores: List[AnomalyScore] = []
        t = self.threshold
        cuts = self._cuts
        if cuts is None or cuts[0] != t:
            cuts = self._build_cuts(t)

        # rate
        src = pkt.src.value
        bin_idx = int(now)
        live = self._live_bins.get(src)
        if live is None or live[0] != bin_idx:
            live = [bin_idx, 0]
            self._live_bins[src] = live
        live[1] += 1
        if live[1] >= cuts[1]:
            ratio = live[1] / self._rate_den
            if ratio > 1.0:
                s = _logistic(math.log2(ratio), midpoint=2.0, steepness=1.6)
                if s > t:
                    scores.append(AnomalyScore(("rate", s)))

        # fan-out
        fo = self._live_fanout.get(src)
        if fo is None or now - fo[0] > self.window_s:
            fo = [now, set()]
            self._live_fanout[src] = fo
        fo[1].add(pkt.dport)
        fan = len(fo[1])
        if fan >= cuts[2] and fan > self._max_fanout:
            s = _logistic(math.log2(fan / self._fan_den),
                          midpoint=1.5, steepness=1.8)
            if s > t:
                scores.append(AnomalyScore(("fanout", s)))

        # new service (only consider plausible service-side ports)
        proto_id = pkt.proto_id
        if proto_id == _ICMP_ID:
            port = 0
        else:
            sport = pkt.sport
            dport = pkt.dport
            port = sport if sport < dport else dport
        ik = (proto_id << 16) | port
        if ik not in self._services_ik:
            fb = pkt.flag_bits
            if (proto_id != _TCP_ID
                    or (fb & _SYN_BIT and not fb & _ACK_BIT)):
                if port < 1024 or pkt.dport == port:
                    if cuts[5]:
                        scores.append(AnomalyScore(("new-service", 0.75)))
                elif cuts[6]:
                    scores.append(AnomalyScore(("new-service", 0.55)))

        # payload entropy deviation
        payload = pkt.payload
        if payload is not None and len(payload) >= 32:
            params = self._entropy_ik.get(ik)
            if params is not None:
                h = pkt._h256
                if h is None:
                    h = shannon_entropy_prefix(payload, _ENTROPY_SAMPLE)
                    pkt._h256 = h
                z = abs(h - params[0]) / params[1]
                if z >= cuts[3]:
                    s = _logistic(z, midpoint=6.0, steepness=0.8)
                    if s > t:
                        scores.append(AnomalyScore(("entropy", s)))

        # ICMP payload size
        if proto_id == _ICMP_ID and self._icmp_params is not None:
            params = self._icmp_params
            z = abs(pkt._payload_len - params[0]) / params[1]
            if z >= cuts[4]:
                s = _logistic(z, midpoint=6.0, steepness=0.7)
                if s > t:
                    scores.append(AnomalyScore(("icmp-size", s)))

        # token novelty on known services
        known = self._tokens_ik.get(ik)
        if known is not None and cuts[7]:
            token = pkt._tok
            if token is False:
                token = _token_fast(payload)
                pkt._tok = token
            if token is not None and token not in known:
                scores.append(AnomalyScore(("token", 0.7)))

        self.detections += len(scores)
        return scores

    # ------------------------------------------------------------------
    @staticmethod
    def severity_for(score: float) -> Severity:
        """Map a suspicion score onto the severity ladder."""
        if score >= 0.9:
            return Severity.HIGH
        if score >= 0.7:
            return Severity.MEDIUM
        return Severity.LOW

    def reset_live_state(self) -> None:
        """Drop live windows (between runs); the baseline is kept."""
        self._live_bins.clear()
        self._live_fanout.clear()
        self.packets_inspected = 0
        self.detections = 0
