"""External response devices: firewall, router interface, SNMP, honeypot.

Table 3's interaction metrics: "Firewall Interaction -- ability to interact
with a firewall.  Perhaps to update a firewall's block list"; "Router
Interaction -- ... perhaps it might redirect attacker traffic to a honeypot";
"SNMP Interaction -- ability of the IDS to send an SNMP trap".  Each device
records what it was asked to do and when, so the harness can score response
capability and latency ("near real-time automated response", section 3.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..net.address import IPv4Address
from ..net.node import BorderRouter
from ..net.packet import Packet
from ..sim.engine import Engine

__all__ = ["Firewall", "RouterInterface", "SnmpTrapReceiver", "Honeypot"]


class Firewall:
    """A boundary packet filter with an updatable block list.

    Can be interposed on a packet path via :meth:`filter`; blocked sources
    are dropped.  ``update_latency_s`` models the rule-push delay from the
    management console.
    """

    def __init__(self, engine: Engine, name: str = "firewall",
                 update_latency_s: float = 0.2) -> None:
        if update_latency_s < 0:
            raise ConfigurationError("update_latency_s must be >= 0")
        self.engine = engine
        self.name = name
        self.update_latency_s = float(update_latency_s)
        self._blocked: set[int] = set()
        self.block_requests: List[Tuple[float, IPv4Address]] = []
        self.blocked_packets = 0

    def request_block(self, address: IPv4Address) -> None:
        """Asynchronously add ``address`` to the block list."""
        self.block_requests.append((self.engine.now, address))
        self.engine.schedule(self.update_latency_s, self._apply, address)

    def _apply(self, address: IPv4Address) -> None:
        self._blocked.add(address.value)

    def is_blocked(self, address: IPv4Address) -> bool:
        return address.value in self._blocked

    @property
    def block_list_size(self) -> int:
        return len(self._blocked)

    def filter(self, pkt: Packet, passthrough: Callable[[Packet], None]) -> None:
        """Packet-path hook: drop blocked sources, forward the rest."""
        if pkt.src.value in self._blocked:
            self.blocked_packets += 1
            return
        passthrough(pkt)


class RouterInterface:
    """Management-plane adapter for a :class:`BorderRouter`.

    Blocks at the border (further out than the firewall) and supports
    redirecting an attacker to a honeypot.
    """

    def __init__(self, engine: Engine, router: BorderRouter,
                 update_latency_s: float = 0.5) -> None:
        if update_latency_s < 0:
            raise ConfigurationError("update_latency_s must be >= 0")
        self.engine = engine
        self.router = router
        self.update_latency_s = float(update_latency_s)
        self.block_requests: List[Tuple[float, IPv4Address]] = []
        self.redirect_requests: List[Tuple[float, IPv4Address]] = []

    def request_block(self, address: IPv4Address) -> None:
        self.block_requests.append((self.engine.now, address))
        self.engine.schedule(self.update_latency_s, self.router.block, address)

    def request_redirect(self, address: IPv4Address, honeypot: "Honeypot") -> None:
        self.redirect_requests.append((self.engine.now, address))
        self.engine.schedule(self.update_latency_s, honeypot.attract, address)


class SnmpTrapReceiver:
    """Records SNMP traps sent by the IDS to network management."""

    def __init__(self, engine: Engine, name: str = "nms") -> None:
        self.engine = engine
        self.name = name
        self.traps: List[Tuple[float, str, str]] = []  # (time, oid, detail)

    def trap(self, oid: str, detail: str = "") -> None:
        self.traps.append((self.engine.now, oid, detail))

    @property
    def trap_count(self) -> int:
        return len(self.traps)


class Honeypot:
    """A decoy destination attacker traffic can be redirected to."""

    def __init__(self, engine: Engine, address: IPv4Address,
                 name: str = "honeypot") -> None:
        self.engine = engine
        self.address = address
        self.name = name
        self._attracted: set[int] = set()
        self.captured_packets: List[Packet] = []

    def attract(self, attacker: IPv4Address) -> None:
        self._attracted.add(attacker.value)

    def is_attracted(self, address: IPv4Address) -> bool:
        return address.value in self._attracted

    def capture(self, pkt: Packet) -> None:
        self.captured_packets.append(pkt)
