"""Multi-pattern matching kernel for the signature engine's hot path.

A signature rule set carries dozens of byte patterns (shellcode markers,
CGI probe paths, protocol banners).  Evaluated naively, every packet
payload is scanned once *per pattern* -- O(rules x patterns x bytes).  The
classic fix, used by every production signature IDS since Snort 2, is a
single multi-pattern pass: compile all patterns into one Aho-Corasick
automaton and scan each payload exactly once, then map the hits back to
the rules that own the patterns.

Two layers live here:

* :class:`AhoCorasick` -- a textbook pure-python automaton (goto trie +
  failure links, outputs merged through the failure chain at build time)
  that enumerates every distinct pattern occurring in a haystack in one
  left-to-right pass.
* :class:`MultiPatternMatcher` -- the engine-facing wrapper.  It dedups
  patterns, assigns stable integer ids, and *gates* the python automaton
  behind a single compiled alternation regex: one C-speed ``re.search``
  answers "does any pattern occur at all?", and only payloads that gate in
  (attack traffic, by construction a small minority) pay for the python
  enumeration pass.  Benign payloads -- the overwhelming hot path -- cost
  one scan total instead of one scan per pattern.

The result set is exact, not approximate: :meth:`MultiPatternMatcher.scan`
returns precisely the ids of patterns with at least one occurrence, so the
indexed :class:`~repro.ids.signature.SignatureEngine` reproduces the
linear engine's matches byte-for-byte.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from ..errors import ConfigurationError

__all__ = ["AhoCorasick", "MultiPatternMatcher"]

#: Shared empty result for the no-pattern / no-hit fast paths.
_EMPTY: FrozenSet[int] = frozenset()


class AhoCorasick:
    """Aho-Corasick automaton over a fixed list of byte patterns.

    Pattern ids are positions in the input sequence.  Duplicate patterns
    are legal: every id whose pattern occurs is reported.

    >>> ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    >>> sorted(ac.search_ids(b"ushers"))
    [0, 1, 3]
    """

    __slots__ = ("patterns", "_goto", "_fail", "_out")

    def __init__(self, patterns: Sequence[bytes]) -> None:
        self.patterns: List[bytes] = [bytes(p) for p in patterns]
        if any(not p for p in self.patterns):
            raise ConfigurationError("patterns must be non-empty byte strings")
        # goto trie: node -> {byte: node}; out: node -> pattern ids ending here
        goto: List[Dict[int, int]] = [{}]
        out: List[Tuple[int, ...]] = [()]
        for pid, pattern in enumerate(self.patterns):
            node = 0
            for byte in pattern:
                nxt = goto[node].get(byte)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][byte] = nxt
                    goto.append({})
                    out.append(())
                node = nxt
            out[node] += (pid,)
        # breadth-first failure links; merge each node's output with its
        # failure target's so one lookup per visited node yields every
        # pattern ending there (including proper-suffix patterns)
        fail = [0] * len(goto)
        queue: deque = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for byte, nxt in goto[node].items():
                queue.append(nxt)
                f = fail[node]
                while f and byte not in goto[f]:
                    f = fail[f]
                target = goto[f].get(byte, 0)
                if target == nxt:  # a depth-1 node falls back to the root
                    target = 0
                fail[nxt] = target
                out[nxt] += out[target]
        self._goto = goto
        self._fail = fail
        self._out = out

    def __len__(self) -> int:
        return len(self.patterns)

    def iter_matches(self, haystack: bytes) -> Iterator[Tuple[int, int]]:
        """Yield ``(pattern_id, end_offset)`` for every occurrence."""
        goto, fail, out = self._goto, self._fail, self._out
        node = 0
        for pos, byte in enumerate(haystack):
            while node and byte not in goto[node]:
                node = fail[node]
            node = goto[node].get(byte, 0)
            for pid in out[node]:
                yield pid, pos + 1

    def search_ids(self, haystack: bytes) -> Set[int]:
        """The set of pattern ids with at least one occurrence."""
        goto, fail, out = self._goto, self._fail, self._out
        node = 0
        found: Set[int] = set()
        for byte in haystack:
            while node and byte not in goto[node]:
                node = fail[node]
            node = goto[node].get(byte, 0)
            o = out[node]
            if o:
                found.update(o)
        return found


class MultiPatternMatcher:
    """Deduped pattern registry + gated one-pass payload scanner.

    Built once per indexed :class:`~repro.ids.signature.SignatureEngine`
    over the union of every payload/stream rule's patterns.  Rules hold
    ``(pattern, id)`` tuples and test membership of the id in the scan
    result, preserving their own pattern-priority order.
    """

    __slots__ = ("patterns", "_ids", "_automaton", "_gate")

    def __init__(self, patterns: Iterable[bytes]) -> None:
        # dict.fromkeys dedups while preserving first-seen order, so ids
        # are stable for a given rule set
        self.patterns: List[bytes] = list(dict.fromkeys(
            bytes(p) for p in patterns))
        if any(not p for p in self.patterns):
            raise ConfigurationError("patterns must be non-empty byte strings")
        self._ids: Dict[bytes, int] = {
            p: i for i, p in enumerate(self.patterns)}
        self._automaton = AhoCorasick(self.patterns) if self.patterns else None
        self._gate = (re.compile(b"|".join(re.escape(p)
                                           for p in self.patterns))
                      if self.patterns else None)

    def __len__(self) -> int:
        return len(self.patterns)

    def pattern_id(self, pattern: bytes) -> int:
        """Stable id of a registered pattern (KeyError if unknown)."""
        return self._ids[bytes(pattern)]

    def scan(self, payload: bytes) -> FrozenSet[int]:
        """Ids of every pattern occurring anywhere in ``payload``.

        The common benign case returns after one C-speed regex pass; the
        exact python enumeration runs only when some pattern is present.
        """
        if self._gate is None or self._gate.search(payload) is None:
            return _EMPTY
        return frozenset(self._automaton.search_ids(payload))
