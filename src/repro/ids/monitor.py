"""Monitoring subprocess: operator visibility and notification.

Section 2.2: "The monitoring subprocess presents a view of the threat to the
operator ... Monitors are required to notify an operator whenever a threat is
severe according to a security policy."  The monitor is where Type-I error
hurts operationally: "frequent alerts on trivial or normal events ... lead to
the IDS being ignored by the operators."

:class:`Monitor` keeps the full alert history (queryable), applies the
security policy to decide notifications and response requests, and records
everything with timestamps so the harness can measure *Timeliness* and
notification latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.engine import Engine
from .alert import Alert, Notification, Severity
from .component import Component, Subprocess
from .policy import ResponseAction, SecurityPolicy

__all__ = ["Monitor"]


class Monitor(Component):
    """Monitoring console.

    Parameters
    ----------
    policy:
        The security policy mapping alerts to actions.
    notify_delay_s:
        Console processing delay between receiving an alert and the
        operator notification going out.
    channels:
        Notification channels available ("console", "email", "pager", ...);
        variety feeds the *variety of operator notification* metric.
    """

    kind = Subprocess.MONITOR

    def __init__(
        self,
        engine: Engine,
        name: str,
        policy: Optional[SecurityPolicy] = None,
        notify_delay_s: float = 0.1,
        channels: Sequence[str] = ("console",),
    ) -> None:
        super().__init__(name)
        if notify_delay_s < 0:
            raise ConfigurationError("notify_delay_s must be >= 0")
        if not channels:
            raise ConfigurationError("at least one notification channel required")
        self.engine = engine
        self.policy = policy or SecurityPolicy.default()
        self.notify_delay_s = float(notify_delay_s)
        self.channels = tuple(channels)

        self.alerts: List[Alert] = []
        self.notifications: List[Notification] = []
        self.error_reports: List[Tuple[float, str]] = []
        self._responder: Optional[Callable[[ResponseAction, Alert], None]] = None

        # graceful-degradation state (dormant until a fault injector uses
        # the partition/heal hooks; clean runs never enter these paths)
        self.partitioned = False
        self.partitions = 0
        self.deferred_notifications = 0
        self.suppressed_responses = 0
        self._deferred: List[Alert] = []

    # ------------------------------------------------------------------
    def set_responder(self, responder: Callable[[ResponseAction, Alert], None]) -> None:
        """Attach the management console's response dispatcher (1:1c)."""
        self._responder = responder

    # ------------------------------------------------------------------
    def receive(self, alert: Alert) -> None:
        """Ingest an analyzer alert; apply policy."""
        self.alerts.append(alert)
        actions = self.policy.actions_for(alert)
        for action in actions:
            if action is ResponseAction.NOTIFY:
                self.engine.schedule(self.notify_delay_s, self._notify, alert)
            elif action is ResponseAction.LOG_ONLY:
                pass
            elif self._responder is not None:
                if self.partitioned:
                    # response requests need the (unreachable) management
                    # console; they are lost, not replayed -- stale
                    # responses after a partition heals would be wrong
                    self.suppressed_responses += 1
                else:
                    self._responder(action, alert)
            # actions other than NOTIFY/LOG with no console attached are
            # silently unavailable (an IDS without a manager cannot respond)

    def _notify(self, alert: Alert) -> None:
        if self.partitioned:
            # store-and-forward: notifications queue locally and go out
            # when the partition heals, at heal time (the delay is what
            # the timeliness delta measures)
            self._deferred.append(alert)
            self.deferred_notifications += 1
            return
        for channel in self.channels:
            self.notifications.append(
                Notification(time=self.engine.now, channel=channel, alert=alert))

    # ------------------------------------------------------------------
    # fault-injection hooks (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Cut the monitor off from operator and management console."""
        if self.partitioned:
            return
        self.partitioned = True
        self.partitions += 1

    def heal(self) -> None:
        """Restore connectivity and flush the deferred notifications."""
        if not self.partitioned:
            return
        self.partitioned = False
        backlog, self._deferred = self._deferred, []
        for alert in backlog:
            self._notify(alert)

    def report_error(self, message: str, time: float) -> None:
        """Failure-notification channel used by sensors (Error Reporting)."""
        self.error_reports.append((time, message))

    # ------------------------------------------------------------------
    # operator queries ("historical querying ability")
    # ------------------------------------------------------------------
    def query(
        self,
        min_severity: Severity = Severity.INFO,
        category_prefix: Optional[str] = None,
        since: float = 0.0,
        src: Optional[object] = None,
    ) -> List[Alert]:
        out = []
        for a in self.alerts:
            if a.severity < min_severity or a.time < since:
                continue
            if category_prefix is not None and not a.category.startswith(category_prefix):
                continue
            if src is not None and a.src != src:
                continue
            out.append(a)
        return out

    def alert_trend(self, window_s: float = 60.0,
                    category_prefix: Optional[str] = None) -> List[Tuple[float, int]]:
        """Alert counts per time window ("Trend Analysis", Table 3's
        companion list): ``[(window_start, count), ...]`` for non-empty
        windows, in time order."""
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        counts: Dict[int, int] = {}
        for alert in self.alerts:
            if category_prefix is not None and not alert.category.startswith(
                    category_prefix):
                continue
            counts[int(alert.time // window_s)] = counts.get(
                int(alert.time // window_s), 0) + 1
        return [(idx * window_s, n) for idx, n in sorted(counts.items())]

    def severity_histogram(self) -> Dict[Severity, int]:
        hist: Dict[Severity, int] = {s: 0 for s in Severity}
        for a in self.alerts:
            hist[a.severity] += 1
        return hist

    @property
    def alert_count(self) -> int:
        return len(self.alerts)
