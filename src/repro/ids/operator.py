"""Operator workload model: what actually happens to notifications.

Section 2.2: "Frequent alerts on trivial or normal events result in a high
false-positive rate (Type I error) and lead to the IDS being ignored by
the operators."  This module gives that sentence a mechanism: a simulated
watch-stander handles notifications sequentially with a per-alert triage
time; notifications that wait longer than the operator's patience are
*abandoned* -- the measured fraction of abandoned notifications is the
operational face of a noisy IDS, feeding the human-factors extension's
Operator Workload / Trust Calibration metrics with observations instead of
facts.
"""

from __future__ import annotations

from typing import Deque, List, Optional, Tuple
from collections import deque

from ..errors import ConfigurationError
from ..sim.engine import Engine
from .alert import Notification

__all__ = ["OperatorModel", "replay_notifications"]


def replay_notifications(
    notifications,
    triage_time_s: float = 30.0,
    patience_s: float = 600.0,
) -> "OperatorModel":
    """Post-hoc operator simulation over a recorded notification stream.

    Feeds a monitor's notification history (e.g. after an accuracy run)
    through a fresh :class:`OperatorModel` on its own clock and returns the
    model with its handled/abandoned statistics populated -- the measured
    input for the Operator Workload / Trust Calibration extension metrics.
    """
    engine = Engine()
    operator = OperatorModel(engine, triage_time_s=triage_time_s,
                             patience_s=patience_s)
    for notification in notifications:
        engine.schedule_at(notification.time, operator.notify, notification)
    engine.run()
    operator.flush()
    return operator


class OperatorModel:
    """A single operator triaging notifications in FIFO order.

    Parameters
    ----------
    triage_time_s:
        Time to assess one notification.
    patience_s:
        Maximum queue wait before a notification is abandoned unread
        (the "ignored IDS" regime begins when this starts happening).

    Attach via :meth:`notify` -- e.g. wrap the monitor's notification list
    or call it from a monitor subclass.  Statistics accumulate until read.
    """

    def __init__(self, engine: Engine, triage_time_s: float = 30.0,
                 patience_s: float = 600.0, name: str = "operator") -> None:
        if triage_time_s <= 0:
            raise ConfigurationError("triage_time_s must be positive")
        if patience_s <= 0:
            raise ConfigurationError("patience_s must be positive")
        self.engine = engine
        self.triage_time_s = float(triage_time_s)
        self.patience_s = float(patience_s)
        self.name = name

        self._queue: Deque[Tuple[float, Notification]] = deque()
        self._busy = False
        self.handled: List[Tuple[float, Notification]] = []
        self.abandoned: List[Notification] = []

    # ------------------------------------------------------------------
    def notify(self, notification: Notification) -> None:
        """A notification reaches the operator's queue."""
        self._queue.append((self.engine.now, notification))
        if not self._busy:
            self._next()

    def _next(self) -> None:
        now = self.engine.now
        while self._queue:
            arrived, notification = self._queue.popleft()
            if now - arrived > self.patience_s:
                self.abandoned.append(notification)
                continue
            self._busy = True
            self.engine.schedule(self.triage_time_s, self._finish,
                                 notification)
            return
        self._busy = False

    def _finish(self, notification: Notification) -> None:
        self.handled.append((self.engine.now, notification))
        self._busy = False
        self._next()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Abandon anything still queued past patience at the current time
        (call at the end of an observation window)."""
        now = self.engine.now
        kept: Deque[Tuple[float, Notification]] = deque()
        while self._queue:
            arrived, notification = self._queue.popleft()
            if now - arrived > self.patience_s:
                self.abandoned.append(notification)
            else:
                kept.append((arrived, notification))
        self._queue = kept

    @property
    def offered(self) -> int:
        return len(self.handled) + len(self.abandoned) + len(self._queue) + \
            (1 if self._busy else 0)

    @property
    def abandoned_fraction(self) -> float:
        """Fraction of *resolved* notifications that were abandoned."""
        total = len(self.handled) + len(self.abandoned)
        if total == 0:
            return 0.0
        return len(self.abandoned) / total

    def mean_response_time(self) -> float:
        """Mean queue-to-handled latency of handled notifications."""
        if not self.handled:
            return float("nan")
        # handled entries record completion time; latency relative to the
        # notification's own timestamp
        total = sum(done - n.time for done, n in self.handled)
        return total / len(self.handled)
