"""Host audit trails: the data host-based IDSs actually read.

Section 2.1: "An IDS that monitors a host typically examines information
available on the host such as log files."  This module turns traffic
delivered to a host into the audit events its operating system would log,
at a depth set by the audit level:

* **nominal** event logging (the 3-5 % CPU band) records logins and
  connections;
* **C2-level** audit (DoD Controlled Access Protection, the ~20 % band)
  additionally records application *commands* -- which is precisely the
  visibility needed to catch the section-3.3 insider case, where rogue
  commands ride an otherwise-normal trusted-host session.  The audit depth
  buys detection coverage with host CPU: the trade the scorecard prices.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional

from ..net.packet import Packet, Protocol, TcpFlags

__all__ = [
    "AuditEventType",
    "AuditEvent",
    "AuditTrail",
    "packet_to_events",
    "KNOWN_CLUSTER_COMMANDS",
]

#: commands the cluster's operators legitimately issue (host allowlist)
KNOWN_CLUSTER_COMMANDS = frozenset({"sync", "rebalance", "status",
                                    "checkpoint"})

_CLUSTER_MAGIC = b"\x53\x4d\x54\x52"  # "RTMS" packed little-endian


class AuditEventType(enum.Enum):
    CONNECTION = "connection"
    LOGIN_SUCCESS = "login-success"
    LOGIN_FAILURE = "login-failure"
    COMMAND = "command"


#: event types recorded at each audit depth
NOMINAL_EVENTS = frozenset({AuditEventType.CONNECTION,
                            AuditEventType.LOGIN_SUCCESS,
                            AuditEventType.LOGIN_FAILURE})
C2_EVENTS = frozenset(AuditEventType)


@dataclass(frozen=True)
class AuditEvent:
    """One host audit record."""

    time: float
    etype: AuditEventType
    subject: str          # source address (the acting principal's origin)
    detail: str
    #: ground-truth side channel (harness only; never read by detectors'
    #: decision logic beyond equality with None)
    truth_attack_id: Optional[str] = None


class AuditTrail:
    """Bounded in-memory audit log of one host."""

    def __init__(self, capacity: int = 50_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._events: List[AuditEvent] = []
        self.total_logged = 0
        self.overwritten = 0

    def log(self, event: AuditEvent) -> None:
        self.total_logged += 1
        if len(self._events) >= self.capacity:
            self._events.pop(0)
            self.overwritten += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def query(
        self,
        etype: Optional[AuditEventType] = None,
        subject: Optional[str] = None,
        since: float = 0.0,
    ) -> List[AuditEvent]:
        out = []
        for e in self._events:
            if e.time < since:
                continue
            if etype is not None and e.etype is not etype:
                continue
            if subject is not None and e.subject != subject:
                continue
            out.append(e)
        return out


def _parse_cluster_command(payload: bytes) -> Optional[str]:
    """Extract the command name from a cluster control message, if any."""
    if len(payload) < 28 or not payload.startswith(_CLUSTER_MAGIC):
        return None
    (mtype,) = struct.unpack_from("<H", payload, 4)
    if mtype != 2:
        return None
    return payload[12:28].rstrip(b"\x00").decode("ascii", errors="replace")


def packet_to_events(pkt: Packet, now: float,
                     depth: frozenset = NOMINAL_EVENTS) -> List[AuditEvent]:
    """Derive the audit events a host would log for one delivered packet.

    ``depth`` selects the recorded event types (``NOMINAL_EVENTS`` or
    ``C2_EVENTS``).
    """
    events: List[AuditEvent] = []
    subject = str(pkt.src)
    truth = pkt.attack_id

    def add(etype: AuditEventType, detail: str) -> None:
        if etype in depth:
            events.append(AuditEvent(time=now, etype=etype, subject=subject,
                                     detail=detail, truth_attack_id=truth))

    # connection establishment (TCP SYN toward this host)
    if (pkt.proto is Protocol.TCP and pkt.has_flag(TcpFlags.SYN)
            and not pkt.has_flag(TcpFlags.ACK)):
        add(AuditEventType.CONNECTION, f"tcp connect to port {pkt.dport}")

    payload = pkt.payload
    if payload:
        if b"Login incorrect" in payload:
            add(AuditEventType.LOGIN_FAILURE, "telnet login failure")
        elif b"Last login" in payload:
            add(AuditEventType.LOGIN_SUCCESS, "telnet login success")
        command = _parse_cluster_command(payload)
        if command is not None:
            add(AuditEventType.COMMAND, command)
    return events
