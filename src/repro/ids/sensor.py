"""Sensors: the traffic-facing subprocess.

"The sensors receive traffic from the load balancer (if any exists) and
separate out the suspicious traffic for further analysis" (section 2.2).

The processing model gives sensors real capacity limits so the Table-3
performance metrics are *observable*:

* Each packet costs ``header_ops`` plus, for deep-inspection sensors,
  ``per_byte_ops`` per materialized payload byte, plus ``parse_ops`` when the
  payload opens with a recognizable application-protocol prefix.  The last
  term is the mechanism behind lesson 1: random flood data never takes the
  parse path, so it under-loads a content-inspecting sensor and overstates
  its capacity.
* A serialization horizon (``busy_until``) models the single inspection
  pipeline; packets arriving when the backlog exceeds ``max_queue_delay_s``
  are dropped unseen (missed attacks under overload -> the zero-loss
  throughput experiment).
* Sustained drops beyond ``lethal_drop_rate`` pps crash the sensor -- the
  *Network Lethal Dose*.  What happens next is the *Error Reporting and
  Recovery* metric: :class:`FailureMode` reproduces the paper's low /
  average / high scoring anchors (hang silently / cold reboot / service
  restart with near-real-time error notification).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Protocol as TypingProtocol, Sequence, Tuple

from ..errors import ConfigurationError
from ..net.packet import Packet
from ..sim.engine import Engine
from ..sim.stats import RateMeter, Welford
from .alert import Detection, Severity
from .anomaly import AnomalyEngine
from .component import Component, Subprocess
from .signature import SignatureEngine

__all__ = [
    "FailureMode",
    "Detector",
    "SignatureDetector",
    "AnomalyDetector",
    "Sensor",
    "PROTOCOL_PREFIXES",
]

#: Application-payload prefixes that trigger the protocol-parse cost path.
PROTOCOL_PREFIXES: Tuple[bytes, ...] = (
    b"GET ", b"POST ", b"HEAD ", b"HTTP/", b"HELO", b"MAIL ", b"login:",
    b"\x53\x4d\x54\x52",  # "RTMS" cluster magic as packed little-endian

)


class FailureMode(enum.Enum):
    """Behaviour after a lethal overload (Error Reporting & Recovery
    anchors, section 3.2)."""

    HANG = "hang"        # low score: no notification, stays down forever
    REBOOT = "reboot"    # average: cold reboot, logged afterwards
    RESTART = "restart"  # high: service restart + near-real-time error alert


class Detector(TypingProtocol):
    """Detection engine protocol consumed by :class:`Sensor`."""

    sensitivity: float

    def process(self, pkt: Packet, now: float) -> List[Tuple[str, Severity, float, str]]:
        """Return ``(category, severity, score, detail)`` hits."""
        ...

    def reset(self) -> None: ...


class SignatureDetector:
    """Adapter presenting a :class:`SignatureEngine` as a Detector."""

    def __init__(self, engine: Optional[SignatureEngine] = None,
                 sensitivity: float = 0.5,
                 payload_inspection: bool = True,
                 engine_kind: Optional[str] = None) -> None:
        if engine is None:
            from .signature import default_ruleset
            engine = SignatureEngine(default_ruleset(payload_inspection),
                                     sensitivity=sensitivity,
                                     engine=engine_kind)
        elif engine_kind is not None and engine.engine_kind != engine_kind:
            raise ConfigurationError(
                f"engine was built with kind {engine.engine_kind!r}, "
                f"conflicting with engine_kind={engine_kind!r}")
        self.engine = engine
        self.engine.sensitivity = sensitivity

    @property
    def sensitivity(self) -> float:
        return self.engine.sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        self.engine.sensitivity = value

    def process(self, pkt: Packet, now: float):
        return [(m.category, m.severity, m.score, m.detail)
                for m in self.engine.inspect(pkt, now)]

    def reset(self) -> None:
        self.engine.reset()


class AnomalyDetector:
    """Adapter presenting an :class:`AnomalyEngine` as a Detector."""

    def __init__(self, engine: Optional[AnomalyEngine] = None,
                 sensitivity: float = 0.5,
                 path: Optional[str] = None) -> None:
        if engine is None:
            engine = AnomalyEngine(sensitivity=sensitivity, path=path)
        elif path is not None and engine.anomaly_path != path:
            raise ConfigurationError(
                f"engine was built with path {engine.anomaly_path!r}, "
                f"conflicting with path={path!r}")
        self.engine = engine
        self.engine.sensitivity = sensitivity

    @property
    def sensitivity(self) -> float:
        return self.engine.sensitivity

    @sensitivity.setter
    def sensitivity(self, value: float) -> None:
        self.engine.sensitivity = value

    def train(self, pkt: Packet, now: float) -> None:
        self.engine.train(pkt, now)

    def freeze(self) -> None:
        self.engine.freeze()

    def process(self, pkt: Packet, now: float):
        out = []
        for feature, score in self.engine.inspect(pkt, now):
            out.append((f"anomaly-{feature}", AnomalyEngine.severity_for(score),
                        score, ""))
        return out

    def reset(self) -> None:
        self.engine.reset_live_state()


class Sensor(Component):
    """A network sensor with finite inspection capacity.

    Parameters
    ----------
    engine:
        Simulation engine.
    detector:
        Detection engine (signature / anomaly / hybrid adapter).
    ops_rate:
        Inspection budget in abstract operations per second.
    header_ops / per_byte_ops / parse_ops:
        Cost model (see module docstring).  ``per_byte_ops=0`` models a
        header-only sensor.
    max_queue_delay_s:
        Backlog bound; packets beyond it are dropped unseen.
    lethal_drop_rate:
        Sustained drops (packets/s over 1 s) that crash the sensor; ``None``
        disables crashing.
    failure_mode:
        Post-crash behaviour.
    """

    kind = Subprocess.SENSOR

    def __init__(
        self,
        engine: Engine,
        name: str,
        detector: Detector,
        ops_rate: float = 40e6,
        header_ops: float = 500.0,
        per_byte_ops: float = 20.0,
        parse_ops: float = 4000.0,
        max_queue_delay_s: float = 0.05,
        lethal_drop_rate: Optional[float] = 2000.0,
        failure_mode: FailureMode = FailureMode.RESTART,
        reboot_time_s: float = 60.0,
        restart_time_s: float = 2.0,
    ) -> None:
        super().__init__(name)
        if ops_rate <= 0:
            raise ConfigurationError("ops_rate must be positive")
        if max_queue_delay_s <= 0:
            raise ConfigurationError("max_queue_delay_s must be positive")
        self.engine = engine
        self.detector = detector
        self.ops_rate = float(ops_rate)
        self.header_ops = float(header_ops)
        self.per_byte_ops = float(per_byte_ops)
        self.parse_ops = float(parse_ops)
        self.max_queue_delay_s = float(max_queue_delay_s)
        self.lethal_drop_rate = lethal_drop_rate
        self.failure_mode = failure_mode
        self.reboot_time_s = float(reboot_time_s)
        self.restart_time_s = float(restart_time_s)

        self._busy_until = 0.0
        self._sinks: List[Callable[[Detection], None]] = []
        self._error_sink: Optional[Callable[[str, float], None]] = None
        self._rr = 0  # round-robin cursor over sinks

        # state / counters
        self.up = True
        self.crashes = 0
        self.injected_failures = 0
        self._forced_down = False   # held down by a fault injector
        self._slowdown = 1.0        # inspection slowdown factor (1.0 = none)
        self.received = 0
        self.processed = 0
        self.dropped_overload = 0
        self.dropped_down = 0
        self.detections_emitted = 0
        self.busy_ops = 0.0
        self.inspect_delay = Welford()
        self._drop_meter = RateMeter(bin_width=0.5, history=8)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[Detection], None]) -> None:
        """Attach an analyzer-facing delivery callback."""
        self._sinks.append(sink)

    def set_error_sink(self, sink: Callable[[str, float], None]) -> None:
        """Channel for failure notifications (RESTART mode reports here)."""
        self._error_sink = sink

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def packet_cost_ops(self, pkt: Packet) -> float:
        ops = self.header_ops
        if self.per_byte_ops > 0.0:
            ops += self.per_byte_ops * pkt.payload_len
            if pkt.payload is not None and pkt.payload.startswith(PROTOCOL_PREFIXES):
                ops += self.parse_ops
        return ops

    @property
    def deep_inspection(self) -> bool:
        return self.per_byte_ops > 0.0

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def ingest(self, pkt: Packet) -> None:
        """Offer one packet to the sensor (called by tap/load balancer)."""
        now = self.engine.now
        self.received += 1
        if not self.up:
            self.dropped_down += 1
            return
        backlog = self._busy_until - now
        if backlog > self.max_queue_delay_s:
            self.dropped_overload += 1
            self._drop_meter.add(now)
            if (self.lethal_drop_rate is not None
                    and self._drop_meter.rate(now, 1.0) >= self.lethal_drop_rate):
                self._crash(now)
            return
        cost_ops = self.packet_cost_ops(pkt)
        start = max(now, self._busy_until)
        # _slowdown is exactly 1.0 outside an injected overload window, so
        # the multiplication is bit-neutral for clean runs
        finish = start + cost_ops * self._slowdown / self.ops_rate
        self._busy_until = finish
        self.busy_ops += cost_ops
        self.engine.schedule_at(finish, self._complete, pkt, now)

    def _complete(self, pkt: Packet, arrived: float) -> None:
        if not self.up:
            self.dropped_down += 1
            return
        now = self.engine.now
        self.processed += 1
        self.inspect_delay.add(now - arrived)
        hits = self.detector.process(pkt, now)
        for category, severity, score, detail in hits:
            det = Detection(
                time=now, sensor=self.name, category=category,
                src=pkt.src, dst=pkt.dst, score=score, severity=severity,
                detail=detail, packet_pid=pkt.pid,
                truth_attack_id=pkt.attack_id)
            self._deliver(det)

    def _deliver(self, det: Detection) -> None:
        if not self._sinks:
            return
        self.detections_emitted += 1
        # M:M sensors spread across analyzers round-robin
        sink = self._sinks[self._rr % len(self._sinks)]
        self._rr += 1
        sink(det)

    # ------------------------------------------------------------------
    # failure behaviour
    # ------------------------------------------------------------------
    def _crash(self, now: float) -> None:
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self._busy_until = now
        if self.failure_mode is FailureMode.HANG:
            return  # silent, permanent: the low-score anchor
        if self.failure_mode is FailureMode.REBOOT:
            self.engine.schedule(self.reboot_time_s, self._recover, "cold reboot")
            return
        # RESTART: near-real-time error report over the alert channel
        if self._error_sink is not None:
            self._error_sink(f"sensor {self.name} failed; restarting", now)
        self.engine.schedule(self.restart_time_s, self._recover, "service restart")

    def _recover(self, how: str) -> None:
        if self._forced_down:
            # an injected outage outlives natural recovery: the fault
            # injector alone decides when a forced-down sensor returns
            return
        self.up = True
        self._busy_until = self.engine.now
        self._drop_meter = RateMeter(bin_width=0.5, history=8)
        if self.failure_mode is FailureMode.REBOOT and self._error_sink is not None:
            # logged and reported only after the fact (the "average" anchor)
            self._error_sink(f"sensor {self.name} recovered after {how}",
                             self.engine.now)

    # ------------------------------------------------------------------
    # fault-injection hooks (driven by repro.sim.faults.FaultInjector)
    # ------------------------------------------------------------------
    def force_fail(self) -> None:
        """Injected crash: the sensor drops everything until
        :meth:`force_restore` (no :class:`FailureMode` self-recovery)."""
        if self._forced_down:
            return
        self._forced_down = True
        self.injected_failures += 1
        if self.up:
            self.up = False
            self._busy_until = self.engine.now

    def force_restore(self) -> None:
        """End an injected outage; the sensor comes back with a clean
        backlog and drop meter (cold restart semantics)."""
        if not self._forced_down:
            return
        self._forced_down = False
        self.up = True
        self._busy_until = self.engine.now
        self._drop_meter = RateMeter(bin_width=0.5, history=8)

    def set_slowdown(self, factor: float) -> None:
        """Injected overload: every inspection takes ``factor``x as long,
        so the backlog bound trips earlier and overload drops mount."""
        if factor < 1.0:
            raise ConfigurationError("slowdown factor must be >= 1")
        self._slowdown = float(factor)

    def clear_slowdown(self) -> None:
        self._slowdown = 1.0

    # ------------------------------------------------------------------
    @property
    def drop_ratio(self) -> float:
        if self.received == 0:
            return 0.0
        return (self.dropped_overload + self.dropped_down) / self.received

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of the ops budget consumed so far."""
        t = self.engine.now if elapsed is None else elapsed
        if t <= 0:
            return 0.0
        return self.busy_ops / (self.ops_rate * t)
