"""Alerts, detections and notifications.

The data that flows *up* the Figure-1 pipeline: sensors emit
:class:`Detection` events for suspicious traffic; analyzers classify them
into :class:`Alert` s with a threat severity; the monitor turns severe alerts
into operator :class:`Notification` s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..net.address import IPv4Address

__all__ = ["Severity", "Detection", "Alert", "Notification"]


class Severity(enum.IntEnum):
    """Threat severity ladder; ordering is meaningful (CRITICAL > HIGH...)."""

    INFO = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


@dataclass(frozen=True)
class Detection:
    """Raw suspicious-traffic event produced by a sensor.

    ``category`` is the sensor's hypothesis ("syn-scan", "overflow-sig",
    "rate-anomaly", ...); ``score`` is engine confidence in [0, 1].
    """

    time: float
    sensor: str
    category: str
    src: IPv4Address
    dst: IPv4Address
    score: float
    severity: Severity = Severity.MEDIUM
    detail: str = ""
    #: pid of the triggering packet (diagnostic only)
    packet_pid: Optional[int] = None
    #: Ground-truth side channel for the evaluation harness: the attack id
    #: of the triggering packet, or ``None`` for benign traffic.  Detection
    #: logic, analyzers, monitors and policies never read this field -- it
    #: exists solely so the harness can compute the Figure-3 ratios.
    truth_attack_id: Optional[str] = None


@dataclass(frozen=True)
class Alert:
    """Analyzed threat event, as presented to the monitoring subprocess."""

    time: float
    analyzer: str
    category: str
    src: IPv4Address
    dst: IPv4Address
    severity: Severity
    confidence: float
    detections: int = 1
    correlation_id: Optional[str] = None
    detail: str = ""
    #: Ground-truth side channel (see :class:`Detection.truth_attack_id`).
    truth_attack_id: Optional[str] = None


@dataclass(frozen=True)
class Notification:
    """Operator notification issued by the monitor per security policy."""

    time: float
    channel: str
    alert: Alert

    @property
    def latency_from(self) -> float:
        """Notification time relative to the underlying alert."""
        return self.time - self.alert.time
