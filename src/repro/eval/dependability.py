"""Dependability experiment: measured behaviour under injected faults.

The paper's Architectural metrics credit properties like *Dynamic
Adaptability* and *Error Reporting and Recovery* from analysis of the
product's design (section 3.1).  This module turns that static credit
into measured evidence: the same accuracy scenario is replayed while a
:class:`~repro.sim.faults.FaultPlan` crashes components, saturates
sensors, stalls analyzers, partitions the monitor, and degrades the
monitored link -- and the detection-rate and timeliness deltas against
the clean run become two scorecard measurements:

* **Availability Under Faults** -- the analytic time-and-component-
  averaged service availability of the faulted run (exactly reproducible,
  in ``[0, 1]``, monotone in fault severity);
* **Graceful Degradation** -- the slope of lost notification service per
  unit fault severity, fitted through the origin over the measured
  severity ladder (a brittle product loses service faster than the
  faults alone explain; a graceful one degrades no faster than its
  availability).

Both metrics live in the extension catalog
(:func:`repro.core.extensions.dependability_metrics`), so evaluations
that never ask for faults render byte-identical output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.faults import FaultInjector, FaultPlan
from .ground_truth import AccuracyResult
from .testbed import EvalTestbed

if TYPE_CHECKING:  # pragma: no cover - import cycle with runner
    from .runner import EvaluationOptions

__all__ = [
    "FaultedRun",
    "DependabilityReport",
    "run_scenario_under_faults",
    "measure_dependability",
    "score_dependability",
]

#: default severity ladder for the degradation fit
DEFAULT_SEVERITIES: Tuple[float, ...] = (0.5, 1.0)


def _notified_ratio(accuracy: AccuracyResult) -> float:
    """Fraction of actual attacks whose first notification went out."""
    if not accuracy.actual:
        return 1.0
    notified = sum(
        1 for attack_id, delay in accuracy.notification_delay.items()
        if attack_id not in accuracy.missed and math.isfinite(delay))
    return notified / len(accuracy.actual)


def _mean_notify_delay(accuracy: AccuracyResult) -> float:
    """Mean first-notification delay over *notified* attacks (NaN if none)."""
    delays = [delay for attack_id, delay
              in accuracy.notification_delay.items()
              if attack_id not in accuracy.missed and math.isfinite(delay)]
    if not delays:
        return float("nan")
    return sum(delays) / len(delays)


@dataclass(frozen=True)
class FaultedRun:
    """One scenario replay under a fault plan scaled to ``severity``."""

    severity: float
    #: analytic service availability from the injector's bookkeeping
    availability: float
    detection_ratio: float
    #: fraction of attacks whose first operator notification went out
    notified_ratio: float
    #: mean first-notification delay (NaN when nothing was notified)
    mean_report_delay_s: float
    #: graceful-degradation accounting gathered from the hooks
    counters: Dict[str, int]


@dataclass(frozen=True)
class DependabilityReport:
    """Clean-vs-faulted comparison for one (product, plan)."""

    product: str
    plan: str
    seed: int
    baseline_detection_ratio: float
    baseline_notified_ratio: float
    baseline_mean_report_delay_s: float
    #: severity-ascending; the last run is the plan at full severity
    runs: Tuple[FaultedRun, ...]

    @property
    def availability(self) -> float:
        """Availability at full plan severity (monotone, so the minimum)."""
        if not self.runs:
            return 1.0
        return min(run.availability for run in self.runs)

    @property
    def detection_delta(self) -> float:
        """Detection-ratio loss at full severity (positive = degraded)."""
        if not self.runs:
            return 0.0
        return self.baseline_detection_ratio - self.runs[-1].detection_ratio

    @property
    def timeliness_delta_s(self) -> float:
        """Mean-notification-delay growth at full severity.

        Infinite when faults silenced a product that notified cleanly;
        zero when neither run produced a notification to time.
        """
        if not self.runs:
            return 0.0
        faulted = self.runs[-1].mean_report_delay_s
        clean = self.baseline_mean_report_delay_s
        if math.isnan(clean):
            return 0.0
        if math.isnan(faulted):
            return float("inf")
        return faulted - clean

    @property
    def degradation_slope(self) -> float:
        """Lost notification service per unit severity (origin-anchored
        least squares over the severity ladder; 0 = fully graceful)."""
        num = 0.0
        den = 0.0
        for run in self.runs:
            loss = max(self.baseline_notified_ratio - run.notified_ratio,
                       0.0)
            num += run.severity * loss
            den += run.severity * run.severity
        return num / den if den > 0.0 else 0.0


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def run_scenario_under_faults(
    testbed: EvalTestbed,
    scenario,
    plan: FaultPlan,
    settle_s: float = 5.0,
) -> Tuple[AccuracyResult, FaultInjector]:
    """Replay ``scenario`` on ``testbed`` with ``plan`` armed.

    The injector wraps the packet path (link faults) and schedules the
    component fault windows on the testbed's engine; an empty plan makes
    this byte-identical to :meth:`EvalTestbed.run_scenario`.
    """
    injector = FaultInjector(testbed.engine, testbed.deployment, plan,
                             duration_s=scenario.duration_s)
    injector.arm(start_at=testbed.engine.now)
    accuracy = testbed.run_scenario(scenario, settle_s=settle_s,
                                    sink=injector.ingest)
    return accuracy, injector


def _fresh_run(factory: Callable, opts: "EvaluationOptions",
               plan: Optional[FaultPlan]):
    """One scenario replay on a freshly deployed product."""
    testbed = EvalTestbed(factory(), n_hosts=opts.n_hosts, seed=opts.seed,
                          train_duration_s=opts.train_duration_s,
                          profile=opts.profile)
    scenario = testbed.make_scenario(
        duration_s=opts.scenario_duration_s,
        include_dos=opts.include_dos,
        flood_rate_pps=opts.flood_rate_pps)
    if plan is None:
        return testbed.run_scenario(scenario), None
    return run_scenario_under_faults(testbed, scenario, plan)


def measure_dependability(
    factory: Callable,
    options: "EvaluationOptions",
    plan: FaultPlan,
    severities: Sequence[float] = DEFAULT_SEVERITIES,
    baseline: Optional[AccuracyResult] = None,
) -> DependabilityReport:
    """Measure one product's degradation under ``plan``.

    Every severity rung gets a *fresh* deployment (faulted state must not
    leak between runs or into the clean baseline); ``baseline`` reuses an
    already-measured clean run when the caller has one.
    """
    if not severities:
        raise ConfigurationError("need at least one fault severity")
    if baseline is None:
        baseline, _ = _fresh_run(factory, options, None)
    runs = []
    for severity in sorted({float(s) for s in severities}):
        if severity <= 0.0:
            raise ConfigurationError("fault severities must be positive")
        accuracy, injector = _fresh_run(factory, options,
                                        plan.scaled(severity))
        runs.append(FaultedRun(
            severity=severity,
            availability=injector.availability(),
            detection_ratio=accuracy.detection_ratio,
            notified_ratio=_notified_ratio(accuracy),
            mean_report_delay_s=_mean_notify_delay(accuracy),
            counters=injector.degradation_counters(),
        ))
    return DependabilityReport(
        product=baseline.product,
        plan=plan.name,
        seed=plan.seed,
        baseline_detection_ratio=baseline.detection_ratio,
        baseline_notified_ratio=_notified_ratio(baseline),
        baseline_mean_report_delay_s=_mean_notify_delay(baseline),
        runs=tuple(runs),
    )


# ----------------------------------------------------------------------
# scoring
# ----------------------------------------------------------------------
def score_dependability(
    report: DependabilityReport,
) -> Dict[str, Tuple[int, str, float]]:
    """Metric name -> (score, evidence, raw_value) for the two
    dependability extension metrics (0-4 house scale)."""
    out: Dict[str, Tuple[int, str, float]] = {}

    avail = report.availability
    if avail >= 0.99:
        score = 4
    elif avail >= 0.95:
        score = 3
    elif avail >= 0.90:
        score = 2
    elif avail >= 0.75:
        score = 1
    else:
        score = 0
    out["Availability Under Faults"] = (
        score,
        f"{avail:.1%} service availability under plan "
        f"'{report.plan}'", avail)

    slope = report.degradation_slope
    if slope <= 0.05:
        score = 4
    elif slope <= 0.2:
        score = 3
    elif slope <= 0.5:
        score = 2
    elif slope <= 1.0:
        score = 1
    else:
        score = 0
    out["Graceful Degradation"] = (
        score,
        f"loses {slope:.2f} of notification service per unit severity "
        f"(plan '{report.plan}'; detection delta "
        f"{report.detection_delta:+.2f})", slope)
    return out
