"""Ground-truth bookkeeping and the Figure-3 error ratios.

Figure 3 defines, over a body of transactions ``T`` with actual intrusions
``A`` and IDS-detected intrusions ``D`` (as sets):

    False Positive Ratio = |D - A| / |T|
    False Negative Ratio = |A - D| / |T|

Units, resolving the paper's own caveat that "even the definition of an
attack is not always clear" (section 4):

* an element of **A** is one *attack instance* (one scripted campaign with
  one ``attack_id``), regardless of its packet count;
* an element of **D** is one *claimed intrusion*: a distinct
  ``(category, source)`` pair among the alerts the monitor received.  A
  claim is *true* when any of its alerts traces back (via the ground-truth
  side channel) to an actual attack; the attack is then detected.  Claims
  whose alerts all trace to benign traffic form ``D - A``;
* a **transaction** is a unit of offered work: one benign flow
  (bidirectional five-tuple conversation) or one attack instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ids.alert import Alert
from ..net.flow import FlowKey
from ..net.trace import Trace
from ..traffic.mixer import Scenario

__all__ = ["count_transactions", "AccuracyResult", "score_alerts"]


def count_transactions(scenario: Scenario) -> int:
    """``|T|``: benign flows plus attack instances in a scenario."""
    benign_flows: Set[FlowKey] = set()
    for t, pkt in scenario.trace:
        if pkt.attack_id is None:
            benign_flows.add(FlowKey.of(pkt))
    return len(benign_flows) + len(scenario.attacks)


@dataclass
class AccuracyResult:
    """Outcome of one accuracy experiment (one product, one scenario)."""

    product: str
    transactions: int                    # |T|
    actual: Set[str]                     # A (attack ids)
    detected: Set[str]                   # A ∩ D (attack ids detected)
    missed: Set[str]                     # A - D
    false_alarms: int                    # |D - A| (distinct benign claims)
    alerts_total: int
    #: attack id -> seconds from attack start to first true alert
    detection_delay: Dict[str, float] = field(default_factory=dict)
    #: attack id -> seconds from attack start to first operator notification
    notification_delay: Dict[str, float] = field(default_factory=dict)

    @property
    def false_positive_ratio(self) -> float:
        """|D - A| / |T| (Figure 3)."""
        return self.false_alarms / self.transactions if self.transactions else 0.0

    @property
    def false_negative_ratio(self) -> float:
        """|A - D| / |T| (Figure 3)."""
        return len(self.missed) / self.transactions if self.transactions else 0.0

    @property
    def detection_ratio(self) -> float:
        """Detected attacks over actual attacks (convenience)."""
        return len(self.detected) / len(self.actual) if self.actual else 1.0

    @property
    def mean_detection_delay(self) -> float:
        if not self.detection_delay:
            return float("nan")
        return sum(self.detection_delay.values()) / len(self.detection_delay)

    @property
    def max_detection_delay(self) -> float:
        if not self.detection_delay:
            return float("nan")
        return max(self.detection_delay.values())

    @property
    def mean_notification_delay(self) -> float:
        if not self.notification_delay:
            return float("nan")
        return sum(self.notification_delay.values()) / len(self.notification_delay)

    def check_invariants(self) -> None:
        """Sanity identities implied by the Figure-3 set algebra."""
        assert self.detected | self.missed == self.actual
        assert not (self.detected & self.missed)
        assert 0.0 <= self.false_positive_ratio <= 1.0 or self.transactions == 0
        assert 0.0 <= self.false_negative_ratio <= 1.0


def score_alerts(
    product: str,
    scenario: Scenario,
    alerts: Sequence[Alert],
    notifications: Sequence = (),
) -> AccuracyResult:
    """Build an :class:`AccuracyResult` from a monitor's alert history."""
    actual = set(scenario.attack_ids)
    attack_start = {rec.attack_id: rec.start for rec in scenario.attacks}

    detected: Set[str] = set()
    detection_delay: Dict[str, float] = {}
    false_claims: Set[Tuple[str, int]] = set()

    for alert in alerts:
        truth = getattr(alert, "truth_attack_id", None)
        if truth is not None and truth in actual:
            detected.add(truth)
            delay = alert.time - attack_start[truth]
            prev = detection_delay.get(truth)
            if prev is None or delay < prev:
                detection_delay[truth] = delay
        else:
            false_claims.add((alert.category, alert.src.value))

    notification_delay: Dict[str, float] = {}
    for note in notifications:
        truth = getattr(note.alert, "truth_attack_id", None)
        if truth is not None and truth in actual:
            delay = note.time - attack_start[truth]
            prev = notification_delay.get(truth)
            if prev is None or delay < prev:
                notification_delay[truth] = delay

    result = AccuracyResult(
        product=product,
        transactions=count_transactions(scenario),
        actual=actual,
        detected=detected,
        missed=actual - detected,
        false_alarms=len(false_claims),
        alerts_total=len(alerts),
        detection_delay=detection_delay,
        notification_delay=notification_delay,
    )
    result.check_invariants()
    return result
