"""Latency experiments: induced traffic latency and timeliness.

* **Induced Traffic Latency** (Table 3): the extra per-packet delay caused
  by the IDS's presence.  Measured by sending a reference packet stream
  over a link with and without the product's traffic-path element
  interposed (an in-line load balancer adds forwarding delay; a passive
  tap adds none -- but its mirror can silently lose visibility instead,
  which the throughput experiments capture).
* **Timeliness** (Table 3): "average/maximal time between an intrusion's
  occurrence and its being reported" -- extracted from the accuracy
  experiment's per-attack first-notification delays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MeasurementError
from ..net.address import IPv4Address
from ..net.link import Link
from ..net.packet import Packet
from ..products.base import Deployment
from ..sim.engine import Engine
from .ground_truth import AccuracyResult

__all__ = ["LatencyReport", "measure_induced_latency", "TimelinessReport",
           "timeliness_from_accuracy"]


@dataclass(frozen=True)
class LatencyReport:
    """Induced-latency measurement for one product."""

    product: str
    baseline_delay_s: float
    with_ids_delay_s: float

    @property
    def induced_latency_s(self) -> float:
        return max(self.with_ids_delay_s - self.baseline_delay_s, 0.0)


def measure_induced_latency(
    deployment: Deployment,
    n_packets: int = 200,
    packet_size: int = 500,
    bandwidth_bps: float = 100e6,
) -> LatencyReport:
    """Compare transit delay with and without the product in the path.

    Runs two fresh engines: a bare reference link, and the same link with
    the deployment's in-line element (modelled by its ``inline_latency_s``,
    which is 0 for passive/mirrored deployments) interposed.
    """
    if n_packets <= 0:
        raise MeasurementError("n_packets must be positive")

    def transit(extra_delay: float) -> float:
        eng = Engine()
        deliveries = []
        link = Link(eng, bandwidth_bps=bandwidth_bps,
                    propagation_delay=100e-6,
                    sink=lambda p: deliveries.append(eng.now))
        src = IPv4Address("10.0.0.1")
        dst = IPv4Address("10.0.0.2")
        sends = []

        def send(i: int) -> None:
            sends.append(eng.now)
            pkt = Packet(src=src, dst=dst, payload_len=packet_size)
            if extra_delay > 0:
                eng.schedule(extra_delay, link.send, pkt)
            else:
                link.send(pkt)

        for i in range(n_packets):
            eng.schedule_at(i * 1e-3, send, i)
        eng.run()
        delays = [d - s for s, d in zip(sends, deliveries)]
        return float(np.mean(delays))

    baseline = transit(0.0)
    with_ids = transit(deployment.inline_latency_s)
    return LatencyReport(product=deployment.name,
                         baseline_delay_s=baseline,
                         with_ids_delay_s=with_ids)


@dataclass(frozen=True)
class TimelinessReport:
    """Timeliness metrics derived from an accuracy run."""

    product: str
    mean_report_delay_s: float
    max_report_delay_s: float
    attacks_reported: int


def timeliness_from_accuracy(result: AccuracyResult) -> TimelinessReport:
    """Average/maximal intrusion-to-notification delay (Table 3).

    Only attacks that were actually reported contribute: an attack id
    that is in ``missed`` or carries a non-finite placeholder delay must
    not drag the mean toward zero or poison the max -- never-detected
    attacks are the *false-negative* metric's evidence, not timeliness'.
    """
    delays = [delay for attack_id, delay
              in result.notification_delay.items()
              if attack_id not in result.missed and math.isfinite(delay)]
    if not delays:
        return TimelinessReport(product=result.product,
                                mean_report_delay_s=float("inf"),
                                max_report_delay_s=float("inf"),
                                attacks_reported=0)
    return TimelinessReport(
        product=result.product,
        mean_report_delay_s=float(np.mean(delays)),
        max_report_delay_s=float(np.max(delays)),
        attacks_reported=len(delays))
