"""Evaluation harness: per-metric measurement procedures and the runner."""

from .accuracy import (
    SensitivitySweep,
    SweepPoint,
    equal_error_rate,
    run_accuracy,
    sensitivity_sweep,
)
from .ground_truth import AccuracyResult, count_transactions, score_alerts
from .latency import (
    LatencyReport,
    TimelinessReport,
    measure_induced_latency,
    timeliness_from_accuracy,
)
from .observer import MeasurementBundle, fill_scorecard, score_measurements, score_open_source
from .overhead import OverheadReport, logging_level_overhead, measure_host_overhead
from .runner import (
    EvaluationOptions,
    FieldEvaluation,
    ProductEvaluation,
    evaluate_field,
    evaluate_product,
)
from .testbed import EvalTestbed, cluster_scenario, ecommerce_scenario
from .throughput import (
    LoadProbe,
    ThroughputReport,
    make_load_trace,
    measure_throughput,
    probe_rate,
)

__all__ = [
    "SensitivitySweep",
    "SweepPoint",
    "equal_error_rate",
    "run_accuracy",
    "sensitivity_sweep",
    "AccuracyResult",
    "count_transactions",
    "score_alerts",
    "LatencyReport",
    "TimelinessReport",
    "measure_induced_latency",
    "timeliness_from_accuracy",
    "MeasurementBundle",
    "fill_scorecard",
    "score_measurements",
    "score_open_source",
    "OverheadReport",
    "logging_level_overhead",
    "measure_host_overhead",
    "EvaluationOptions",
    "FieldEvaluation",
    "ProductEvaluation",
    "evaluate_field",
    "evaluate_product",
    "EvalTestbed",
    "cluster_scenario",
    "ecommerce_scenario",
    "LoadProbe",
    "ThroughputReport",
    "make_load_trace",
    "measure_throughput",
    "probe_rate",
]
