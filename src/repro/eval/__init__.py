"""Evaluation harness: per-metric measurement procedures and the runner."""

from .accuracy import (
    SensitivitySweep,
    SweepPoint,
    equal_error_rate,
    run_accuracy,
    sensitivity_sweep,
)
from .ground_truth import AccuracyResult, count_transactions, score_alerts
from .latency import (
    LatencyReport,
    TimelinessReport,
    measure_induced_latency,
    timeliness_from_accuracy,
)
from .observer import MeasurementBundle, fill_scorecard, score_measurements, score_open_source
from .overhead import OverheadReport, logging_level_overhead, measure_host_overhead
from .parallel import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    WorkUnit,
    clear_cache,
    evaluate_field_parallel,
    evaluate_product_parallel,
    last_cache_stats,
)
from .runner import (
    EvaluationOptions,
    FieldEvaluation,
    ProductEvaluation,
    ScenarioMeasurement,
    assemble_evaluation,
    evaluate_field,
    evaluate_product,
    measure_rate,
    measure_scenario,
)
from .testbed import EvalTestbed, cluster_scenario, ecommerce_scenario
from .throughput import (
    LoadProbe,
    ThroughputReport,
    make_load_trace,
    measure_throughput,
    probe_rate,
    report_from_probes,
)

__all__ = [
    "SensitivitySweep",
    "SweepPoint",
    "equal_error_rate",
    "run_accuracy",
    "sensitivity_sweep",
    "AccuracyResult",
    "count_transactions",
    "score_alerts",
    "LatencyReport",
    "TimelinessReport",
    "measure_induced_latency",
    "timeliness_from_accuracy",
    "MeasurementBundle",
    "fill_scorecard",
    "score_measurements",
    "score_open_source",
    "OverheadReport",
    "logging_level_overhead",
    "measure_host_overhead",
    "EvaluationOptions",
    "FieldEvaluation",
    "ProductEvaluation",
    "ScenarioMeasurement",
    "assemble_evaluation",
    "evaluate_field",
    "evaluate_product",
    "measure_rate",
    "measure_scenario",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "WorkUnit",
    "clear_cache",
    "evaluate_field_parallel",
    "evaluate_product_parallel",
    "last_cache_stats",
    "EvalTestbed",
    "cluster_scenario",
    "ecommerce_scenario",
    "LoadProbe",
    "ThroughputReport",
    "make_load_trace",
    "measure_throughput",
    "probe_rate",
    "report_from_probes",
]
