"""Mapping observations onto discrete scorecard scores.

Two observation methods per section 3.1:

* :func:`score_open_source` -- derives scores from :class:`ProductFacts`
  (data-sheet facts), covering the metrics designated for open-source
  observation.
* :func:`score_measurements` -- derives scores from the laboratory
  measurements of a full evaluation run, covering the analysis-designated
  metrics.

Every mapping follows the catalog's low/average/high anchors; the raw
observation (ratio, pps, seconds, percent) is recorded on the score entry
as ``raw_value`` so the discretization is auditable.  Discretization
thresholds are this reproduction's (the paper does not publish its own
numeric cutoffs); they are monotone in the anchor ordering by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .dependability import DependabilityReport

from ..core.metric import ObservationMethod
from ..core.scorecard import Scorecard
from ..ids.policy import ResponseAction
from ..ids.sensor import FailureMode
from ..products.base import Deployment, DeploymentSnapshot, ProductFacts
from .accuracy import SensitivitySweep
from .ground_truth import AccuracyResult
from .latency import LatencyReport, TimelinessReport
from .overhead import OverheadReport
from .throughput import ThroughputReport

__all__ = ["MeasurementBundle", "score_open_source", "score_measurements",
           "fill_scorecard"]

_OS = ObservationMethod.OPEN_SOURCE
_AN = ObservationMethod.ANALYSIS


# ----------------------------------------------------------------------
# open-source scoring: ordinal fact scales
# ----------------------------------------------------------------------
_ORDINAL: Dict[str, Dict[str, int]] = {
    "remote_management": {"none": 0, "limited": 2, "full-secure": 4},
    "install_complexity": {"manual": 0, "guided": 2, "turnkey": 4},
    "policy_maintenance": {"per-sensor": 0, "central-restart": 2,
                           "central-live": 4},
    "license": {"per-sensor": 1, "per-site": 2, "enterprise": 4},
    "outsourced": {"required-scans": 0, "optional": 2, "in-house": 4},
    "docs": {"poor": 0, "fair": 2, "good": 4},
    "filter_generation": {"none": 0, "manual": 1, "guided": 2,
                          "automatic": 4},
    "admin_effort": {"high": 0, "medium": 2, "low": 4},
    "support": {"none": 0, "business-hours": 2, "24x7": 4},
    "training": {"none": 0, "docs-only": 2, "vendor-courses": 4},
    "adjustable_sensitivity": {"none": 0, "coarse": 2, "continuous": 4},
    "data_pool_select": {"none": 0, "static": 2, "runtime": 4},
    "multi_sensor": {"single": 0, "several": 2, "integrated": 4},
    "load_balancing": {"none": 0, "static": 2, "dynamic": 4},
    "interoperability": {"none": 0, "limited": 2, "standards": 4},
}


def _platform_requirements_score(facts: ProductFacts) -> int:
    score = 4
    if facts.monitored_host_cpu_fraction >= 0.15:
        score = 0
    elif facts.monitored_host_cpu_fraction >= 0.02:
        score = 2
    if facts.dedicated_hosts >= 4:
        score = max(score - 1, 0)
    return score


def _proportion_score(fraction: float) -> int:
    """Proportion metrics (Host-based / Network-based): 0..1 -> 0..4."""
    return max(0, min(4, round(4 * fraction)))


def score_open_source(facts: ProductFacts) -> Dict[str, Tuple[int, str]]:
    """Metric name -> (score, evidence) from data-sheet facts."""
    out: Dict[str, Tuple[int, str]] = {}

    def put(metric: str, score: int, evidence: str) -> None:
        out[metric] = (max(0, min(4, score)), evidence)

    put("Distributed Management",
        _ORDINAL["remote_management"][facts.remote_management],
        f"remote management: {facts.remote_management}")
    put("License Management", _ORDINAL["license"][facts.license],
        f"license: {facts.license}")
    put("Outsourced Solution", _ORDINAL["outsourced"][facts.outsourced],
        f"operation: {facts.outsourced}")
    put("Platform Requirements", _platform_requirements_score(facts),
        f"{facts.monitored_host_cpu_fraction:.0%} of monitored hosts, "
        f"{facts.dedicated_hosts} dedicated host(s)")
    put("Quality of Documentation", _ORDINAL["docs"][facts.docs],
        f"documentation: {facts.docs}")
    put("Evaluation Copy Availability", 4 if facts.eval_copy else 0,
        f"eval copy: {facts.eval_copy}")
    put("Product Lifetime",
        0 if facts.product_lifetime_years < 2
        else (2 if facts.product_lifetime_years < 5 else 4),
        f"{facts.product_lifetime_years:g} year lifetime")
    put("Quality of Technical Support", _ORDINAL["support"][facts.support],
        f"support: {facts.support}")
    put("Three Year Cost of Ownership",
        0 if facts.cost_3yr_usd >= 100_000
        else (2 if facts.cost_3yr_usd >= 50_000 else 4),
        f"${facts.cost_3yr_usd:,.0f} over 3 years")
    put("Training Support", _ORDINAL["training"][facts.training],
        f"training: {facts.training}")
    put("Adjustable Sensitivity",
        _ORDINAL["adjustable_sensitivity"][facts.adjustable_sensitivity],
        f"sensitivity control: {facts.adjustable_sensitivity}")
    put("Data Pool Selectability",
        _ORDINAL["data_pool_select"][facts.data_pool_select],
        f"data pool selection: {facts.data_pool_select}")
    put("Host-based", _proportion_score(facts.host_based_fraction),
        f"{facts.host_based_fraction:.0%} host data")
    put("Network-based", _proportion_score(facts.network_based_fraction),
        f"{facts.network_based_fraction:.0%} network data")
    put("Multi-sensor Support", _ORDINAL["multi_sensor"][facts.multi_sensor],
        f"multi-sensor: {facts.multi_sensor}")
    put("Scalable Load-balancing",
        _ORDINAL["load_balancing"][facts.load_balancing],
        f"load balancing: {facts.load_balancing}")
    put("Anomaly Based",
        {"anomaly": 4, "hybrid": 2, "signature": 0}[facts.detection],
        f"detection: {facts.detection}")
    put("Signature Based",
        {"anomaly": 0, "hybrid": 2, "signature": 4}[facts.detection],
        f"detection: {facts.detection}")
    put("Autonomous Learning", 4 if facts.autonomous_learning else 0,
        f"autonomous learning: {facts.autonomous_learning}")
    put("Interoperability",
        _ORDINAL["interoperability"][facts.interoperability],
        f"interoperability: {facts.interoperability}")
    put("Session Recording and Playback",
        4 if facts.session_recording else 0,
        f"session recording: {facts.session_recording}")
    put("Trend Analysis", 4 if facts.trend_analysis else 0,
        f"trend analysis: {facts.trend_analysis}")
    put("Information Sharing",
        _ORDINAL["interoperability"][facts.interoperability],
        "proxy: data-exchange interoperability")
    put("Clarity of Reports", _ORDINAL["docs"][facts.docs],
        "proxy: documentation quality class")
    put("Package Contents",
        2 if facts.support != "none" else 1,
        "proxy: commercial packaging vs research drop")
    return out


# ----------------------------------------------------------------------
# analysis scoring: laboratory measurements
# ----------------------------------------------------------------------
@dataclass
class MeasurementBundle:
    """Everything the laboratory battery measured for one product.

    ``deployment`` is the picklable :class:`DeploymentSnapshot` of the
    system under test (a live :class:`Deployment` is accepted and
    snapshotted on the fly for backward compatibility), which keeps the
    whole bundle process-portable for the parallel harness.
    """

    accuracy: AccuracyResult
    throughput: ThroughputReport
    latency: LatencyReport
    timeliness: TimelinessReport
    overhead: OverheadReport
    deployment: DeploymentSnapshot
    #: bytes of analyzer history per MB of scenario traffic
    storage_bytes_per_mb: float
    #: sources that actually emitted attack packets in the scenario
    attack_sources: Set[int]
    sweep: Optional[SensitivitySweep] = None
    #: wall-clock span of the accuracy scenario (drives operator-workload)
    scenario_duration_s: float = 70.0
    #: clean-vs-faulted dependability comparison (None unless the battery
    #: ran with a fault plan)
    dependability: Optional["DependabilityReport"] = None

    def __post_init__(self) -> None:
        if isinstance(self.deployment, Deployment):
            self.deployment = self.deployment.snapshot()


def _step(value: float, cuts: Tuple[float, ...], scores: Tuple[int, ...]) -> int:
    """Map a raw value onto scores via ascending cutpoints:
    value <= cuts[i] -> scores[i]; beyond the last cut -> scores[-1]."""
    for cut, score in zip(cuts, scores):
        if value <= cut:
            return score
    return scores[-1]


def score_measurements(m: MeasurementBundle) -> Dict[str, Tuple[int, str, float]]:
    """Metric name -> (score, evidence, raw_value) from lab measurements."""
    out: Dict[str, Tuple[int, str, float]] = {}

    def put(metric: str, score: int, evidence: str, raw: float) -> None:
        out[metric] = (max(0, min(4, score)), evidence, raw)

    acc = m.accuracy
    dep = m.deployment
    if isinstance(dep, Deployment):
        dep = dep.snapshot()

    # --- accuracy (Figure 3 ratios) ---------------------------------
    miss_frac = (len(acc.missed) / len(acc.actual)) if acc.actual else 0.0
    put("Observed False Negative Ratio",
        _step(miss_frac, (0.0, 0.1, 0.3, 0.6), (4, 3, 2, 1, 0)),
        f"missed {len(acc.missed)}/{len(acc.actual)} attacks; "
        f"FNR={acc.false_negative_ratio:.4f}",
        acc.false_negative_ratio)
    put("Observed False Positive Ratio",
        _step(acc.false_positive_ratio, (0.0, 0.005, 0.02, 0.05),
              (4, 3, 2, 1, 0)),
        f"{acc.false_alarms} false claims over {acc.transactions} "
        f"transactions; FPR={acc.false_positive_ratio:.4f}",
        acc.false_positive_ratio)

    # --- load metrics -------------------------------------------------
    tp = m.throughput
    put("System Throughput",
        _step(-tp.system_throughput_pps,
              (-32000.0, -16000.0, -8000.0, -2000.0), (4, 3, 2, 1, 0)),
        f"max processed {tp.system_throughput_pps:.0f} pps "
        f"({tp.payload_mode} payloads)", tp.system_throughput_pps)
    put("Maximal Throughput with Zero Loss",
        _step(-tp.zero_loss_pps, (-32000.0, -8000.0, -2000.0, -500.0),
              (4, 3, 2, 1, 0)),
        f"zero loss up to {tp.zero_loss_pps:.0f} pps", tp.zero_loss_pps)
    if tp.lethal_dose_pps is None:
        put("Network Lethal Dose", 4,
            "no failure observed up to the highest probed rate",
            float("inf"))
    else:
        put("Network Lethal Dose",
            _step(-tp.lethal_dose_pps, (-32000.0, -8000.0, -2000.0),
                  (3, 2, 1, 0)),
            f"malfunction at {tp.lethal_dose_pps:.0f} pps",
            tp.lethal_dose_pps)

    # --- latency & timeliness ------------------------------------------
    lat = m.latency.induced_latency_s
    put("Induced Traffic Latency",
        _step(lat, (1e-6, 100e-6, 500e-6, 2e-3), (4, 3, 2, 1, 0)),
        f"added {lat * 1e6:.0f} us per packet", lat)
    tl = m.timeliness.mean_report_delay_s
    put("Timeliness",
        0 if math.isinf(tl) else _step(tl, (0.5, 2.0, 5.0, 30.0),
                                       (4, 3, 2, 1, 0)),
        "never reported" if math.isinf(tl)
        else f"mean {tl:.2f}s / max {m.timeliness.max_report_delay_s:.2f}s "
             f"to notify", tl)

    # --- host impact ----------------------------------------------------
    pct = m.overhead.mean_host_cpu_fraction
    put("Operational Performance Impact",
        _step(pct, (0.001, 0.02, 0.08, 0.15), (4, 3, 2, 1, 0)),
        f"{pct:.1%} of monitored host CPU "
        f"({m.overhead.monitored_hosts} hosts)", pct)

    # --- storage ----------------------------------------------------------
    put("Data Storage",
        _step(m.storage_bytes_per_mb, (1024, 10_240, 51_200, 204_800),
              (4, 3, 2, 1, 0)),
        f"{m.storage_bytes_per_mb:.0f} B stored per MB of traffic",
        m.storage_bytes_per_mb)

    # --- failure behaviour (Error Reporting and Recovery) ---------------
    modes = dep.sensor_failure_modes
    if not modes:
        put("Error Reporting and Recovery", 1,
            "host agents only; failure behaviour unexercised "
            "(research-prototype default)", 1.0)
    else:
        mode = modes[0]
        score = {FailureMode.RESTART: 4, FailureMode.REBOOT: 2,
                 FailureMode.HANG: 0}[mode]
        put("Error Reporting and Recovery", score,
            f"observed failure mode: {mode.value}", float(score))

    # --- response interactions ------------------------------------------
    fired = set(dep.fired_actions)

    def interaction(metric: str, capability: bool,
                    action: ResponseAction) -> None:
        if not capability:
            put(metric, 0, "capability absent", 0.0)
        elif action in fired:
            put(metric, 4, f"automated {action.value} observed in scenario",
                4.0)
        else:
            put(metric, 2, "capability present; not exercised by policy",
                2.0)

    caps = dep.capabilities
    interaction("Firewall Interaction", caps["firewall"],
                ResponseAction.FIREWALL_BLOCK)
    interaction("Router Interaction", caps["router"] or caps["honeypot"],
                ResponseAction.ROUTER_BLOCK)
    interaction("SNMP Interaction", caps["snmp"], ResponseAction.SNMP_TRAP)

    # --- analysis depth ---------------------------------------------------
    correlating = dep.correlating
    both_scopes = dep.facts.scope == "both"
    put("Analysis of Compromise",
        4 if (correlating and both_scopes) else (3 if correlating else 1),
        f"correlation={'on' if correlating else 'off'}, "
        f"scope={dep.facts.scope}", 4.0 if correlating else 1.0)
    put("Threat Correlation",
        3 if correlating else 0,
        "cross-category campaign linking" if correlating
        else "no correlation capability", 3.0 if correlating else 0.0)
    put("Analysis of Intruder Intent", 2 if correlating else 0,
        "campaign breadth gives coarse intent" if correlating
        else "no intent analysis", 2.0 if correlating else 0.0)

    # --- filter effectiveness ---------------------------------------------
    if not dep.has_filter_path:
        put("Effectiveness of Generated Filters", 0,
            "no filter-generation path", 0.0)
    else:
        requests = dep.filter_blocked_sources
        if not requests:
            put("Effectiveness of Generated Filters", 2,
                "no filters generated during scenario", 2.0)
        else:
            good = sum(1 for value in requests
                       if value in m.attack_sources)
            frac = good / len(requests)
            put("Effectiveness of Generated Filters",
                _step(-frac, (-0.999, -0.8, -0.5), (4, 3, 1, 0)),
                f"{good}/{len(requests)} generated blocks hit actual "
                f"attackers", frac)

    # --- remaining analysis-designated metrics ---------------------------
    put("Ease of Configuration",
        _ORDINAL["install_complexity"][dep.facts.install_complexity],
        f"install: {dep.facts.install_complexity}",
        float(_ORDINAL["install_complexity"][dep.facts.install_complexity]))
    put("Ease of Policy Maintenance",
        _ORDINAL["policy_maintenance"][dep.facts.policy_maintenance],
        f"policy: {dep.facts.policy_maintenance}",
        float(_ORDINAL["policy_maintenance"][dep.facts.policy_maintenance]))
    put("Ease of Attack Filter Generation",
        _ORDINAL["filter_generation"][dep.facts.filter_generation],
        f"filter authoring: {dep.facts.filter_generation}",
        float(_ORDINAL["filter_generation"][dep.facts.filter_generation]))
    put("Level of Administration",
        _ORDINAL["admin_effort"][dep.facts.admin_effort],
        f"admin effort: {dep.facts.admin_effort}",
        float(_ORDINAL["admin_effort"][dep.facts.admin_effort]))
    channels = dep.notification_channels
    put("Notification: User Alerts",
        _step(-channels, (-3.0, -2.0, -1.0), (4, 2, 1, 0)),
        f"{channels} notification channel(s)", float(channels))
    put("Program Interaction",
        2 if dep.console_present else 0,
        "console action dispatch" if dep.console_present
        else "no action hooks",
        2.0 if dep.console_present else 0.0)
    put("Evidence Collection",
        3 if dep.facts.session_recording else 1,
        f"session recording: {dep.facts.session_recording}",
        3.0 if dep.facts.session_recording else 1.0)
    put("Host/OS Security",
        2 if dep.facts.scope != "host" else 1,
        "dedicated appliance hosts" if dep.facts.scope != "host"
        else "agents share monitored hosts", 2.0)
    put("Process Security",
        {FailureMode.RESTART: 3, FailureMode.REBOOT: 2,
         FailureMode.HANG: 1}.get(modes[0] if modes else None, 1),
        "resilience of IDS processes under overload", 2.0)
    put("Visibility",
        4 if m.latency.induced_latency_s == 0 else 2,
        "passive tap (hard to fingerprint)" if lat == 0
        else "in-line element is fingerprintable", 2.0)
    return out


def fill_scorecard(
    scorecard: Scorecard,
    facts: ProductFacts,
    measurements: MeasurementBundle,
) -> None:
    """Record every observable metric for one product on the scorecard.

    Analysis observations win when a metric is designated for both methods
    (the laboratory evidence is stronger than the data sheet).
    """
    product = facts.name
    if product not in scorecard.products:
        scorecard.add_product(product)
    for metric, (score, evidence) in score_open_source(facts).items():
        m = scorecard.catalog.get(metric)
        method = _OS if _OS in m.methods else _AN
        scorecard.set_score(product, metric, score, method=method,
                            evidence=evidence)
    for metric, (score, evidence, raw) in score_measurements(measurements).items():
        m = scorecard.catalog.get(metric)
        method = _AN if _AN in m.methods else _OS
        scorecard.set_score(product, metric, score, method=method,
                            evidence=evidence, raw_value=raw)
    # human-dimension extension (paper future work): scored only when the
    # scorecard's catalog carries the extension metrics
    if "Operator Workload" in scorecard.catalog:
        from ..core.extensions import score_human_factors

        dep = measurements.deployment
        if isinstance(dep, Deployment):
            dep = dep.snapshot()
        hours = max(measurements.scenario_duration_s / 3600.0, 1e-9)
        rate = dep.notifications_total / hours
        alerts = max(measurements.accuracy.alerts_total, 1)
        false_fraction = min(
            measurements.accuracy.false_alarms / alerts, 1.0)
        correlating = dep.correlating
        for metric, (score, evidence) in score_human_factors(
                rate, facts, correlating, false_fraction).items():
            m = scorecard.catalog.get(metric)
            method = _AN if _AN in m.methods else _OS
            scorecard.set_score(product, metric, score, method=method,
                                evidence=evidence)
    # dependability extension (measured-under-fault evidence): scored only
    # when the battery ran a fault plan AND the catalog carries the
    # extension metrics, so plain evaluations stay byte-identical
    if (measurements.dependability is not None
            and "Availability Under Faults" in scorecard.catalog):
        from .dependability import score_dependability

        for metric, (score, evidence, raw) in score_dependability(
                measurements.dependability).items():
            m = scorecard.catalog.get(metric)
            method = _AN if _AN in m.methods else _OS
            scorecard.set_score(product, metric, score, method=method,
                                evidence=evidence, raw_value=raw)
