"""Process-pool fan-out and on-disk memoization for the evaluation battery.

The paper's prototype evaluation (section 3.2) runs every product through
the full measurement battery; field evaluations and robustness sweeps
therefore scale with products x seeds x throughput rates.  This module
shards that battery across its independent work units
(:func:`repro.eval.runner.measure_scenario` per product and
:func:`repro.eval.runner.measure_rate` per (product, offered-rate)),
executes them on a ``ProcessPoolExecutor``, and merges the results
*deterministically* -- always ordered by work-unit key, never by
completion time -- so any worker count produces bit-identical output.

Completed units are memoized in an on-disk cache (default
``.repro-cache/``) keyed by a content hash of (product name, the
measurement-relevant ``EvaluationOptions`` fields including the seed, the
attack-catalog version, and the package version).  ``workers`` and
``cache_dir`` themselves are excluded from the key: they change how the
battery executes, never what it measures.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..attacks.catalog import CATALOG_VERSION
from ..core.catalog import MetricCatalog
from ..core.requirements import RequirementSet
from ..products.base import Product
from .corpus import CorpusStats, clear_corpus, corpus_stats
from .runner import (
    EvaluationOptions,
    FieldEvaluation,
    ProductEvaluation,
    assemble_evaluation,
    finish_field,
    measure_rate,
    measure_scenario,
)

__all__ = ["DEFAULT_CACHE_DIR", "WorkUnit", "CacheStats", "ResultCache",
           "clear_cache", "plan_units", "run_units", "unit_key",
           "evaluate_product_parallel", "evaluate_field_parallel",
           "last_cache_stats", "last_corpus_stats"]

DEFAULT_CACHE_DIR = ".repro-cache"

ProductFactory = Callable[[], Product]


# ----------------------------------------------------------------------
# work units
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class WorkUnit:
    """One independently executable shard of the battery.

    The tuple ordering (product position, kind, rate) is the canonical
    merge order: results are always reassembled by sorted key, so the
    completion order of pool workers can never influence the output.
    """

    index: int            # position of the product in the input sequence
    product: str
    kind: str             # "scenario" | "rate"
    rate_pps: float = 0.0  # offered rate for "rate" units


def plan_units(names: Sequence[str],
               options: EvaluationOptions) -> List[WorkUnit]:
    """The full shard plan for a product field, in canonical order."""
    units: List[WorkUnit] = []
    for index, name in enumerate(names):
        units.append(WorkUnit(index=index, product=name, kind="scenario"))
        for rate in sorted(float(r) for r in options.throughput_rates_pps):
            units.append(WorkUnit(index=index, product=name, kind="rate",
                                  rate_pps=rate))
    return units


def _execute_unit(factory: ProductFactory, unit: WorkUnit,
                  options: EvaluationOptions):
    """Run one work unit (in a pool worker or in-line).

    Returns ``(result, corpus_delta)`` where the delta is the
    ``(hits, misses, stores)`` the unit added to this process's trace
    corpus -- measured per unit so the parent can aggregate counters from
    pool workers without sharing state.
    """
    before = corpus_stats().as_tuple()
    if unit.kind == "scenario":
        result = measure_scenario(factory, options)
    else:
        result = measure_rate(factory, unit.rate_pps, options)
    after = corpus_stats().as_tuple()
    return result, tuple(a - b for a, b in zip(after, before))


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
def _options_token(options: EvaluationOptions) -> Tuple:
    """The measurement-relevant option fields, in stable form.

    ``workers`` and ``cache_dir`` are deliberately absent: parallelism must
    never change results, so it must never change cache keys either.
    """
    return (
        options.seed,
        options.n_hosts,
        options.scenario_duration_s,
        options.train_duration_s,
        options.include_dos,
        options.flood_rate_pps,
        tuple(float(r) for r in options.throughput_rates_pps),
        options.throughput_probe_s,
        options.payload_mode,
        options.profile,
        # the matching kernel and the anomaly scoring path both produce
        # identical results either way, but A/B comparisons must never
        # read each other's cache
        # (appended last: ``unit_key`` slices this tuple by position)
        options.engine,
        options.anomaly_path,
    )


def _faults_token(options: EvaluationOptions) -> Tuple:
    """The fault-plan option fields, in stable form (scenario units only:
    rate probes never run faults, so their keys stay plan-independent)."""
    return (options.faults,
            tuple(float(s) for s in options.fault_severities))


def unit_key(unit: WorkUnit, options: EvaluationOptions) -> str:
    """Content hash identifying one unit's result on disk."""
    # a "rate" unit's result does not depend on the other probe rates, so
    # drop the sweep list from its token: probes cached at one sweep shape
    # are reusable under any other sweep containing the same rate
    token = _options_token(options)
    if unit.kind == "rate":
        token = token[:6] + token[7:]
    else:
        # the scenario unit carries the dependability measurement, so the
        # fault plan participates in its key: faulted and clean runs never
        # read each other's cache entries
        token = token + _faults_token(options)
    payload = repr(("repro-eval", __version__, CATALOG_VERSION,
                    unit.product, unit.kind, unit.rate_pps, token))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one harness invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Pickle-per-unit on-disk memo under ``root`` (flat, content-keyed).

    Corrupt or unreadable entries are treated as misses and overwritten;
    writes are atomic (temp file + rename) so a killed run never leaves a
    half-written entry behind.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def load(self, key: str):
        """Return the cached result or None on a miss."""
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            # any unreadable entry -- missing, truncated, garbage bytes,
            # stale class layout -- is a miss to be recomputed, never a crash
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def store(self, key: str, value) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".pkl"))


def clear_cache(cache_dir: str = DEFAULT_CACHE_DIR) -> int:
    """Delete every cached unit result *and* every stored corpus trace;
    returns how many entries were removed."""
    removed = clear_corpus(cache_dir)
    if not os.path.isdir(cache_dir):
        return removed
    for name in os.listdir(cache_dir):
        if name.endswith((".pkl", ".tmp")):
            os.unlink(os.path.join(cache_dir, name))
            removed += 1
    return removed


#: Stats of the most recent run_units() invocation (None before the first).
_LAST_STATS: Optional[CacheStats] = None

#: Trace-corpus counters aggregated over the most recent run_units() call.
_LAST_CORPUS: Optional[CorpusStats] = None


def last_cache_stats() -> Optional[CacheStats]:
    """Cache counters from the most recent harness invocation."""
    return _LAST_STATS


def last_corpus_stats() -> Optional[CorpusStats]:
    """Trace-corpus counters from the most recent harness invocation,
    aggregated across executed units (pool workers included)."""
    return _LAST_CORPUS


# ----------------------------------------------------------------------
# the fan-out
# ----------------------------------------------------------------------
def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def run_units(
    factories: Sequence[ProductFactory],
    options: EvaluationOptions,
) -> Dict[WorkUnit, object]:
    """Execute the full shard plan and return ``{unit: result}``.

    Cached units are loaded first; the rest are fanned out across
    ``options.workers`` processes (unpicklable factories -- e.g. lambdas
    from an interactive sweep -- degrade gracefully to in-process
    execution).  The returned mapping is keyed by :class:`WorkUnit` in
    canonical order, independent of completion order.
    """
    global _LAST_STATS, _LAST_CORPUS
    names = [factory().name for factory in factories]
    by_name = dict(zip(names, factories))
    units = plan_units(names, options)

    cache = (ResultCache(options.cache_dir)
             if options.cache_dir is not None else None)
    results: Dict[WorkUnit, object] = {}
    pending: List[WorkUnit] = []
    for unit in units:
        cached = (cache.load(unit_key(unit, options))
                  if cache is not None else None)
        if cached is not None:
            results[unit] = cached
        else:
            pending.append(unit)

    workers = options.workers if options.workers > 0 else (os.cpu_count() or 1)
    pool_units = [u for u in pending
                  if workers > 1 and _is_picklable(by_name[u.product])]
    inline_units = [u for u in pending if u not in pool_units]

    corpus_totals = CorpusStats()

    def _record(unit: WorkUnit, outcome) -> None:
        result, delta = outcome
        results[unit] = result
        corpus_totals.hits += delta[0]
        corpus_totals.misses += delta[1]
        corpus_totals.stores += delta[2]

    if pool_units:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pool_units))) as pool:
            futures = {
                unit: pool.submit(_execute_unit, by_name[unit.product],
                                  unit, options)
                for unit in pool_units}
            for unit, future in futures.items():
                _record(unit, future.result())
    for unit in inline_units:
        _record(unit, _execute_unit(by_name[unit.product], unit, options))

    if cache is not None:
        for unit in pending:
            cache.store(unit_key(unit, options), results[unit])
        _LAST_STATS = cache.stats
    else:
        _LAST_STATS = None
    _LAST_CORPUS = corpus_totals
    # canonical order: by work-unit key, never by completion time
    return {unit: results[unit] for unit in sorted(results)}


def _assemble(results: Dict[WorkUnit, object], names: Sequence[str],
              options: EvaluationOptions) -> Dict[str, ProductEvaluation]:
    evaluations: Dict[str, ProductEvaluation] = {}
    for index, name in enumerate(names):
        scenario = results[WorkUnit(index=index, product=name,
                                    kind="scenario")]
        probes = [results[unit] for unit in sorted(results)
                  if unit.index == index and unit.kind == "rate"]
        evaluations[name] = assemble_evaluation(scenario, probes, options)
    return evaluations


def evaluate_product_parallel(
    factory: ProductFactory,
    options: EvaluationOptions,
) -> ProductEvaluation:
    """Parallel/cached equivalent of :func:`repro.eval.evaluate_product`."""
    name = factory().name
    results = run_units([factory], options)
    return _assemble(results, [name], options)[name]


def evaluate_field_parallel(
    factories: Sequence[ProductFactory],
    requirements: RequirementSet,
    options: EvaluationOptions,
    catalog: Optional[MetricCatalog] = None,
) -> FieldEvaluation:
    """Parallel/cached equivalent of :func:`repro.eval.evaluate_field`.

    Every unit of every product shares one pool, so a slow product's
    throughput sweep overlaps the next product's scenario run.  Scoring
    and weighting happen in the parent process, in factory input order.
    """
    names = [factory().name for factory in factories]
    results = run_units(factories, options)
    evaluations = _assemble(results, names, options)
    return finish_field(evaluations, requirements, catalog)
